"""MTTR: restart-from-own-disk vs full peer reintegration.

The Figure 4 recovery story transfers every page modified since the last
checkpoint from a support slave.  With the content-carrying WAL a crashed
node instead replays its own checkpoint + fsynced WAL suffix locally and
only fetches the commits it missed while down — the page transfer shrinks
from "everything changed since the checkpoint" to "the downtime gap".
This bench runs the same seeded workload twice (both clusters durable, so
WAL costs are paid identically), crashes the same slave at the same
instant, and recovers it once with each mechanism.
"""

from conftest import quick_mode

from repro.bench.calibration import (
    BENCH_ROWS_PER_PAGE,
    BENCH_SCALE,
    BENCH_THINK_TIME,
    bench_cost,
)
from repro.bench.harness import _load_cluster
from repro.bench.report import format_table
from repro.cluster.simcluster import SimDmvCluster
from repro.tpcw.mixes import MIXES
from repro.tpcw.schema import TPCW_SCHEMAS

KILL_AT = 60.0
RECOVER_AT = 100.0


def _run(mechanism: str):
    duration = 160.0 if quick_mode() else 220.0
    cluster = SimDmvCluster(
        TPCW_SCHEMAS,
        num_slaves=3,
        cost_config=bench_cost(durable_wal=True),
        rows_per_page=BENCH_ROWS_PER_PAGE,
        seed=0,
        checkpoint_period=20.0,
    )
    _load_cluster(cluster, BENCH_SCALE, 42)
    cluster.warm_all_caches()
    cluster.start_browsers(
        40, MIXES["ordering"], BENCH_SCALE, think_time_mean=BENCH_THINK_TIME
    )
    cluster.kill_node_at("s0", KILL_AT)
    if mechanism == "restart":
        cluster.restart_node_at("s0", RECOVER_AT)
    else:
        cluster.sim.schedule(RECOVER_AT, cluster.reintegrate, "s0")
    cluster.run(until=duration)
    # The crash itself appends a reconfiguration timeline; the recovery's
    # is the one that finishes last.
    timeline = max(
        (t for t in cluster.timelines if t.migration_done > 0),
        key=lambda t: t.migration_done,
        default=None,
    )
    assert timeline is not None, f"{mechanism}: recovery never completed"
    node = cluster.nodes["s0"]
    return {
        "timeline": timeline,
        "mttr": timeline.migration_done - RECOVER_AT,
        "replayed": node.counters.get("wal.replayed"),
        "restarts": node.counters.get("disk.restart_recoveries"),
    }


def _both():
    return _run("reintegrate"), _run("restart")


def test_restart_mttr_vs_reintegration(benchmark, figure_report):
    full, restart = benchmark.pedantic(_both, rounds=1, iterations=1)

    rows = []
    for label, result in (("peer reintegration", full), ("restart from disk", restart)):
        timeline = result["timeline"]
        rows.append(
            [
                label,
                f"{result['mttr']:.2f} s",
                f"{timeline.migration_pages}",
                f"{timeline.migration_bytes}",
                f"{result['replayed']:.0f}",
            ]
        )
    speedup = full["mttr"] / restart["mttr"] if restart["mttr"] > 0 else float("inf")
    page_ratio = (
        full["timeline"].migration_pages / restart["timeline"].migration_pages
        if restart["timeline"].migration_pages
        else float("inf")
    )
    report = format_table(
        f"MTTR — slave crash at t={KILL_AT:g}s, recovery at t={RECOVER_AT:g}s "
        f"(40s down, 20s checkpoint period)",
        ["mechanism", "time to rejoin", "pages moved", "bytes moved", "WAL records replayed"],
        rows,
    )
    report += (
        f"\nrestart-from-disk rejoins {speedup:.1f}x faster, "
        f"moves {page_ratio:.1f}x fewer pages\n"
    )
    figure_report("restart_mttr", report)

    # Restart-from-disk did a local redo, not a from-scratch restore.
    assert restart["restarts"] == 1 and restart["replayed"] > 0
    assert full["restarts"] == 0
    # The whole point: the gap transfer is strictly smaller than the full
    # changed-page transfer, and the node is back sooner.
    assert restart["timeline"].migration_pages < full["timeline"].migration_pages
    assert restart["mttr"] < full["mttr"]
