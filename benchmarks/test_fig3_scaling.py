"""Figure 3: throughput scaling of the in-memory tier vs stand-alone InnoDB.

Paper result: with 8 slaves the DMV tier beats a fine-tuned stand-alone
InnoDB by x14.6 (browsing), x17.6 (shopping) and x6.5 (ordering); browsing
and shopping scale close to linearly while ordering is limited by master
saturation (index rebalancing + lock waits).  Section 6.1 also reports
version-inconsistency aborts below 2.5 % of transactions.
"""

from conftest import quick_mode

from repro.bench.harness import ThroughputRun, find_peak, run_dmv_throughput, run_innodb_throughput
from repro.bench.report import format_table

MIX_NAMES = ("browsing", "shopping", "ordering")
PAPER_FACTORS = {"browsing": 14.6, "shopping": 17.6, "ordering": 6.5}
SLAVE_COUNTS = (1, 2, 4, 8)


def _run_fig3():
    duration = 30.0 if quick_mode() else 50.0
    results = {}
    aborts = {}
    for mix in MIX_NAMES:
        for n in SLAVE_COUNTS:
            steps = [45 * n, 65 * n] if not quick_mode() else [45 * n]
            steps = [min(s, 420) for s in steps]
            peak = find_peak(
                f"dmv/{mix}/{n}",
                lambda clients, n=n, mix=mix: run_dmv_throughput(
                    mix, n, clients, duration=duration
                ),
                steps,
            )
            results[(mix, n)] = peak.peak_wips
            aborts[(mix, n)] = peak.peak_step.abort_rate
        innodb = find_peak(
            f"innodb/{mix}",
            lambda clients, mix=mix: run_innodb_throughput(mix, clients, duration=duration),
            [10, 25, 50] if not quick_mode() else [25],
        )
        results[(mix, "innodb")] = innodb.peak_wips
    return results, aborts


def test_fig3_throughput_scaling(benchmark, figure_report):
    results, aborts = benchmark.pedantic(_run_fig3, rounds=1, iterations=1)

    rows = []
    for mix in MIX_NAMES:
        innodb = results[(mix, "innodb")]
        row = [mix, f"{innodb:.1f}"]
        for n in SLAVE_COUNTS:
            row.append(f"{results[(mix, n)]:.1f}")
        factor = results[(mix, 8)] / innodb if innodb else float("nan")
        row.append(f"x{factor:.1f}")
        row.append(f"x{PAPER_FACTORS[mix]}")
        rows.append(row)
    table = format_table(
        "Figure 3 — peak WIPS: stand-alone InnoDB vs DMV in-memory tier",
        ["mix", "InnoDB", "1 slave", "2 slaves", "4 slaves", "8 slaves",
         "factor@8 (measured)", "factor@8 (paper)"],
        rows,
    )
    abort_rows = [
        [mix] + [f"{aborts[(mix, n)] * 100:.2f}%" for n in SLAVE_COUNTS]
        for mix in MIX_NAMES
    ]
    table += format_table(
        "Section 6.1 — transaction abort/retry rate at peak (paper: < 2.5 %)",
        ["mix", "1 slave", "2 slaves", "4 slaves", "8 slaves"],
        abort_rows,
    )
    figure_report("fig3_scaling", table)

    # Shape assertions (not absolute numbers): DMV wins everywhere, the
    # read-heavy mixes scale with slaves, ordering is master-limited.
    for mix in MIX_NAMES:
        assert results[(mix, 8)] > results[(mix, "innodb")] * 2.5
        assert results[(mix, 8)] >= results[(mix, 1)]
    assert results[("browsing", 8)] > results[("browsing", 1)] * 4
    assert results[("shopping", 8)] > results[("shopping", 1)] * 4
    # Ordering scales worst of the three (master saturation).
    ordering_scale = results[("ordering", 8)] / results[("ordering", 1)]
    browsing_scale = results[("browsing", 8)] / results[("browsing", 1)]
    assert ordering_scale < browsing_scale
