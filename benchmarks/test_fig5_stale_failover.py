"""Figure 5: failover onto a stale backup — replicated InnoDB vs DMV.

Paper setup and result:

* (a,b) InnoDB tier: 2 active replicas + 1 passive backup refreshed every
  30 minutes; killing an active leaves the service at roughly half
  capacity for ~3 minutes while the backup replays the on-disk log.
* (c,d) DMV tier: master + 2 active slaves + a 30-minute-stale backup;
  killing the *master* (worst case) completes failover in ~70 s — less
  than a third of the InnoDB time — dominated by buffer-cache warm-up.
"""

from conftest import quick_mode

from repro.bench.harness import run_dmv_failover, run_innodb_failover
from repro.bench.report import format_series, format_table


def _run():
    # This experiment is cheap; quick mode does not shrink it (a short
    # pre-failure window would leave the backup's log lag too small for
    # the replay phase to be visible).
    innodb = run_innodb_failover(
        clients=24, kill_at=300.0, duration=900.0, refresh_interval=280.0
    )
    dmv = run_dmv_failover(
        "m0", num_slaves=2, num_spares=1, stale_backup=True,
        clients=60, kill_at=120.0, duration=420.0,
    )
    return innodb, dmv


def test_fig5_failover_stale_backup(benchmark, figure_report):
    innodb, dmv = benchmark.pedantic(_run, rounds=1, iterations=1)

    innodb_recovery = innodb.recovery_point(threshold=0.85)
    dmv_recovery = dmv.recovery_point(threshold=0.85)
    report = format_table(
        "Figure 5 — failover onto a stale backup",
        ["system", "baseline WIPS", "during failover", "time to recover", "paper"],
        [
            [
                "InnoDB 2+1 (a,b)",
                f"{innodb.mean_before(100):.1f}",
                f"{innodb.mean_during(5, 120):.1f}",
                f"{innodb_recovery:.0f} s",
                "~180 s at half capacity",
            ],
            [
                "DMV m+2s+backup (c,d)",
                f"{dmv.mean_before(60):.1f}",
                f"{dmv.mean_during(5, 40):.1f}",
                f"{dmv_recovery:.0f} s",
                "~70 s (< 1/3 of InnoDB)",
            ],
        ],
    )
    report += format_series("Figure 5(a) — InnoDB WIPS", innodb.series, unit=" wips")
    report += format_series(
        "Figure 5(b) — InnoDB latency (s)", innodb.latency_series, unit=" s"
    )
    report += format_series("Figure 5(c) — DMV WIPS", dmv.series, unit=" wips")
    report += format_series(
        "Figure 5(d) — DMV latency (s)", dmv.latency_series, unit=" s"
    )
    figure_report("fig5_stale_failover", report)

    # Shape, asserted on the (deterministic) protocol timelines: the DMV
    # reconfiguration (cleanup + page migration) completes in a fraction
    # of the InnoDB log-replay phase.
    assert innodb.timeline is not None and innodb.timeline.replay_entries > 0
    dmv_reconf = dmv.timeline.recovery_duration() + dmv.timeline.migration_duration()
    assert dmv_reconf < innodb.timeline.db_update_duration() / 2
    # InnoDB service visibly degraded while replaying.
    assert innodb.mean_during(5, 120) < 0.95 * innodb.mean_before(100)
