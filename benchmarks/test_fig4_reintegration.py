"""Figure 4: node reintegration under the shopping mix.

Paper setup: master + 4 slaves; the master is killed at t=720 s.  The
system adapts instantaneously with throughput/latency degrading gracefully
by ~20 %; after a ~6-minute reboot the node reintegrates as a slave (worst
case: a 40-minute checkpoint period means every modification since the
start of the run must be transferred) in ~5 s of catch-up, followed by
50-60 s of buffer-cache warm-up before throughput fully recovers.
All wall-clock quantities here are scaled with the rest of the model.
"""

from conftest import quick_mode

from repro.bench.harness import run_reintegration
from repro.bench.report import format_series, format_table


def _run():
    duration = 220.0 if quick_mode() else 340.0
    return run_reintegration(
        mix_name="shopping",
        num_slaves=4,
        clients=100,
        kill_at=100.0,
        reboot_delay=60.0,
        duration=duration,
        checkpoint_period=1e9,  # worst case: only the initial image exists
    )


def test_fig4_node_reintegration(benchmark, figure_report):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    baseline = result.mean_before(80.0)
    degraded = result.mean_during(5.0, 55.0)
    timeline = result.timeline
    catchup = timeline.migration_duration() if timeline else float("nan")
    report = format_table(
        "Figure 4 — master kill at t=100s, reboot 60s, reintegration",
        ["phase", "measured", "paper (unscaled)"],
        [
            ["throughput before failure", f"{baseline:.1f} WIPS", "-"],
            ["throughput after failure", f"{degraded:.1f} WIPS "
             f"({100 * (1 - degraded / baseline):.0f}% degradation)", "~20% degradation"],
            ["catch-up (data migration)", f"{catchup:.1f} s", "~5 s"],
            ["pages transferred", f"{timeline.migration_pages}", "all changed pages"],
            ["cache warm-up tail", "visible in series below", "50-60 s"],
        ],
    )
    report += format_series(
        "Figure 4 series — WIPS (20 s buckets)", result.series, unit=" wips"
    )
    report += format_series(
        "Figure 4 series — client latency (s, 20 s buckets; paper plots both panels)",
        result.latency_series,
        unit=" s",
    )
    figure_report("fig4_reintegration", report)

    # Graceful degradation: service continues, dropping roughly 10-35 %.
    assert degraded > 0.5 * baseline
    assert degraded < 0.97 * baseline
    # Catch-up is seconds, not minutes (page transfer beats log replay).
    assert timeline is not None
    assert catchup < 30.0
    assert timeline.migration_pages > 0
