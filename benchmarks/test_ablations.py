"""Ablations: turning off the design choices the paper argues for.

Each ablation toggles one mechanism and measures the consequence the paper
predicts:

* version-aware scheduling vs blind load balancing — the abort rate the
  scheduler's same-version affinity is meant to suppress;
* lazy vs eager write-set application — per-replica apply work when
  readers need only part of the data;
* page transfer vs query-log replay for stale-node catch-up — the
  migration-time argument of §4.4;
* warm vs cold spare backups — the warm-up argument of §4.5 (measured in
  full in the Figure 7-9 benchmarks; summarised here via cache hit ratios).
"""

from repro.bench.calibration import BENCH_COST, BENCH_ROWS_PER_PAGE, BENCH_SCALE
from repro.bench.harness import _load_cluster
from repro.bench.report import format_table
from repro.cluster.simcluster import SimDmvCluster
from repro.common.versions import VersionVector
from repro.core import MasterReplica, SlaveReplica
from repro.sql import SqlExecutor
from repro.tpcw import MIXES, TPCW_SCHEMAS, tpcw_conflict_map


def _run_with_affinity(enabled: bool, rounds: int = 200):
    """Protocol-level harness: interleaved readers at consecutive versions.

    A master streams single-row updates to two slaves.  Each round opens a
    reader at the OLD version, commits an update, opens a reader at the NEW
    version, and only then lets the old reader touch the shared page — the
    exact interleaving Section 2.2 discusses.  The version-aware scheduler
    separates the two tags onto different replicas; blind round-robin does
    not.
    """
    from repro.engine import Column, TableSchema

    schema = TableSchema(
        "item",
        [Column("i_id", "int", nullable=False), Column("i_stock", "int")],
        primary_key=("i_id",),
    )
    master = MasterReplica("m0")
    slaves = [SlaveReplica(f"s{i}") for i in range(2)]
    rows = [{"i_id": i, "i_stock": 10} for i in range(64)]
    for engine in [master.engine] + [s.engine for s in slaves]:
        engine.create_table(schema)
        engine.bulk_load("item", rows)
    msql = SqlExecutor(master.engine)
    ssqls = {s.node_id: SqlExecutor(s.engine) for s in slaves}
    last_tag = {s.node_id: VersionVector() for s in slaves}

    from repro.common.rng import RngStream

    rng = RngStream(99, "ablation", "blind")

    def pick(tag: VersionVector, avoid=None) -> str:
        if enabled:
            # Version-aware: same tag -> same replica; otherwise a replica
            # not currently serving a conflicting version.
            for s in slaves:
                if last_tag[s.node_id] == tag:
                    return s.node_id
            for s in slaves:
                if s.node_id != avoid:
                    return s.node_id
            return slaves[0].node_id
        # Blind: plain load balancing with no version knowledge.
        return rng.choice(slaves).node_id
    aborts = reads = 0
    from repro.common.errors import VersionInconsistency

    for round_no in range(rounds):
        old_tag = master.current_versions()
        old_node = pick(old_tag)
        last_tag[old_node] = old_tag.copy()
        old_reader = slaves_by(slaves, old_node).begin_read_only(old_tag)
        # Commit an update to the shared row while the old reader is open.
        txn = master.begin_update(write_tables=["item"])
        msql.execute(txn, "UPDATE item SET i_stock = ? WHERE i_id = 1", (round_no,))
        ws = master.pre_commit(txn)
        for s in slaves:
            s.receive(ws)
        master.finalize(txn)
        new_tag = master.current_versions()
        new_node = pick(new_tag, avoid=old_node)
        last_tag[new_node] = new_tag.copy()
        new_reader = slaves_by(slaves, new_node).begin_read_only(new_tag)
        ssqls[new_node].execute(new_reader, "SELECT i_stock FROM item WHERE i_id = 1")
        slaves_by(slaves, new_node).engine.commit(new_reader)
        # Now the old reader touches the same row.
        reads += 1
        try:
            ssqls[old_node].execute(old_reader, "SELECT i_stock FROM item WHERE i_id = 1")
            slaves_by(slaves, old_node).engine.commit(old_reader)
        except VersionInconsistency:
            aborts += 1
            slaves_by(slaves, old_node).engine.abort(old_reader)
    return aborts / reads


def slaves_by(slaves, node_id):
    return next(s for s in slaves if s.node_id == node_id)


def test_ablation_version_aware_scheduling(benchmark, figure_report):
    """Version affinity keeps conflicting-version readers apart (§2.2)."""

    def run():
        return _run_with_affinity(True), _run_with_affinity(False)

    rate_on, rate_off = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        "Ablation — version-aware scheduling vs blind round-robin "
        "(adversarial interleaving of consecutive-version readers)",
        ["scheduler", "version-inconsistency aborts / read"],
        [
            ["version-aware (paper)", f"{rate_on * 100:.1f}%"],
            ["blind round-robin", f"{rate_off * 100:.1f}%"],
        ],
    )
    figure_report("ablation_version_affinity", report)
    assert rate_on == 0.0
    assert rate_off > 0.2  # blind routing collides constantly


ITEM_ROWS = 3000


def _replication_pair():
    from repro.engine import Column, TableSchema

    schema = TableSchema(
        "item",
        [Column("i_id", "int", nullable=False), Column("i_stock", "int")],
        primary_key=("i_id",),
    )
    master = MasterReplica("m0")
    slave = SlaveReplica("s0")
    rows = [{"i_id": i, "i_stock": 10} for i in range(ITEM_ROWS)]
    for engine in (master.engine, slave.engine):
        engine.create_table(schema)
        engine.bulk_load("item", rows)
    return master, slave


def test_ablation_lazy_vs_eager_apply(benchmark, figure_report):
    """Lazy application does work proportional to what readers touch."""

    def run():
        results = {}
        for mode in ("lazy", "eager"):
            master, slave = _replication_pair()
            sql = SqlExecutor(master.engine)
            for i in range(400):
                txn = master.begin_update(write_tables=["item"])
                sql.execute(txn, "UPDATE item SET i_stock = ? WHERE i_id = ?", (i, i * 7 % ITEM_ROWS))
                ws = master.pre_commit(txn)
                slave.receive(ws)
                if mode == "eager":
                    slave.apply_all_pending()
                master.finalize(txn)
            # A reader touches 10 hot rows only.
            ssql = SqlExecutor(slave.engine)
            ro = slave.begin_read_only(master.current_versions())
            for i in range(10):
                ssql.execute(ro, "SELECT i_stock FROM item WHERE i_id = ?", (i,))
            slave.engine.commit(ro)
            results[mode] = slave.counters.get("slave.ops_applied")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        "Ablation — lazy vs eager write-set application (400 updates, 10-row reader)",
        ["mode", "page ops applied at the slave"],
        [["lazy (paper)", int(results["lazy"])], ["eager", int(results["eager"])]],
    )
    figure_report("ablation_lazy_apply", report)
    assert results["lazy"] < results["eager"] * 0.25


def test_ablation_multi_master_conflict_classes(benchmark, figure_report):
    """§2.1: disjoint conflict classes permit parallel update execution.

    The ordering mix is master-CPU-bound (Figure 3).  Splitting the two
    write-heavy conflict classes (ordering-path tables vs customer
    registration) across two masters relieves the bottleneck.
    """

    def run_one(multi: bool) -> float:
        cluster = SimDmvCluster(
            TPCW_SCHEMAS,
            num_slaves=4,
            conflict_map=tpcw_conflict_map(multi_master=multi),
            multi_master=multi,
            cost_config=BENCH_COST,
            rows_per_page=BENCH_ROWS_PER_PAGE,
            seed=7,
        )
        _load_cluster(cluster, BENCH_SCALE, 42)
        cluster.warm_all_caches()
        cluster.start_browsers(220, MIXES["ordering"], BENCH_SCALE, think_time_mean=1.0)
        cluster.run(until=60.0)
        return cluster.metrics.wips.series(end=60.0).between(20.0, 60.0).mean()

    def run():
        return run_one(False), run_one(True)

    single, multi = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        "Ablation — single vs multi-master (ordering mix, 4 slaves)",
        ["configuration", "steady-state WIPS"],
        [
            ["single master (all classes)", f"{single:.1f}"],
            ["two masters (disjoint classes)", f"{multi:.1f}"],
        ],
    )
    figure_report("ablation_multi_master", report)
    # The gain is bounded by the smaller class's share of the update work
    # (customer registrations ~26 % of ordering-mix updates), so expect a
    # solid but not dramatic improvement.
    assert multi > single * 1.05


def test_ablation_page_transfer_vs_log_replay(benchmark, figure_report):
    """§4.4: migrating changed pages collapses long update chains."""

    def run():
        master, support = _replication_pair()
        sql = SqlExecutor(master.engine)
        queries = []
        hot = 50  # heavy update activity on a small set of rows
        for i in range(1200):
            txn = master.begin_update(write_tables=["item"])
            statement = ("UPDATE item SET i_stock = ? WHERE i_id = ?", (i, i % hot))
            sql.execute(txn, *statement)
            queries.append(statement)
            ws = master.pre_commit(txn)
            support.receive(ws)
            master.finalize(txn)
        joiner = SlaveReplica("joiner")
        joiner.engine.create_table(master.engine.table("item").schema)
        joiner.engine.bulk_load("item", [{"i_id": i, "i_stock": 10} for i in range(ITEM_ROWS)])
        joiner.catching_up = True
        from repro.failover.reintegration import integrate_stale_node

        stats = integrate_stale_node(joiner, support)
        return {
            "log_entries": len(queries),
            "pages_sent": stats.pages_sent,
            "bytes_sent": stats.bytes_sent,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        "Ablation — catch-up work: page transfer vs log replay (1200 updates on 50 hot rows)",
        ["strategy", "units of catch-up work"],
        [
            ["log replay (baseline)", f"{result['log_entries']} transactions to re-execute"],
            ["page transfer (paper)", f"{result['pages_sent']} pages "
             f"({result['bytes_sent']} bytes)"],
        ],
    )
    figure_report("ablation_page_transfer", report)
    # Long chains of modifications collapse into few pages.
    assert result["pages_sent"] * 10 < result["log_entries"]
