"""Figure 9: failover onto a WARM backup (page-id transfer warm-up).

Paper setup: as Figure 8, but instead of executing queries the spare
receives the page identifiers of an active slave's buffer cache (shipped
every 100 transactions) and merely touches those pages.  Performance on
failover is the same as with query-execution warm-up: seamless.
"""

from repro.bench.calibration import FAILOVER_COST, FAILOVER_SCALE
from repro.bench.harness import run_dmv_failover
from repro.bench.report import format_series, format_table


def _run():
    # Always full-length: the warm-up effect needs the full pre-failure
    # window to develop (quick mode does not shrink this experiment).
    kill_at = 480.0
    duration = 840.0
    return run_dmv_failover(
        "s0", mix_name="shopping", num_slaves=1, num_spares=1,
        warm_spares=False, pageid_ship_every=60.0,
        clients=40, kill_at=kill_at, duration=duration,
        scale=FAILOVER_SCALE, cost=FAILOVER_COST,
    )


def test_fig9_warm_backup_pageid_transfer(benchmark, figure_report):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    baseline = result.mean_before(120.0)
    dip = result.mean_during(2.0, 60.0)
    drop = 1 - dip / baseline
    report = format_table(
        "Figure 9 — warm backup via page-id transfer",
        ["quantity", "measured", "paper"],
        [
            ["baseline WIPS", f"{baseline:.1f}", "-"],
            ["first minute after failover", f"{dip:.1f}", "same as Fig. 8"],
            ["drop", f"{100 * drop:.0f}%", "seamless (almost none)"],
        ],
    )
    report += format_series("Figure 9 series — WIPS", result.series, unit=" wips")
    figure_report("fig9_warm_pageid_backup", report)

    assert drop < 0.2  # seamless failure handling