"""Figure 7: failover onto an up-to-date but COLD spare backup.

Paper setup: the larger database (400K customers), a three-node cluster
(master, one active slave, one backup kept in sync via the modification
log but with a cold buffer cache).  Killing the active slave forces the
backup into service: the throughput drop is significant and it takes more
than a minute to restore peak throughput, because the whole working set
must be faulted in.
"""

from repro.bench.calibration import FAILOVER_COST, FAILOVER_SCALE
from repro.bench.harness import run_dmv_failover
from repro.bench.report import format_series, format_table


def _run():
    # Always full-length: the warm-up effect needs the full pre-failure
    # window to develop (quick mode does not shrink this experiment).
    kill_at = 480.0
    duration = 840.0
    return run_dmv_failover(
        "s0",
        mix_name="shopping",
        num_slaves=1,
        num_spares=1,
        warm_spares=False,  # cold cache: the Figure 7 condition
        clients=40,
        kill_at=kill_at,
        duration=duration,
        scale=FAILOVER_SCALE,
        cost=FAILOVER_COST,
    )


def test_fig7_cold_uptodate_backup(benchmark, figure_report):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    baseline = result.mean_before(120.0)
    dip = result.mean_during(2.0, 60.0)
    recovery = result.recovery_point(threshold=0.9)
    report = format_table(
        "Figure 7 — failover onto a cold up-to-date backup",
        ["quantity", "measured", "paper"],
        [
            ["baseline WIPS", f"{baseline:.1f}", "-"],
            ["WIPS in first minute after failover", f"{dip:.1f} "
             f"({100 * (1 - dip / baseline):.0f}% drop)", "significant drop"],
            ["time to restore peak", f"{recovery:.0f} s", "> 60 s"],
        ],
    )
    report += format_series("Figure 7 series — WIPS", result.series, unit=" wips")
    figure_report("fig7_cold_backup", report)

    assert dip < 0.8 * baseline  # the drop is significant
    assert recovery > 30.0  # warm-up takes on the order of a minute
