"""Shared benchmark fixtures: figure-report collection and output files.

Each benchmark regenerates one paper table/figure and registers a textual
report.  Reports are written to ``benchmarks/results/`` and echoed in the
pytest terminal summary so ``pytest benchmarks/ --benchmark-only`` shows
the reproduced rows/series directly.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_REPORTS = []


@pytest.fixture
def figure_report():
    """Callable fixture: figure_report(name, text) records one report."""

    def record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        _REPORTS.append((name, text))

    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper figure reproductions")
    for name, text in _REPORTS:
        terminalreporter.write_line(text)
        terminalreporter.write_line(f"[saved to benchmarks/results/{name}.txt]")


def quick_mode() -> bool:
    """REPRO_BENCH_QUICK=1 shrinks experiment durations (CI smoke runs)."""
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"
