"""Write-path scale-out: ordering-mix WIPS vs number of masters.

The Figure 3 reproduction shows the read mixes scaling with slaves while
the write-heavy ordering mix plateaus — the single master of the big
ordering conflict class is the whole system's ceiling.  This figure holds
the read tier fixed (8 slaves) and sweeps the number of masters with the
write scale-out stack enabled (bounded update admission, epoch-batched
version-vector commit, dynamic conflict-class sharding):

* ``1 (legacy)`` — the seed configuration: unbounded MPL, one write-set
  broadcast per commit, static classes.  Under a flash write load the
  master thrashes (lock convoys, 2PL aborts in the tens of percent).
* ``1..8 (scale-out)`` — the same offered load with the new stack; the
  1-master point isolates what admission control + epoch batching buy,
  the multi-master points add conflict-class sharding on top.

The acceptance gate (ISSUE 8): 4-master WIPS >= 2x the 1-master legacy
baseline, recorded in ``benchmarks/results/BENCH_write_scaleout.json``.
"""

import json
from dataclasses import replace
from pathlib import Path

from conftest import quick_mode

from repro.bench.calibration import BENCH_COST
from repro.bench.harness import run_dmv_throughput
from repro.tpcw import TpcwScale, tpcw_conflict_map
from repro.bench.report import format_table

RESULTS_DIR = Path(__file__).parent / "results"

#: Hot-item scale: 40 items concentrates the ordering mix's writes enough
#: that the legacy single master convoys — the regime this figure probes.
SCALE = TpcwScale(num_items=40, num_customers=144)
NUM_SLAVES = 8
CLIENTS = 480
THINK_TIME = 0.3
DURATION = 40.0
SEED = 7

SCALEOUT_COST = replace(
    BENCH_COST,
    update_mpl=4,
    epoch_max_txns=8,
    epoch_ms=5.0,
    dynamic_classes=True,
    rebalance_interval=5.0,
)


def _run_point(num_masters: int, legacy: bool):
    common = dict(
        mix_name="ordering",
        num_slaves=NUM_SLAVES,
        clients=CLIENTS,
        duration=DURATION,
        scale=SCALE,
        think_time=THINK_TIME,
        seed=SEED,
    )
    if legacy:
        return run_dmv_throughput(**common)
    return run_dmv_throughput(
        **common,
        cost=SCALEOUT_COST,
        multi_master=True,
        num_masters=num_masters,
        conflict_map=tpcw_conflict_map(multi_master=True),
    )


def _run_sweep():
    # Quick mode keeps the full duration (the ratio needs the post-warm-up
    # steady state) and trims the sweep to the two gated points instead.
    master_counts = (1, 4) if quick_mode() else (1, 2, 4, 8)
    points = [("1 (legacy)", _run_point(1, legacy=True))]
    for n in master_counts:
        points.append((f"{n} (scale-out)", _run_point(n, legacy=False)))
    return points


def test_fig_multi_master_scaling(benchmark, figure_report):
    points = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    by_label = dict(points)
    baseline = by_label["1 (legacy)"].wips

    rows = []
    records = []
    for label, run in points:
        rehomes = run.replication.get("sched.class_rehomes", 0)
        rows.append([
            label,
            f"{run.wips:.1f}",
            f"x{run.wips / baseline:.2f}",
            f"{run.commit_p95 * 1e3:.1f}ms",
            f"{run.abort_rate * 100:.2f}%",
            f"{rehomes:.0f}",
        ])
        records.append({
            "label": label,
            "wips": round(run.wips, 2),
            "speedup_vs_legacy": round(run.wips / baseline, 3),
            "commit_p95_ms": round(run.commit_p95 * 1e3, 3),
            "abort_rate": round(run.abort_rate, 4),
            "rehomes": int(rehomes),
            "epochs": int(run.replication.get("engine.epochs", 0)),
            "epoch_batched_commits": int(
                run.replication.get("engine.epoch_batched_commits", 0)
            ),
        })
    table = format_table(
        "Write-path scale-out — ordering-mix WIPS vs masters (8 slaves, "
        f"{CLIENTS} clients)",
        ["masters", "WIPS", "vs legacy", "commit p95", "abort rate", "rehomes"],
        rows,
    )
    figure_report("fig_multi_master_scaling", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "write_scaleout",
        "config": {
            "mix": "ordering",
            "slaves": NUM_SLAVES,
            "clients": CLIENTS,
            "think_time": THINK_TIME,
            "duration_sim_s": DURATION,
            "seed": SEED,
            "scale": {
                "num_items": SCALE.num_items,
                "num_customers": SCALE.num_customers,
            },
            "scaleout_knobs": {
                "update_mpl": SCALEOUT_COST.update_mpl,
                "epoch_max_txns": SCALEOUT_COST.epoch_max_txns,
                "epoch_ms": SCALEOUT_COST.epoch_ms,
                "dynamic_classes": SCALEOUT_COST.dynamic_classes,
                "rebalance_interval": SCALEOUT_COST.rebalance_interval,
            },
        },
        "points": records,
    }
    with open(RESULTS_DIR / "BENCH_write_scaleout.json", "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    # Acceptance gate: 4 masters at least doubles the legacy baseline.
    four = by_label["4 (scale-out)"].wips
    assert four >= 2.0 * baseline, (
        f"4-master WIPS {four:.1f} < 2x legacy baseline {baseline:.1f}"
    )
    # The scale-out stack keeps the write path healthy: commit p95 drops
    # by an order of magnitude and aborts stay low.
    assert by_label["4 (scale-out)"].commit_p95 < by_label["1 (legacy)"].commit_p95
    assert by_label["4 (scale-out)"].abort_rate < 0.10
