"""Micro-benchmarks of the building blocks (real wall-clock timing).

These complement the figure reproductions: they time the primitive
operations of the engine and the replication protocol on this machine —
write-set application, snapshot reads, SQL execution, checkpointing and
page migration.
"""

import pytest

from repro.common.versions import VersionVector
from repro.core import MasterReplica, SlaveReplica
from repro.engine import Column, HeapEngine, IndexDef, TableSchema, TxnMode
from repro.engine.rbtree import RedBlackTree
from repro.failover.reintegration import integrate_stale_node
from repro.sql import SqlExecutor
from repro.storage import FuzzyCheckpointer, StableStore

ITEM = TableSchema(
    "item",
    [
        Column("i_id", "int", nullable=False),
        Column("i_title", "str"),
        Column("i_subject", "str"),
        Column("i_stock", "int"),
    ],
    primary_key=("i_id",),
    indexes=[IndexDef("ix_subject", ("i_subject", "i_id"))],
)

SUBJECTS = ["ARTS", "HISTORY", "SCIENCE", "SPORTS"]


def make_pair(rows=2000):
    master = MasterReplica("m0")
    slave = SlaveReplica("s0")
    data = [
        {"i_id": i, "i_title": f"b{i:06d}", "i_subject": SUBJECTS[i % 4], "i_stock": 10}
        for i in range(rows)
    ]
    for node in (master.engine, slave.engine):
        node.create_table(ITEM)
        node.bulk_load("item", data)
    return master, slave


def test_bench_master_update_txn(benchmark):
    """One single-row update transaction on the master, end to end."""
    master, slave = make_pair()
    sql = SqlExecutor(master.engine)
    counter = iter(range(10**9))

    def run():
        i = next(counter) % 2000
        txn = master.begin_update()
        sql.execute(txn, "UPDATE item SET i_stock = i_stock - 1 WHERE i_id = ?", (i,))
        ws = master.pre_commit(txn)
        slave.receive(ws)
        master.finalize(txn)

    benchmark(run)


def test_bench_slave_snapshot_read(benchmark):
    """Tagged read on a slave with pending ops to materialise."""
    master, slave = make_pair()
    msql = SqlExecutor(master.engine)
    ssql = SqlExecutor(slave.engine)
    counter = iter(range(10**9))

    def run():
        i = next(counter) % 2000
        txn = master.begin_update()
        msql.execute(txn, "UPDATE item SET i_stock = 5 WHERE i_id = ?", (i,))
        ws = master.pre_commit(txn)
        slave.receive(ws)
        master.finalize(txn)
        ro = slave.begin_read_only(master.current_versions())
        ssql.execute(ro, "SELECT i_stock FROM item WHERE i_id = ?", (i,))
        slave.engine.commit(ro)

    benchmark(run)


def test_bench_sql_index_join(benchmark):
    """A 50-row index range + projection (the SearchResults shape)."""
    engine = HeapEngine()
    engine.create_table(ITEM)
    engine.bulk_load(
        "item",
        [
            {"i_id": i, "i_title": f"b{i:06d}", "i_subject": SUBJECTS[i % 4], "i_stock": 10}
            for i in range(4000)
        ],
    )
    sql = SqlExecutor(engine)

    def run():
        txn = engine.begin(TxnMode.READ_ONLY)
        rs = sql.execute(
            txn,
            "SELECT i_id, i_title FROM item WHERE i_subject = 'ARTS' "
            "ORDER BY i_id LIMIT 50",
        )
        engine.commit(txn)
        return rs

    result = benchmark(run)
    assert len(result.rows) == 50


def test_bench_rbtree_insert_delete(benchmark):
    """RB-tree churn: the master's index rebalancing cost."""
    def run():
        tree = RedBlackTree()
        for i in range(500):
            tree.insert((i * 7919) % 1000, i)
        for i in range(0, 500, 2):
            tree.delete((i * 7919) % 1000)
        return len(tree)

    benchmark(run)


def test_bench_fuzzy_checkpoint(benchmark):
    """Full fuzzy checkpoint of a 2000-row database."""
    master, _ = make_pair()
    stable = StableStore()
    ckpt = FuzzyCheckpointer(master.engine.store, stable)

    def run():
        master.engine.store.get(next(iter(master.engine.store.version_map()))).version += 1
        return ckpt.full_checkpoint(lambda page: False)

    benchmark(run)


def test_bench_page_migration(benchmark):
    """Version-aware page transfer between two slaves."""
    master, support = make_pair()
    sql = SqlExecutor(master.engine)
    for i in range(200):
        txn = master.begin_update()
        sql.execute(txn, "UPDATE item SET i_stock = ? WHERE i_id = ?", (i, i * 7 % 2000))
        ws = master.pre_commit(txn)
        support.receive(ws)
        master.finalize(txn)

    def run():
        joiner = SlaveReplica("joiner")
        joiner.engine.create_table(ITEM)
        joiner.engine.bulk_load(
            "item",
            [
                {"i_id": i, "i_title": f"b{i:06d}", "i_subject": SUBJECTS[i % 4], "i_stock": 10}
                for i in range(2000)
            ],
        )
        joiner.catching_up = True
        return integrate_stale_node(joiner, support)

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.pages_sent > 0


def test_bench_writeset_discard(benchmark):
    """Master-failure cleanup: discarding unconfirmed write-sets."""
    master, slave = make_pair()
    sql = SqlExecutor(master.engine)

    def setup():
        for i in range(50):
            txn = master.begin_update()
            sql.execute(txn, "UPDATE item SET i_stock = 1 WHERE i_id = ?", (i,))
            ws = master.pre_commit(txn)
            slave.receive(ws)
            master.finalize(txn)
        return (VersionVector(),), {}

    def run(confirmed):
        return slave.discard_above(confirmed)

    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
