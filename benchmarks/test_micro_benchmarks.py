"""Micro-benchmarks of the building blocks (real wall-clock timing).

These complement the figure reproductions: they time the primitive
operations of the engine and the replication protocol on this machine —
write-set application, snapshot reads, SQL execution, checkpointing and
page migration.
"""

import pytest

from repro.common.versions import VersionVector
from repro.core import MasterReplica, SlaveReplica
from repro.engine import Column, HeapEngine, IndexDef, TableSchema, TxnMode
from repro.engine.rbtree import RedBlackTree
from repro.failover.reintegration import integrate_stale_node
from repro.sql import SqlExecutor
from repro.storage import FuzzyCheckpointer, StableStore

ITEM = TableSchema(
    "item",
    [
        Column("i_id", "int", nullable=False),
        Column("i_title", "str"),
        Column("i_subject", "str"),
        Column("i_stock", "int"),
    ],
    primary_key=("i_id",),
    indexes=[IndexDef("ix_subject", ("i_subject", "i_id"))],
)

SUBJECTS = ["ARTS", "HISTORY", "SCIENCE", "SPORTS"]


def make_pair(rows=2000):
    master = MasterReplica("m0")
    slave = SlaveReplica("s0")
    data = [
        {"i_id": i, "i_title": f"b{i:06d}", "i_subject": SUBJECTS[i % 4], "i_stock": 10}
        for i in range(rows)
    ]
    for node in (master.engine, slave.engine):
        node.create_table(ITEM)
        node.bulk_load("item", data)
    return master, slave


def test_bench_master_update_txn(benchmark):
    """One single-row update transaction on the master, end to end."""
    master, slave = make_pair()
    sql = SqlExecutor(master.engine)
    counter = iter(range(10**9))

    def run():
        i = next(counter) % 2000
        txn = master.begin_update()
        sql.execute(txn, "UPDATE item SET i_stock = i_stock - 1 WHERE i_id = ?", (i,))
        ws = master.pre_commit(txn)
        slave.receive(ws)
        master.finalize(txn)

    benchmark(run)


def test_bench_slave_snapshot_read(benchmark):
    """Tagged read on a slave with pending ops to materialise."""
    master, slave = make_pair()
    msql = SqlExecutor(master.engine)
    ssql = SqlExecutor(slave.engine)
    counter = iter(range(10**9))

    def run():
        i = next(counter) % 2000
        txn = master.begin_update()
        msql.execute(txn, "UPDATE item SET i_stock = 5 WHERE i_id = ?", (i,))
        ws = master.pre_commit(txn)
        slave.receive(ws)
        master.finalize(txn)
        ro = slave.begin_read_only(master.current_versions())
        ssql.execute(ro, "SELECT i_stock FROM item WHERE i_id = ?", (i,))
        slave.engine.commit(ro)

    benchmark(run)


def test_bench_sql_index_join(benchmark):
    """A 50-row index range + projection (the SearchResults shape)."""
    engine = HeapEngine()
    engine.create_table(ITEM)
    engine.bulk_load(
        "item",
        [
            {"i_id": i, "i_title": f"b{i:06d}", "i_subject": SUBJECTS[i % 4], "i_stock": 10}
            for i in range(4000)
        ],
    )
    sql = SqlExecutor(engine)

    def run():
        txn = engine.begin(TxnMode.READ_ONLY)
        rs = sql.execute(
            txn,
            "SELECT i_id, i_title FROM item WHERE i_subject = 'ARTS' "
            "ORDER BY i_id LIMIT 50",
        )
        engine.commit(txn)
        return rs

    result = benchmark(run)
    assert len(result.rows) == 50


def test_bench_rbtree_insert_delete(benchmark):
    """RB-tree churn: the master's index rebalancing cost."""
    def run():
        tree = RedBlackTree()
        for i in range(500):
            tree.insert((i * 7919) % 1000, i)
        for i in range(0, 500, 2):
            tree.delete((i * 7919) % 1000)
        return len(tree)

    benchmark(run)


def test_bench_fuzzy_checkpoint(benchmark):
    """Full fuzzy checkpoint of a 2000-row database."""
    master, _ = make_pair()
    stable = StableStore()
    ckpt = FuzzyCheckpointer(master.engine.store, stable)

    def run():
        master.engine.store.get(next(iter(master.engine.store.version_map()))).version += 1
        return ckpt.full_checkpoint(lambda page: False)

    benchmark(run)


def test_bench_page_migration(benchmark):
    """Version-aware page transfer between two slaves."""
    master, support = make_pair()
    sql = SqlExecutor(master.engine)
    for i in range(200):
        txn = master.begin_update()
        sql.execute(txn, "UPDATE item SET i_stock = ? WHERE i_id = ?", (i, i * 7 % 2000))
        ws = master.pre_commit(txn)
        support.receive(ws)
        master.finalize(txn)

    def run():
        joiner = SlaveReplica("joiner")
        joiner.engine.create_table(ITEM)
        joiner.engine.bulk_load(
            "item",
            [
                {"i_id": i, "i_title": f"b{i:06d}", "i_subject": SUBJECTS[i % 4], "i_stock": 10}
                for i in range(2000)
            ],
        )
        joiner.catching_up = True
        return integrate_stale_node(joiner, support)

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.pages_sent > 0


def test_bench_writeset_discard(benchmark):
    """Master-failure cleanup: discarding unconfirmed write-sets."""
    master, slave = make_pair()
    sql = SqlExecutor(master.engine)

    def setup():
        for i in range(50):
            txn = master.begin_update()
            sql.execute(txn, "UPDATE item SET i_stock = 1 WHERE i_id = ?", (i,))
            ws = master.pre_commit(txn)
            slave.receive(ws)
            master.finalize(txn)
        return (VersionVector(),), {}

    def run(confirmed):
        return slave.discard_above(confirmed)

    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)


# -- write-set fast path -----------------------------------------------------


def _time_best(fn, repeats=5):
    """Best-of-N wall-clock timing (seconds) for one call of ``fn``."""
    import time

    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_delta_encode_decode_vs_full_image(benchmark, figure_report):
    """Delta UPDATE round-trip (encode + size + apply) vs full-image ops."""
    from repro.common.ids import PageId
    from repro.storage.ops import OpKind, PageOp, apply_op, delta_update_op, encoded_size
    from repro.storage.page import Page

    wide = tuple([7, "title-string-with-some-padding", "ARTS"] + list(range(9)))
    after = wide[:3] + (999,) + wide[4:]
    index_positions = ((2, 0),)
    n = 500

    def full_roundtrip():
        page = Page(PageId("t", 0), 4)
        page.put(1, wide)
        total = 0
        for _ in range(n):
            op = PageOp(PageId("t", 0), OpKind.UPDATE, 1, after, wide)
            total += encoded_size(op)
            apply_op(page, op)
        return total

    def delta_roundtrip():
        page = Page(PageId("t", 0), 4)
        page.put(1, wide)
        total = 0
        for _ in range(n):
            op = delta_update_op(PageId("t", 0), 1, wide, after, index_positions)
            total += encoded_size(op)
            apply_op(page, op)
        return total

    full_bytes = full_roundtrip() / n
    delta_bytes = delta_roundtrip() / n
    t_full = _time_best(full_roundtrip) / n
    t_delta = _time_best(delta_roundtrip) / n
    benchmark.pedantic(delta_roundtrip, rounds=3, iterations=1)

    assert delta_bytes < full_bytes / 2  # single-column change on a 12-col row
    figure_report(
        "micro_delta_encoding",
        "delta-encoded UPDATE vs full-image (12-col row, 1 changed col)\n"
        f"  wire bytes/op : full {full_bytes:7.1f}   delta {delta_bytes:7.1f}"
        f"   ({1 - delta_bytes / full_bytes:.0%} smaller)\n"
        f"  encode+apply  : full {t_full * 1e6:7.2f}us delta {t_delta * 1e6:7.2f}us",
    )


def test_bench_deep_queue_materialise_coalesced_vs_sequential(benchmark, figure_report):
    """Materialising a deep pending queue: coalesced vs one-op-at-a-time."""
    from collections import deque

    from repro.common.counters import Counters
    from repro.common.ids import PageId
    from repro.storage.ops import apply_op, delta_update_op
    from repro.storage.page import Page

    page_id = PageId("t", 0)
    capacity = 8
    depth = 4000
    base = Page(page_id, capacity)
    wide = tuple([0, "title-string-with-some-padding", "ARTS"] + list(range(9)))
    for slot in range(capacity):
        base.put(slot, (slot,) + wide[1:])

    queue = []
    shadow = {slot: base.get(slot) for slot in range(capacity)}
    for v in range(1, depth + 1):
        slot = v % capacity
        before = shadow[slot]
        after = before[:3] + (v,) + before[4:]
        queue.append((v, delta_update_op(page_id, slot, before, after, ((2, 0),))))
        shadow[slot] = after

    def sequential():
        page = base.snapshot()
        for version, op in queue:
            apply_op(page, op)
            page.version = max(page.version, version)
        return page

    def coalesced():
        page = base.snapshot()
        slave = SlaveReplica.__new__(SlaveReplica)
        slave.counters = Counters()
        plan, top, popped = slave._coalesce(deque(queue), None)
        slave._apply_plan(page, plan, top, popped)
        return page

    assert coalesced().slots == sequential().slots
    t_seq = _time_best(sequential)
    t_coal = _time_best(coalesced)
    benchmark.pedantic(coalesced, rounds=3, iterations=1)

    assert t_coal < t_seq  # the coalesced path must win on a deep queue
    figure_report(
        "micro_coalesced_materialise",
        f"deep-queue materialisation ({depth} pending ops, {capacity} slots)\n"
        f"  sequential apply : {t_seq * 1e3:8.2f} ms\n"
        f"  coalesced apply  : {t_coal * 1e3:8.2f} ms   ({t_seq / t_coal:.1f}x faster)",
    )


def test_bench_batched_vs_unbatched_broadcast(figure_report):
    """Simulated network time for bursty broadcast: batched vs per-message."""
    from repro.cluster.costs import CostConfig

    master, slave = make_pair(rows=200)
    sql = SqlExecutor(master.engine)
    write_sets = []
    for i in range(200):
        txn = master.begin_update()
        sql.execute(txn, "UPDATE item SET i_stock = ? WHERE i_id = ?", (i, i))
        ws = master.pre_commit(txn)
        slave.receive(ws)
        master.finalize(txn)
        write_sets.append(ws)

    cfg = CostConfig()
    burst = 10  # concurrent pre-commits per group-commit window
    unbatched = sum(
        cfg.net_delay(ws.byte_size()) + cfg.net_delay(cfg.net_ack_bytes)
        for ws in write_sets
    )
    batched = 0.0
    for i in range(0, len(write_sets), burst):
        group = write_sets[i : i + burst]
        payload = sum(ws.byte_size() for ws in group)
        batched += cfg.batch_delay(payload, len(group)) + cfg.net_delay(cfg.net_ack_bytes)

    assert batched < unbatched
    figure_report(
        "micro_broadcast_batching",
        f"broadcast of {len(write_sets)} write-sets (bursts of {burst}), simulated net time\n"
        f"  per-message : {unbatched * 1e3:8.3f} ms\n"
        f"  batched     : {batched * 1e3:8.3f} ms   ({1 - batched / unbatched:.0%} less)",
    )


def test_bench_tracing_disabled_overhead(figure_report):
    """Disabled tracing must cost <=5 % of a seeded cluster run.

    The bound is computed, not guessed from noisy timer deltas: an enabled
    run counts how many spans the workload would emit, a tight loop prices
    one disabled-path hook (disabled ``tracer.span`` plus a null-span
    child/annotate/finish chain — strictly more work than any real call
    site does when tracing is off), and their product is the worst-case
    instrumentation cost, which must stay under 5 % of the untraced
    wall-clock time.
    """
    import time

    from conftest import quick_mode

    from repro.cluster.simcluster import SimDmvCluster
    from repro.obs import NULL_TRACER
    from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale

    scale = TpcwScale(num_items=60, num_customers=200)
    horizon = 12.0 if quick_mode() else 25.0

    def seeded_run(trace):
        cluster = SimDmvCluster(TPCW_SCHEMAS, num_slaves=2, seed=3, trace=trace)
        cluster.load(TpcwDataGenerator(scale, seed=3))
        cluster.warm_all_caches()
        cluster.start_browsers(6, MIXES["ordering"], scale, think_time_mean=0.2)
        cluster.sim.schedule(horizon - 4.0, cluster.stop_browsers)
        cluster.run(until=horizon)
        return cluster

    t_off = _time_best(lambda: seeded_run(False), repeats=3)
    traced = seeded_run(True)
    spans = traced.tracer.finished_count + len(traced.tracer.open_spans())
    assert spans > 0

    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        s = NULL_TRACER.span("execute", node="m0", attempt=1)
        s.child("apply", page="p").annotate(popped=1).finish(status="ok")
    per_hook = (time.perf_counter() - t0) / n

    worst_case = spans * per_hook
    overhead = worst_case / t_off
    assert overhead <= 0.05, (
        f"disabled-path instrumentation bound {overhead:.2%} exceeds 5% "
        f"({spans} spans x {per_hook * 1e9:.0f}ns vs {t_off:.3f}s run)"
    )
    figure_report(
        "micro_tracing_overhead",
        f"tracing off: {horizon:.0f}s simulated run in {t_off:.3f}s wall\n"
        f"  spans a traced run emits : {spans}\n"
        f"  disabled hook cost       : {per_hook * 1e9:7.0f} ns\n"
        f"  worst-case overhead      : {overhead:.3%} (budget 5%)",
    )


# -- engine hot path ---------------------------------------------------------


def test_bench_kernel_event_dispatch(benchmark, figure_report):
    """Raw event-kernel dispatch rate, and the zero-delay fast-path share.

    A ping-pong process pair exchanging zero-delay events is the worst
    case for the scheduler: every resume is immediate, so the fast path
    (bypassing the heap for delay-0 wakeups of the next runnable) should
    carry nearly all of the traffic.
    """
    from repro.sim.kernel import Simulator, Timeout

    n = 5_000

    def run():
        sim = Simulator()

        def ping():
            for _ in range(n):
                yield Timeout(sim, 0.0)

        sim.spawn(ping())
        sim.run()
        return sim

    sim = benchmark(run)
    assert sim.fast_resumes > 0
    events = n
    fast_share = min(sim.fast_resumes / events, 1.0)
    assert fast_share >= 0.9  # the zero-delay loop must ride the fast path
    figure_report(
        "micro_kernel_dispatch",
        f"event kernel: {events} zero-delay resumes per run\n"
        f"  fast-path resumes : {sim.fast_resumes} ({fast_share:.0%} of dispatches)",
    )


def test_bench_page_slot_read_throughput(benchmark, figure_report):
    """Tight page-slot fetch loop: the cost of one ``Page.get``.

    The ``__slots__``/array-backed page layout pays off here — this is the
    innermost loop of every scan and index probe.
    """
    import time

    from repro.common.ids import PageId
    from repro.storage.page import Page

    capacity = 64
    page = Page(PageId("t", 0), capacity)
    for slot in range(capacity):
        page.put(slot, (slot, f"b{slot:06d}", "ARTS", 10))
    n = 50_000

    def run():
        get = page.get
        total = 0
        for i in range(n):
            row = get(i & 63)
            total += row[0]
        return total

    benchmark(run)
    t0 = time.perf_counter()
    run()
    per_read = (time.perf_counter() - t0) / n
    figure_report(
        "micro_page_slot_reads",
        f"page-slot reads ({capacity}-slot page, {n} fetches)\n"
        f"  per read : {per_read * 1e9:7.0f} ns "
        f"({1 / per_read / 1e6:.2f} M reads/s)",
    )


def test_bench_plan_cache_hit_rate(benchmark, figure_report):
    """Repeated statement execution must hit the per-executor plan cache.

    The workload shape mirrors a TPC-W browser: a handful of distinct
    statement texts executed thousands of times with different bind
    parameters.  Everything after the first compile of each text must be
    a cache hit.
    """
    engine = HeapEngine()
    engine.create_table(ITEM)
    engine.bulk_load(
        "item",
        [
            {"i_id": i, "i_title": f"b{i:06d}", "i_subject": SUBJECTS[i % 4], "i_stock": 10}
            for i in range(200)
        ],
    )

    statements = [
        "SELECT i_stock FROM item WHERE i_id = ?",
        "SELECT i_id, i_title FROM item WHERE i_subject = 'ARTS' ORDER BY i_id LIMIT 20",
        "UPDATE item SET i_stock = i_stock - 1 WHERE i_id = ?",
    ]
    rounds = 400

    def run():
        sql = SqlExecutor(engine)
        for i in range(rounds):
            txn = engine.begin()
            sql.execute(txn, statements[0], (i % 200,))
            sql.execute(txn, statements[1])
            sql.execute(txn, statements[2], (i % 200,))
            engine.commit(txn)
        return sql

    sql = benchmark(run)
    executions = rounds * len(statements)
    hit_rate = sql.plan_cache_hits / executions
    assert sql.plan_cache_misses == len(statements)  # one compile per text
    assert hit_rate >= 0.99
    figure_report(
        "micro_plan_cache",
        f"plan cache: {executions} executions over {len(statements)} statement texts\n"
        f"  hits {sql.plan_cache_hits}  misses {sql.plan_cache_misses} "
        f"(hit rate {hit_rate:.1%})",
    )


def test_ordering_mix_delta_savings(figure_report):
    """TPC-W ordering mix must ship >=30% fewer write-set bytes via deltas."""
    from conftest import quick_mode

    from repro.bench.harness import run_dmv_throughput

    duration = 14.0 if quick_mode() else 20.0
    run = run_dmv_throughput("ordering", 4, 100, duration=duration)

    assert run.delta_savings_fraction >= 0.30
    rep = run.replication
    per_batch = rep.get("net.write_sets_sent", 0.0) / max(rep.get("net.batches", 1.0), 1.0)
    figure_report(
        "micro_delta_savings_ordering",
        f"ordering mix, 4 slaves, 100 clients, {duration:.0f}s simulated\n"
        f"  wips {run.wips:.1f}  abort rate {run.abort_rate:.2%}\n"
        f"  bytes shipped {rep.get('net.bytes_shipped', 0.0):,.0f}"
        f"  saved by deltas {rep.get('net.bytes_saved_delta', 0.0):,.0f}"
        f"  ({run.delta_savings_fraction:.1%})\n"
        f"  write-sets/batch {per_batch:.2f}  ops coalesced"
        f" {rep.get('slave.ops_coalesced', 0.0):,.0f}",
    )
