"""Figure 8: failover onto a WARM backup (1 % query-execution warm-up).

Paper setup: as Figure 7, but the scheduler sends ~1 % of the read-only
workload to the spare backup so its buffer cache holds the most frequently
referenced pages.  The effect of the failure on throughput is then almost
unnoticeable.

Scaling note: the paper warms the spare for ~17 minutes at hundreds of
WIPS; at our scaled-down throughput the equivalent number of warm-up
interactions requires a ~2 % fraction over the pre-failure window (see
EXPERIMENTS.md).
"""

from repro.bench.calibration import FAILOVER_COST, FAILOVER_SCALE
from repro.bench.harness import run_dmv_failover
from repro.bench.report import format_series, format_table


def _run():
    # Always full-length: the warm-up effect needs the full pre-failure
    # window to develop (quick mode does not shrink this experiment).
    kill_at = 480.0
    duration = 840.0
    cold = run_dmv_failover(
        "s0", mix_name="shopping", num_slaves=1, num_spares=1,
        warm_spares=False, clients=40, kill_at=kill_at, duration=duration,
        scale=FAILOVER_SCALE, cost=FAILOVER_COST,
    )
    warm = run_dmv_failover(
        "s0", mix_name="shopping", num_slaves=1, num_spares=1,
        warm_spares=False, spare_read_fraction=0.02,
        clients=40, kill_at=kill_at, duration=duration,
        scale=FAILOVER_SCALE, cost=FAILOVER_COST,
    )
    return cold, warm


def test_fig8_warm_backup_query_execution(benchmark, figure_report):
    cold, warm = benchmark.pedantic(_run, rounds=1, iterations=1)
    cold_base, warm_base = cold.mean_before(120.0), warm.mean_before(120.0)
    cold_dip, warm_dip = cold.mean_during(2.0, 60.0), warm.mean_during(2.0, 60.0)
    report = format_table(
        "Figure 8 — warm backup via periodic query execution",
        ["condition", "baseline WIPS", "first minute after failover", "drop"],
        [
            ["cold backup (Fig. 7)", f"{cold_base:.1f}", f"{cold_dip:.1f}",
             f"{100 * (1 - cold_dip / cold_base):.0f}%"],
            ["warm backup (reads diverted)", f"{warm_base:.1f}", f"{warm_dip:.1f}",
             f"{100 * (1 - warm_dip / warm_base):.0f}%"],
        ],
    )
    report += format_series("Figure 8 series — WIPS (warm backup)", warm.series, unit=" wips")
    figure_report("fig8_warm_query_backup", report)

    # The warm backup's dip is much shallower than the cold one's.
    cold_drop = 1 - cold_dip / cold_base
    warm_drop = 1 - warm_dip / warm_base
    assert warm_drop < cold_drop * 0.6
    assert warm_drop < 0.2  # failure almost unnoticeable