"""Figure 6: breakdown of the failover stages.

Paper result: the InnoDB failover is dominated by the DB-update phase
(~94 s of reading and replaying on-disk logs) plus cache warm-up; the DMV
failover instead has a ~6 s cleanup/recovery phase (aborting partially
propagated updates and promoting a new master), a short page-transfer
catch-up, and a cache warm-up phase of similar length to InnoDB's — so the
in-memory tier wins by eliminating log replay.
"""

from conftest import quick_mode

from repro.bench.harness import run_dmv_failover, run_innodb_failover
from repro.bench.report import format_table


def _run():
    # Cheap experiment; quick mode does not shrink it (see Fig. 5 bench).
    innodb = run_innodb_failover(
        clients=24, kill_at=300.0, duration=900.0, refresh_interval=280.0
    )
    dmv = run_dmv_failover(
        "m0", num_slaves=2, num_spares=1, stale_backup=True,
        clients=60, kill_at=120.0, duration=420.0,
    )
    return innodb, dmv


def test_fig6_failover_stage_weights(benchmark, figure_report):
    innodb, dmv = benchmark.pedantic(_run, rounds=1, iterations=1)

    dmv_t = dmv.timeline
    innodb_t = innodb.timeline
    dmv_recovery = dmv_t.recovery_duration()
    dmv_migration = dmv_t.migration_duration()
    dmv_total = dmv.recovery_point(threshold=0.85)
    dmv_warmup = max(0.0, dmv_total - dmv_recovery - dmv_migration)
    innodb_update = innodb_t.db_update_duration()
    innodb_total = innodb.recovery_point(threshold=0.85)
    innodb_warmup = max(0.0, innodb_total - innodb_update)

    report = format_table(
        "Figure 6 — failover stage weights (seconds)",
        ["stage", "InnoDB", "DMV", "paper shape"],
        [
            ["cleanup (Recovery)", "0.0", f"{dmv_recovery:.1f}", "DMV-only, ~6 s"],
            ["data migration (DB Update)", f"{innodb_update:.1f}", f"{dmv_migration:.1f}",
             "InnoDB ~94 s log replay vs small page transfer"],
            ["buffer cache warm-up", f"{innodb_warmup:.1f}", f"{dmv_warmup:.1f}",
             "similar for both schemes"],
            ["total to full service", f"{innodb_total:.1f}", f"{dmv_total:.1f}",
             "DMV < 1/3 of InnoDB"],
        ],
    )
    figure_report("fig6_stage_breakdown", report)

    # Shape: log replay dominates InnoDB; page transfer is far smaller.
    assert innodb_update > dmv_migration * 3
    # DMV recovery (cleanup + promotion) is seconds.
    assert 0.0 < dmv_recovery < 30.0
    # The in-memory protocol reconfiguration beats log replay outright.
    assert dmv_recovery + dmv_migration < innodb_update
