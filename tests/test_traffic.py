"""Open-loop traffic engine: arrival processes, client defenses, engine.

The load must be *open-loop* (arrival schedules are a pure function of
(seed, shape), never of completions), deterministic (same seed, same
schedule, same fingerprint) and honestly measured (latency from the
scheduled arrival time, so queueing a closed-loop client would absorb
shows up in the histogram).
"""

import pytest

from repro.chaos.faults import FaultPlan
from repro.chaos.scenario import run_chaos_scenario
from repro.cluster.costs import CostConfig
from repro.common.rng import RngStream
from repro.traffic.arrivals import (
    BurstRate,
    ConstantRate,
    DiurnalRate,
    iter_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.traffic.budget import CircuitBreaker, RetryBudget
from repro.traffic.scenario import (
    TenantSpec,
    TrafficScenario,
    overload_base_config,
    overload_defense_config,
)


class TestRateShapes:
    def test_composite_sums_rates_and_peaks(self):
        shape = ConstantRate(10.0) + BurstRate(extra=40.0, start=5.0, duration=2.0)
        assert shape.rate(1.0) == 10.0
        assert shape.rate(6.0) == 50.0
        assert shape.rate(7.0) == 10.0  # burst window is half-open
        assert shape.peak() == 50.0
        assert shape.bursts() == [(5.0, 7.0)]

    def test_composite_of_composites_flattens(self):
        a = ConstantRate(1.0) + BurstRate(extra=2.0, start=0.0, duration=1.0)
        b = a + ConstantRate(3.0)
        assert len(b.shapes) == 3
        assert b.peak() == 6.0

    def test_diurnal_stays_within_envelope(self):
        shape = DiurnalRate(base=10.0, amplitude=0.6, period=60.0)
        rates = [shape.rate(t / 2.0) for t in range(240)]
        assert min(rates) >= 0.0
        assert max(rates) <= shape.peak() + 1e-9
        # The curve actually swings: trough well below base, crest above.
        assert min(rates) < 5.0 and max(rates) > 15.0


class TestArrivalProcesses:
    def test_poisson_schedule_is_deterministic_per_seed(self):
        shape = ConstantRate(20.0)
        a = list(poisson_arrivals(RngStream(3, "t"), shape, 30.0))
        b = list(poisson_arrivals(RngStream(3, "t"), shape, 30.0))
        c = list(poisson_arrivals(RngStream(4, "t"), shape, 30.0))
        assert a == b
        assert a != c
        assert all(0.0 <= t < 30.0 for t in a)
        assert a == sorted(a)

    def test_poisson_empirical_rate_tracks_shape(self):
        shape = ConstantRate(20.0)
        arrivals = list(poisson_arrivals(RngStream(5, "t"), shape, 100.0))
        assert 20.0 * 100.0 * 0.85 < len(arrivals) < 20.0 * 100.0 * 1.15

    def test_poisson_thinning_concentrates_in_burst_window(self):
        shape = ConstantRate(2.0) + BurstRate(extra=40.0, start=20.0, duration=10.0)
        arrivals = list(poisson_arrivals(RngStream(1, "t"), shape, 60.0))
        inside = [t for t in arrivals if 20.0 <= t < 30.0]
        outside = [t for t in arrivals if not 20.0 <= t < 30.0]
        # ~420 arrivals inside the 10 s window vs ~100 across the other 50 s.
        assert len(inside) > 2 * len(outside)

    def test_uniform_pacing_is_rng_free_and_exact(self):
        shape = ConstantRate(10.0)
        a = list(uniform_arrivals(RngStream(1, "t"), shape, 2.0))
        b = list(uniform_arrivals(RngStream(99, "t"), shape, 2.0))
        assert a == b  # schedule never touches the stream
        assert len(a) == 20
        steps = [a[i + 1] - a[i] for i in range(len(a) - 1)]
        assert all(abs(step - 0.1) < 1e-9 for step in steps)

    def test_uniform_skips_zero_rate_stretches(self):
        shape = BurstRate(extra=4.0, start=10.0, duration=5.0)
        arrivals = list(uniform_arrivals(RngStream(1, "t"), shape, 20.0))
        assert arrivals
        assert all(10.0 <= t < 15.0 for t in arrivals)

    def test_unknown_process_raises(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            list(iter_arrivals("bogus", RngStream(1, "t"), ConstantRate(1.0), 1.0))


class TestRetryBudget:
    def test_burst_spends_down_then_exhausts(self):
        budget = RetryBudget(rate=1.0, burst=3.0)
        assert [budget.try_spend(0.0) for _ in range(4)] == [True, True, True, False]
        assert budget.spent == 3
        assert budget.exhausted == 1

    def test_budget_refills_at_rate(self):
        budget = RetryBudget(rate=2.0, burst=2.0)
        assert budget.try_spend(0.0) and budget.try_spend(0.0)
        assert not budget.try_spend(0.0)
        assert budget.try_spend(0.6)  # 0.6 s * 2/s = 1.2 tokens back
        assert budget.tokens(0.6) < 1.0

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryBudget(rate=0.0)


class TestCircuitBreaker:
    def test_opens_at_failure_fraction_and_sheds(self):
        breaker = CircuitBreaker(0.5, window=4, cooldown=5.0)
        for ok in (True, False, False, False):
            breaker.record(ok, now=1.0)
        assert breaker.state == "open"
        assert breaker.opens == 1
        assert not breaker.allow(2.0)
        assert breaker.short_circuits == 1

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(0.5, window=2, cooldown=5.0)
        breaker.record(False, 0.0)
        breaker.record(False, 0.0)
        assert breaker.state == "open"
        assert breaker.allow(6.0)  # cooldown elapsed: one probe through
        assert breaker.state == "half-open"
        assert not breaker.allow(6.1)  # only one probe at a time
        breaker.record(True, 6.5)
        assert breaker.state == "closed"
        assert breaker.allow(6.6)

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(0.5, window=2, cooldown=5.0)
        breaker.record(False, 0.0)
        breaker.record(False, 0.0)
        assert breaker.allow(6.0)
        breaker.record(False, 6.5)
        assert breaker.state == "open"
        assert not breaker.allow(7.0)


def _quiet_scenario(rate=6.0, duration=40.0, **tenant_kwargs):
    """One-tenant scenario on a clean fabric (fast to simulate)."""
    return TrafficScenario(
        name="unit",
        duration=duration,
        tenants=(
            TenantSpec("web", shape=ConstantRate(rate), mix="shopping", **tenant_kwargs),
        ),
        faults=FaultPlan(seed=1, events=()),
        settle=10.0,
    )


def _run(scenario, seed=3, cost_config=None):
    return run_chaos_scenario(seed=seed, cost_config=cost_config, traffic=scenario)


class TestOpenLoopEngine:
    def test_run_is_deterministic(self):
        a = _run(_quiet_scenario())
        b = _run(_quiet_scenario())
        assert a.fingerprint == b.fingerprint
        assert a.traffic.tenants["web"].injected == b.traffic.tenants["web"].injected
        assert a.traffic.tenants["web"].injected > 0

    def test_offered_load_is_independent_of_cluster_speed(self):
        # Open loop: a ~30x slower server must see the *same* arrival
        # schedule — and the stall must show in the latency histogram
        # because latency is measured from the scheduled arrival time
        # (the coordinated-omission fix; a closed-loop client would have
        # silently injected less and reported rosy latencies).
        fast = _run(_quiet_scenario())
        slow = _run(_quiet_scenario(), cost_config=overload_base_config())
        f, s = fast.traffic.tenants["web"], slow.traffic.tenants["web"]
        assert f.injected == s.injected
        assert s.latency.percentile(99) > 2.0 * f.latency.percentile(99)

    def test_accounting_identity_holds_at_quiescence(self):
        report = _run(_quiet_scenario())
        for stats in report.traffic.tenants.values():
            assert stats.in_flight == 0
            assert stats.accounted() == stats.injected
        assert report.ok(), [str(r) for r in report.invariants]

    def test_admission_rejects_are_counted_and_shed(self):
        # A 2/s bucket under 6/s offered load must shed; sheds are cheap
        # (no server work) and show up in both counters and tenant stats.
        cfg = overload_base_config(admission_rate=2.0, admission_burst=2.0)
        report = _run(_quiet_scenario(), cost_config=cfg)
        assert report.counters.get("sched.admission_rejects", 0) > 0
        stats = report.traffic.tenants["web"]
        assert stats.shed_by_cause.get("admission-reject", 0) > 0
        assert stats.accounted() == stats.injected

    def test_tight_deadline_cancels_and_fails_terminally(self):
        # On the slow server shape a 60 ms deadline cannot be met by
        # multi-statement interactions: the server cancels mid-flight
        # (sched.deadline_cancels) and the client records a terminal
        # failure instead of retrying doomed work.
        cfg = overload_base_config(request_deadline=0.06)
        report = _run(_quiet_scenario(), cost_config=cfg)
        assert report.counters.get("sched.deadline_cancels", 0) > 0
        stats = report.traffic.tenants["web"]
        assert stats.failed > 0
        assert stats.accounted() == stats.injected

    def test_defense_configs_default_off(self):
        cfg = CostConfig()
        assert cfg.admission_rate == 0
        assert cfg.admission_queue_watermark == 0
        assert cfg.request_deadline == 0
        assert cfg.retry_budget_rate == 0
        assert cfg.breaker_failure_threshold == 0
        on = overload_defense_config()
        assert on.admission_rate > 0
        assert on.request_deadline > 0
        assert on.retry_budget_rate > 0
        assert on.breaker_failure_threshold > 0
