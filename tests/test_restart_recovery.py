"""Integration tests: restart-from-own-disk recovery on the simulated cluster.

The durable-WAL mode (``CostConfig(durable_wal=True)``) makes every node
fsync a content-carrying WAL at pre-commit/receive time and checkpoint to
its stable store; a crashed node then restarts from its *own* disk —
checkpoint restore, torn-tail-truncated WAL redo, ghost filtering against
the confirmed commit log — followed by gap replay / migration of only the
commits it missed.  These tests drive that path end to end, assert the
post-quiescence durability invariants, pin fingerprint reproducibility of
the durability chaos plan, and pin that the machinery is invisible
(events, counters, fingerprints) when the flag is off.
"""

import pytest

from repro.chaos import (
    BitFlip,
    CrashNode,
    FaultPlan,
    RestartNode,
    check_all_invariants,
    check_durable_prefix,
    check_no_ghost_commits,
    durability_chaos_plan,
    run_chaos_scenario,
)
from repro.cluster.costs import CostConfig
from repro.cluster.simcluster import SimDmvCluster
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale

SCALE = TpcwScale(num_items=80, num_customers=230)

DURABLE = CostConfig(durable_wal=True)


def build_cluster(**kwargs):
    kwargs.setdefault("num_slaves", 2)
    kwargs.setdefault("cost_config", DURABLE)
    kwargs.setdefault("checkpoint_period", 10.0)
    cluster = SimDmvCluster(TPCW_SCHEMAS, **kwargs)
    cluster.load(TpcwDataGenerator(SCALE, seed=11))
    cluster.warm_all_caches()
    return cluster


def run_with_browsers(cluster, until, browsers=6, stop_at=None):
    cluster.start_browsers(browsers, MIXES["ordering"], SCALE, think_time_mean=0.4)
    if stop_at is not None:
        cluster.sim.schedule(stop_at, cluster.stop_browsers)
    cluster.run(until=until)


class TestRestartFromDisk:
    def test_slave_crash_restart_rejoins_and_converges(self):
        cluster = build_cluster()
        cluster.kill_node_at("s0", 20.0)
        cluster.restart_node_at("s0", 40.0)
        run_with_browsers(cluster, until=90.0, stop_at=70.0)
        node = cluster.nodes["s0"]
        assert node.alive and node.subscribed and not node.slave.catching_up
        assert node.counters.get("disk.restart_recoveries") == 1
        assert node.counters.get("wal.replayed") > 0
        results = check_all_invariants(cluster)
        assert all(r.ok for r in results), "\n".join(map(str, results))

    def test_restart_replays_wal_and_fetches_only_the_gap(self):
        cluster = build_cluster()
        cluster.kill_node_at("s0", 25.0)
        cluster.restart_node_at("s0", 45.0)
        run_with_browsers(cluster, until=90.0, stop_at=70.0)
        timeline = cluster.timelines[-1]
        # Local redo produced buffered ops; migration then only closed the
        # downtime gap (strictly fewer pages than a from-scratch restore).
        node = cluster.nodes["s0"]
        assert node.counters.get("wal.replayed_ops") > 0
        assert timeline.migration_done > timeline.recovery_done

    def test_torn_write_truncated_at_restart(self):
        cluster = build_cluster()
        cluster.sim.schedule(18.0, cluster.arm_torn_write, "s0")
        cluster.kill_node_at("s0", 20.0)
        cluster.restart_node_at("s0", 40.0)
        run_with_browsers(cluster, until=90.0, stop_at=70.0)
        assert cluster.nodes["s0"].counters.get("wal.torn_tail_records") >= 1
        results = check_all_invariants(cluster)
        assert all(r.ok for r in results), "\n".join(map(str, results))

    def test_fsync_lie_window_loses_believed_synced_tail(self):
        cluster = build_cluster()
        cluster.sim.schedule(10.0, cluster.set_fsync_lie, "s0", True)
        cluster.kill_node_at("s0", 25.0)
        cluster.restart_node_at("s0", 45.0)
        run_with_browsers(cluster, until=90.0, stop_at=70.0)
        node = cluster.nodes["s0"]
        assert node.alive and not node.slave.catching_up
        results = check_all_invariants(cluster)
        assert all(r.ok for r in results), "\n".join(map(str, results))

    def test_master_crash_then_restart_from_disk(self):
        cluster = build_cluster()
        cluster.kill_node_at("m0", 30.0)
        cluster.restart_node_at("m0", 55.0)
        run_with_browsers(cluster, until=100.0, stop_at=80.0)
        node = cluster.nodes["m0"]
        assert node.alive and node.slave is not None  # rejoined as a slave
        assert node.counters.get("disk.restart_recoveries") == 1
        results = check_all_invariants(cluster)
        assert all(r.ok for r in results), "\n".join(map(str, results))
        assert check_no_ghost_commits(cluster).ok

    def test_restart_on_nondurable_cluster_degrades_to_reintegration(self):
        cluster = build_cluster(cost_config=None, checkpoint_period=0.0)
        assert not cluster.durability_active
        cluster.kill_node_at("s0", 20.0)
        cluster.restart_node_at("s0", 40.0)
        run_with_browsers(cluster, until=80.0, stop_at=60.0)
        node = cluster.nodes["s0"]
        assert node.alive and node.subscribed
        assert node.counters.get("disk.restart_recoveries") == 0

    def test_durability_invariants_trivial_without_restarts(self):
        cluster = build_cluster()
        run_with_browsers(cluster, until=30.0, stop_at=20.0)
        assert check_durable_prefix(cluster).ok
        assert check_no_ghost_commits(cluster).ok


class TestDurabilityScenario:
    def _run(self, seed=7):
        return run_chaos_scenario(
            seed=seed,
            plan=durability_chaos_plan(seed, 120.0),
            duration=120.0,
            settle=25.0,
            browsers=8,
            cost_config=CostConfig(durable_wal=True),
            checkpoint_period=12.0,
        )

    def test_durability_plan_passes_all_invariants(self):
        report = self._run()
        assert report.ok(), report.summary()
        names = {r.name for r in report.invariants}
        assert {"durable-prefix", "no-ghost-commits"} <= names
        assert report.counters.get("disk.restart_recoveries") == 4
        assert report.counters.get("wal.replayed") > 0
        assert report.counters.get("wal.torn_tail_records") >= 1

    def test_durability_fingerprint_reproduces_exactly(self):
        a, b = self._run(), self._run()
        assert a.fingerprint == b.fingerprint
        assert a.counters == b.counters

    def test_different_seeds_diverge(self):
        assert self._run(3).fingerprint != self._run(4).fingerprint


class TestLegacyCompatibility:
    """The durability machinery must be invisible with the flag off."""

    def test_default_scenario_moves_no_durability_counters(self):
        report = run_chaos_scenario(seed=3, duration=40.0, settle=10.0, browsers=8)
        for name in (
            "wal.records",
            "wal.fsyncs",
            "wal.replayed",
            "disk.restart_recoveries",
            "checkpoint.corrupt_pages",
        ):
            assert report.counters.get(name, 0) == 0, name

    def test_random_plan_flag_off_is_byte_identical(self):
        kwargs = dict(seed=9, node_ids=("m0", "s0", "s1"), horizon=150.0)
        legacy = FaultPlan.random(**kwargs)
        flagged_off = FaultPlan.random(storage_faults=False, **kwargs)
        assert legacy.describe() == flagged_off.describe()
        assert not any(isinstance(e, RestartNode) for e in legacy.events)

    def test_random_plan_flag_on_keeps_base_schedule(self):
        kwargs = dict(seed=9, node_ids=("m0", "s0", "s1"), horizon=150.0)
        legacy = FaultPlan.random(**kwargs)
        stormy = FaultPlan.random(storage_faults=True, **kwargs)
        # Same crashes at the same instants (the extra draws come after
        # every base draw), restart-from-disk instead of reintegration,
        # plus one storage fault per victim.
        crashes = lambda plan: sorted(
            (e.at, e.node_id) for e in plan.events if isinstance(e, CrashNode)
        )
        assert crashes(legacy) == crashes(stormy)
        restarts = [e for e in stormy.events if isinstance(e, RestartNode)]
        assert len(restarts) == len(crashes(legacy))
        assert len(stormy.events) == len(legacy.events) + len(restarts)

    def test_durable_fault_hooks_are_noops_when_flag_off(self):
        cluster = SimDmvCluster(TPCW_SCHEMAS, num_slaves=1)
        cluster.arm_torn_write("s0")
        cluster.set_fsync_lie("s0", True)
        cluster.inject_bitflip("s0", target="wal")
        node = cluster.nodes["s0"]
        assert not node.wal._torn_armed and not node.wal.fsync_lies
        assert node.counters.get("wal.bitflips") == 0
