"""Straggler tolerance: ack quorums, laggard demotion, bounded buffers,
end-to-end backpressure, and correctness under quorum acks.

One slow-but-alive replica (a gray failure) must not drag every update
commit: under ``quorum`` acks the laggard is demoted out of the ack set,
commit latency stays at the healthy baseline, and the laggard re-integrates
through data migration once it recovers — all while the default ``all``
policy remains event-for-event identical to the seed behaviour.
"""

import pytest

from repro.chaos import (
    FaultPlan,
    Slowdown,
    check_all_invariants,
    check_buffer_bounds,
    check_rejoin_convergence,
    run_chaos_scenario,
    straggler_chaos_plan,
)
from repro.cluster.costs import CostConfig
from repro.cluster.simcluster import SimDmvCluster
from repro.cluster.straggler import AckLatencyEwma, LaggardDetector
from repro.cluster.sync import SyncDmvCluster
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale

SCALE = TpcwScale(num_items=80, num_customers=230)


def build_cluster(**kwargs):
    kwargs.setdefault("num_slaves", 3)
    cluster = SimDmvCluster(TPCW_SCHEMAS, **kwargs)
    cluster.load(TpcwDataGenerator(SCALE, seed=11))
    cluster.warm_all_caches()
    return cluster


def run_workload(cluster, duration=60.0, browsers=8, settle=15.0, mix="ordering"):
    cluster.start_browsers(browsers, MIXES[mix], SCALE, think_time_mean=0.3)
    cluster.sim.schedule(max(0.0, duration - settle), cluster.stop_browsers)
    cluster.run(until=duration)
    return cluster


def merged_counter(cluster, name):
    from repro.common.counters import Counters

    merged = Counters.merged(
        [node.counters for node in cluster.nodes.values()] + [cluster.counters]
    )
    return merged.get(name)


class TestDetectorUnits:
    def test_ewma_converges(self):
        ewma = AckLatencyEwma()
        for _ in range(200):
            ewma.observe(2.0)
        assert abs(ewma.value - 2.0) < 1e-6
        assert ewma.samples == 200

    def test_detector_flags_sustained_outlier_only(self):
        cfg = CostConfig()
        detector = LaggardDetector(cfg)
        # Warm-up: everyone healthy at 1ms.
        for _ in range(4 * cfg.laggard_sustain):
            for target in ("s0", "s1", "s2"):
                detector.observe_ack(target, 0.001)
        assert not detector.ack_latency_verdict("s2")
        # One spike is not a laggard.
        detector.observe_ack("s2", 1.0)
        assert not detector.ack_latency_verdict("s2")
        # Sustained inflation is.
        for _ in range(10 * cfg.laggard_sustain):
            detector.observe_ack("s2", 0.012)
            detector.observe_ack("s0", 0.001)
            detector.observe_ack("s1", 0.001)
        assert detector.ack_latency_verdict("s2")
        assert not detector.ack_latency_verdict("s0")
        detector.forget("s2")
        assert not detector.ack_latency_verdict("s2")

    def test_backlog_verdict_watermarks(self):
        cfg = CostConfig()
        detector = LaggardDetector(cfg)
        assert not detector.backlog_verdict(1, 100)
        assert detector.backlog_verdict(cfg.laggard_backlog_entries + 1, 100)
        assert detector.backlog_verdict(1, cfg.laggard_backlog_bytes + 1)

    def test_ack_policy_validation(self):
        with pytest.raises(ValueError):
            SimDmvCluster(TPCW_SCHEMAS, ack_policy="most")
        with pytest.raises(ValueError):
            SyncDmvCluster(TPCW_SCHEMAS, ack_policy="some")


class TestQuorumAcks:
    def test_quorum_saves_commits_from_straggler(self):
        cluster = build_cluster(seed=3, ack_policy="quorum", quorum_k=1)
        cluster.sim.schedule(10.0, cluster.set_slowdown, "s2", 12.0)
        run_workload(cluster, duration=50.0)
        assert merged_counter(cluster, "net.quorum_commits") > 0
        # Commits proceeded on the quorum while the straggler's ack was
        # still outstanding (before demotion kicked it out of the set).
        assert merged_counter(cluster, "net.quorum_saves") > 0
        assert cluster.metrics.failed == 0

    def test_all_policy_spawns_no_straggler_machinery(self):
        cluster = build_cluster(seed=3, ack_policy="all")
        cluster.sim.schedule(10.0, cluster.set_slowdown, "s2", 12.0)
        run_workload(cluster, duration=40.0)
        # Default policy: the slow node drags commits but is never demoted
        # and no quorum counters exist (bit-for-bit seed compatibility).
        for name in (
            "net.quorum_commits",
            "net.quorum_saves",
            "slave.demotions",
            "slave.rejoins",
        ):
            assert merged_counter(cluster, name) == 0
        assert not cluster._ever_demoted

    def test_commit_p99_stays_near_baseline_under_quorum(self):
        def commit_p99(ack_policy, straggle):
            cluster = build_cluster(seed=7, ack_policy=ack_policy)
            if straggle:
                cluster.sim.schedule(12.0, cluster.set_slowdown, "s2", 12.0)
            run_workload(cluster, duration=90.0, browsers=12, settle=20.0)
            assert len(cluster.metrics.commit_latency) > 100
            return cluster.metrics.commit_latency.percentile(99)

        baseline = commit_p99("all", straggle=False)
        dragged = commit_p99("all", straggle=True)
        shielded = commit_p99("quorum", straggle=True)
        # Under all-slave acks every commit waits for the x12 node ...
        assert dragged > 2.0 * baseline
        # ... under quorum acks the laggard is demoted and p99 holds.
        assert shielded <= 2.0 * baseline


class TestDemotionAndRejoin:
    def test_laggard_demoted_then_rejoins_after_recovery(self):
        cluster = build_cluster(seed=5, ack_policy="quorum", quorum_k=1)
        cluster.sim.schedule(10.0, cluster.set_slowdown, "s2", 12.0)
        cluster.sim.schedule(45.0, cluster.set_slowdown, "s2", 1.0)
        run_workload(cluster, duration=80.0, settle=20.0)
        assert merged_counter(cluster, "slave.demotions") >= 1
        assert merged_counter(cluster, "slave.rejoins") >= 1
        assert "s2" in cluster._ever_demoted
        node = cluster.nodes["s2"]
        assert node.alive and node.subscribed and not node.slave.catching_up
        assert not cluster.is_demoted("s2")
        results = check_all_invariants(cluster)
        assert all(r.ok for r in results), [str(r) for r in results]

    def test_demotion_vetoed_for_last_subscribed_slave(self):
        cluster = build_cluster(num_slaves=1, seed=2, ack_policy="quorum")
        assert not cluster.demote_slave("s0")
        assert cluster.counters.get("slave.demotions_vetoed") == 1
        assert not cluster.is_demoted("s0")

    def test_demoted_node_excluded_from_read_routing(self):
        cluster = build_cluster(seed=2, ack_policy="quorum")
        assert cluster.demote_slave("s1")
        active = {s.node_id for s in cluster.scheduler.active_slaves()}
        assert "s1" not in active
        assert {s.node_id for s in cluster.scheduler.demoted_slaves()} == {"s1"}

    def test_rejoin_convergence_checker_catches_wedged_laggard(self):
        cluster = build_cluster(seed=2, ack_policy="quorum")
        run_workload(cluster, duration=20.0, settle=8.0)
        assert check_rejoin_convergence(cluster).ok  # nothing demoted
        assert cluster.demote_slave("s1")
        # Healthy but still demoted at audit time: flagged as wedged.
        assert not check_rejoin_convergence(cluster).ok
        # A still-degraded laggard is excused.
        cluster.set_slowdown("s1", 8.0)
        assert check_rejoin_convergence(cluster).ok


class TestHeartbeatsWhileDemoted:
    def test_demoted_alive_node_is_never_declared_failstop(self):
        cluster = build_cluster(seed=4, ack_policy="quorum", quorum_k=1)
        # Hold it demoted for the whole run: the slowdown keeps the rejoin
        # probes failing, so the node stays in the demoted set.
        cluster.sim.schedule(8.0, cluster.set_slowdown, "s2", 16.0)
        run_workload(cluster, duration=60.0)
        assert cluster.is_demoted("s2")
        node = cluster.nodes["s2"]
        assert node.alive  # gray failure, not fail-stop
        # The failure detector never saw a missed heartbeat: no suspicion,
        # no reconfiguration was ever run for the demoted node.
        assert "s2" not in cluster._handled_failures
        assert merged_counter(cluster, "net.suspicions") == 0

    def test_demoted_node_that_crashes_still_reconfigures(self):
        cluster = build_cluster(seed=4, ack_policy="quorum", quorum_k=1)
        cluster.sim.schedule(8.0, cluster.set_slowdown, "s2", 16.0)
        cluster.kill_node_at("s2", 35.0)
        run_workload(cluster, duration=70.0)
        node = cluster.nodes["s2"]
        assert not node.alive
        # The crash of an (already demoted) node goes through the normal
        # heartbeat -> reconfiguration path.
        assert "s2" in cluster._handled_failures
        results = check_all_invariants(cluster)
        assert all(r.ok for r in results), [str(r) for r in results]


class TestBoundedBuffers:
    def test_buffer_cap_triggers_demotion_and_bounds_hold(self):
        cfg = CostConfig(slave_buffer_max_ops=24)
        cluster = build_cluster(
            seed=6, ack_policy="quorum", quorum_k=1, cost_config=cfg
        )
        cluster.sim.schedule(10.0, cluster.set_slowdown, "s2", 20.0)
        run_workload(cluster, duration=60.0)
        assert merged_counter(cluster, "slave.demotions") >= 1
        result = check_buffer_bounds(cluster)
        assert result.ok, str(result)
        for node in cluster.nodes.values():
            if node.alive and node.slave is not None:
                assert node.slave.pending_ops_peak <= 24 + cluster._max_ws_ops

    def test_pending_ops_counter_never_drifts(self):
        cluster = build_cluster(seed=9, ack_policy="quorum", quorum_k=1)
        cluster.sim.schedule(10.0, cluster.set_slowdown, "s1", 10.0)
        run_workload(cluster, duration=40.0)
        for node in cluster.nodes.values():
            if node.alive and node.slave is not None:
                assert node.slave.pending_ops == node.slave.pending_op_count()

    def test_update_queue_shedding_is_retryable(self):
        cfg = CostConfig(update_queue_limit=1)
        cluster = build_cluster(seed=8, cost_config=cfg)
        cluster.kill_node_at("m0", 15.0)
        run_workload(cluster, duration=70.0, browsers=12)
        assert cluster.counters.get("sched.shed_requests") > 0
        # Shed updates were retried, not lost: the run still completes
        # work after the reconfiguration and nothing failed permanently.
        assert "queue-shed" in cluster.metrics.aborts_by_reason
        assert cluster.metrics.failed == 0
        assert cluster.metrics.completed > 0


class TestQuorumCorrectness:
    def test_master_failover_under_quorum_promotes_fresh_survivor(self):
        cluster = build_cluster(seed=12, ack_policy="quorum", quorum_k=1)
        cluster.sim.schedule(8.0, cluster.set_slowdown, "s2", 16.0)
        cluster.kill_node_at("m0", 30.0)
        run_workload(cluster, duration=90.0, settle=25.0)
        masters = [
            n.node_id
            for n in cluster.nodes.values()
            if n.alive and n.master is not None
        ]
        assert masters and "s2" not in masters  # demoted laggard never promoted
        results = check_all_invariants(cluster)
        assert all(r.ok for r in results), [str(r) for r in results]

    def test_straggler_scenario_fingerprint_is_reproducible(self):
        def once():
            return run_chaos_scenario(
                seed=13,
                plan=straggler_chaos_plan(13, 90.0),
                duration=90.0,
                browsers=8,
                ack_policy="quorum",
                quorum_k=1,
            )

        a, b = once(), once()
        assert a.fingerprint == b.fingerprint
        assert a.ok(), [str(r) for r in a.invariants]
        assert a.counters.get("slave.demotions", 0) >= 1


class TestSyncParity:
    def test_sync_demote_rejoin_roundtrip(self):
        cluster = SyncDmvCluster(
            TPCW_SCHEMAS, num_slaves=3, seed=1, ack_policy="quorum", quorum_k=2
        )
        cluster.load(TpcwDataGenerator(TpcwScale(num_items=20, num_customers=40), seed=3))
        cluster.demote_slave("s1")
        cluster.run_update(
            [("UPDATE item SET i_stock = i_stock - 1 WHERE i_id = ?", (1,))],
            ["item"],
        )
        assert cluster.counters.get("net.acks_skipped_demoted") >= 1
        cluster.rejoin_slave("s1")
        assert cluster.counters.get("slave.rejoins") == 1
        rows = {}
        for node_id in ("s0", "s1"):
            handle = cluster.nodes[node_id]
            txn = handle.slave.begin_read_only(cluster.scheduler.latest.copy())
            rows[node_id] = handle.sql.execute(
                txn, "SELECT i_stock FROM item WHERE i_id = ?", (1,)
            ).rows
            handle.engine.commit(txn)
        assert rows["s0"] == rows["s1"]

    def test_sync_kill_master_skips_demoted_candidate(self):
        cluster = SyncDmvCluster(TPCW_SCHEMAS, num_slaves=3, ack_policy="quorum")
        cluster.load(TpcwDataGenerator(TpcwScale(num_items=20, num_customers=40), seed=3))
        cluster.demote_slave("s0")  # lowest id, would win an id-only election
        assert cluster.kill_master("m0") != "s0"

    def test_sync_refuses_to_demote_last_slave(self):
        cluster = SyncDmvCluster(TPCW_SCHEMAS, num_slaves=1, ack_policy="quorum")
        from repro.common.errors import NodeUnavailable

        with pytest.raises(NodeUnavailable):
            cluster.demote_slave("s0")


class TestSlowdownFault:
    def test_slowdown_fault_installs_and_clears(self):
        cluster = build_cluster(num_slaves=2, seed=1)
        plan = FaultPlan(
            seed=1,
            events=(Slowdown(at=5.0, node_id="s1", factor=6.0, until=12.0),),
        )
        plan.schedule(cluster)
        assert "slowdown node s1 x6" in plan.describe()
        cluster.run(until=6.0)
        assert cluster.nodes["s1"].slowdown == 6.0
        cluster.run(until=13.0)
        assert cluster.nodes["s1"].slowdown == 1.0
