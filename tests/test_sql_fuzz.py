"""Differential fuzzing: the SQL planner/executor vs a brute-force oracle.

Hypothesis generates random tables and random single-table WHERE clauses;
the compiled plan (which may choose PK lookups, index ranges, IN unions or
LIKE prefix ranges) must return exactly the rows a naive full-scan
evaluation returns.  This guards the access-path machinery — the part of
the SQL layer where a subtle bound error silently drops rows.
"""

from hypothesis import given, settings, strategies as st

from repro.engine import Column, HeapEngine, IndexDef, TableSchema, TxnMode
from repro.sql import SqlExecutor

SCHEMA = TableSchema(
    "t",
    [
        Column("pk", "int", nullable=False),
        Column("a", "int"),
        Column("b", "str"),
        Column("c", "int"),
    ],
    primary_key=("pk",),
    indexes=[
        IndexDef("ix_a", ("a",)),
        IndexDef("ix_b_c", ("b", "c")),
    ],
)

WORDS = ["alpha", "beta", "gamma", "delta", "epsilon"]

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-20, max_value=20),            # a
        st.one_of(st.none(), st.sampled_from(WORDS)),        # b
        st.integers(min_value=-5, max_value=5),              # c
    ),
    min_size=0,
    max_size=40,
)

# One conjunct: (column, op, value) rendered into SQL below.
conjunct = st.one_of(
    st.tuples(st.just("pk"), st.just("="), st.integers(min_value=0, max_value=45)),
    st.tuples(st.just("a"), st.sampled_from(["=", "<", "<=", ">", ">=", "<>"]),
              st.integers(min_value=-20, max_value=20)),
    st.tuples(st.just("b"), st.just("="), st.sampled_from(WORDS)),
    st.tuples(st.just("b"), st.just("like"), st.sampled_from(["al%", "%ta", "g_mma", "%", "zz%"])),
    st.tuples(st.just("b"), st.just("in"), st.lists(st.sampled_from(WORDS), min_size=1, max_size=3)),
    st.tuples(st.just("c"), st.sampled_from(["=", "<", ">"]), st.integers(min_value=-5, max_value=5)),
    st.tuples(st.just("c"), st.just("between"),
              st.tuples(st.integers(min_value=-5, max_value=0), st.integers(min_value=0, max_value=5))),
)


def render(conj) -> str:
    column, op, value = conj
    if op == "like":
        return f"{column} LIKE '{value}'"
    if op == "in":
        inner = ", ".join(f"'{v}'" for v in value)
        return f"{column} IN ({inner})"
    if op == "between":
        return f"{column} BETWEEN {value[0]} AND {value[1]}"
    if isinstance(value, str):
        return f"{column} {op} '{value}'"
    return f"{column} {op} {value}"


def oracle_match(row, conj) -> bool:
    """Brute-force evaluation of one conjunct with SQL NULL semantics."""
    column, op, value = conj
    pos = SCHEMA.position(column)
    cell = row[pos]
    if op == "like":
        if cell is None:
            return False
        from repro.sql.functions import like_match

        return bool(like_match(cell, value))
    if op == "in":
        return cell in value if cell is not None else False
    if op == "between":
        return cell is not None and value[0] <= cell <= value[1]
    if cell is None:
        return False
    return {
        "=": cell == value,
        "<>": cell != value,
        "<": cell < value,
        "<=": cell <= value,
        ">": cell > value,
        ">=": cell >= value,
    }[op]


@settings(max_examples=120, deadline=None)
@given(rows_strategy, st.lists(conjunct, min_size=0, max_size=3))
def test_planner_agrees_with_full_scan_oracle(data, conjuncts):
    engine = HeapEngine(rows_per_page=4)
    engine.create_table(SCHEMA)
    rows = [
        {"pk": i, "a": a, "b": b, "c": c} for i, (a, b, c) in enumerate(data)
    ]
    engine.bulk_load("t", rows)
    sql = SqlExecutor(engine)

    where = " AND ".join(render(c) for c in conjuncts)
    statement = "SELECT pk FROM t" + (f" WHERE {where}" if where else "")
    txn = engine.begin(TxnMode.READ_ONLY)
    result = sorted(r[0] for r in sql.execute(txn, statement).rows)

    expected = sorted(
        row["pk"]
        for row in rows
        if all(
            oracle_match(
                (row["pk"], row["a"], row["b"], row["c"]), conj
            )
            for conj in conjuncts
        )
    )
    assert result == expected, statement


@settings(max_examples=60, deadline=None)
@given(rows_strategy, st.sampled_from(["a", "c"]), st.booleans(),
       st.integers(min_value=0, max_value=10))
def test_order_by_limit_agrees_with_oracle(data, column, descending, limit):
    engine = HeapEngine(rows_per_page=4)
    engine.create_table(SCHEMA)
    rows = [
        {"pk": i, "a": a, "b": b, "c": c} for i, (a, b, c) in enumerate(data)
    ]
    engine.bulk_load("t", rows)
    sql = SqlExecutor(engine)
    direction = "DESC" if descending else "ASC"
    txn = engine.begin(TxnMode.READ_ONLY)
    statement = f"SELECT pk, {column} FROM t ORDER BY {column} {direction}, pk LIMIT {limit}"
    result = sql.execute(txn, statement).rows
    expected = sorted(
        ((row["pk"], row[column]) for row in rows),
        key=lambda pair: ((pair[1] is None, pair[1] if pair[1] is not None else 0)
                          if not descending
                          else (pair[1] is not None,
                                -(pair[1] if pair[1] is not None else 0)), pair[0]),
    )
    # Compare as multisets per sort-key prefix: ties on the sort column are
    # broken by pk in both, so direct comparison works.
    assert result == [
        (pk, value) for pk, value in _oracle_sort(rows, column, descending)
    ][:limit]


def _oracle_sort(rows, column, descending):
    keyed = [(row["pk"], row[column]) for row in rows]
    non_null = sorted([p for p in keyed if p[1] is not None],
                      key=lambda p: (p[1], p[0]))
    nulls = sorted([p for p in keyed if p[1] is None], key=lambda p: p[0])
    if descending:
        # NULLs sort last ascending => first when reversed.  Our executor
        # sorts with key (is-null, value) and reverse=True per key, with pk
        # as a secondary ascending key applied first (stable sort).
        non_null_desc = sorted(non_null, key=lambda p: (-p[1], p[0]))
        return nulls + non_null_desc if nulls else non_null_desc
    return non_null + nulls
