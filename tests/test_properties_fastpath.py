"""Property tests of the write-set replication fast path.

The coalescing invariant: collapsing a page's pending-op queue to the last
writer per slot (folding delta-encoded updates) must produce a
byte-identical page image and identical ``page.version`` to applying the
queue one op at a time — for ANY valid op sequence, any target version, and
also after ``discard_above`` truncation and ``receive_page`` installation.

The reference oracle below replays a queue sequentially with
:func:`repro.storage.ops.apply_op` — the pre-coalescing semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.common.ids import PageId
from repro.common.versions import VersionVector
from repro.core import MasterReplica, SlaveReplica
from repro.engine import Column, IndexDef, TableSchema
from repro.sql import SqlExecutor
from repro.storage.checkpoint import PageImage
from repro.storage.ops import OpKind, PageOp, apply_op, delta_update_op
from repro.storage.page import Page

CAPACITY = 8
PAGE = PageId("t", 0)

# Rows are (id:int, a:int, b:str); "a" and "b" stand in for indexed and
# unindexed columns.  Index positions (for delta before-column selection)
# cover column 1.
INDEX_POSITIONS = ((1,),)

values_a = st.integers(min_value=0, max_value=5)
values_b = st.sampled_from(["x", "y", "longer-string-value", ""])


def _make_ops(draw_ops):
    """Turn abstract (slot, action, a, b, full) tuples into a valid op list.

    Tracks shadow slot state so UPDATE/DELETE only hit live slots and
    INSERT only hits free ones; invalid draws fall back to the legal
    action.  Every op gets its own version (one write-set per op).
    """
    slots = {}
    ops = []
    for slot, action, a, b, full in draw_ops:
        current = slots.get(slot)
        if current is None:
            row = (slot, a, b)
            ops.append(PageOp(PAGE, OpKind.INSERT, slot, row))
            slots[slot] = row
        elif action == "delete":
            ops.append(PageOp(PAGE, OpKind.DELETE, slot, None, current))
            slots[slot] = None
        else:
            after = (slot, a, b)
            if full:
                ops.append(PageOp(PAGE, OpKind.UPDATE, slot, after, current))
            else:
                ops.append(delta_update_op(PAGE, slot, current, after, INDEX_POSITIONS))
            slots[slot] = after
    return ops


op_draws = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=CAPACITY - 1),
        st.sampled_from(["update", "delete"]),
        values_a,
        values_b,
        st.booleans(),
    ),
    min_size=1,
    max_size=40,
)


def _sequential_reference(base: Page, queue, target):
    """Old O(ops) materialisation: apply one op at a time up to target."""
    page = base.snapshot()
    for version, op in queue:
        if target is not None and version > target:
            break
        apply_op(page, op)
        page.version = max(page.version, version)
    return page


def _fresh_slave_queue(ops):
    """A bare page + pending queue holding ``ops`` at versions 1..N."""
    from collections import deque

    page = Page(PAGE, CAPACITY)
    queue = deque((v + 1, op) for v, op in enumerate(ops))
    return page, queue


def _coalesced(page: Page, queue, target):
    """Run SlaveReplica's coalesced apply against a standalone page."""
    slave = SlaveReplica.__new__(SlaveReplica)
    from repro.common.counters import Counters

    slave.counters = Counters()
    slave.pending_ops = 0
    plan, top, popped = slave._coalesce(queue, target)
    if popped:
        slave._apply_plan(page, plan, top, popped)
    return page


@settings(max_examples=120, deadline=None)
@given(op_draws, st.integers(min_value=0, max_value=45))
def test_coalesced_apply_equals_sequential(draws, target):
    ops = _make_ops(draws)
    base, queue = _fresh_slave_queue(ops)
    expect = _sequential_reference(base, list(queue), target)

    page = base.snapshot()
    _coalesced(page, queue, target)

    assert page.slots == expect.slots
    assert page.version == expect.version
    # Ops above the target stay queued, in order.
    assert all(v > target for v, _op in queue)


@settings(max_examples=80, deadline=None)
@given(op_draws, st.integers(min_value=0, max_value=45), st.integers(min_value=0, max_value=45))
def test_coalesced_apply_after_discard_above(draws, keep, target):
    """discard_above truncation then coalesced apply ≡ sequential apply."""
    ops = _make_ops(draws)
    base, queue = _fresh_slave_queue(ops)
    kept = [(v, op) for v, op in queue if v <= keep]

    expect = _sequential_reference(base, kept, target)

    from collections import deque

    page = base.snapshot()
    _coalesced(page, deque(kept), target)
    assert page.slots == expect.slots
    assert page.version == expect.version


@settings(max_examples=80, deadline=None)
@given(op_draws, st.integers(min_value=0, max_value=45))
def test_coalesced_apply_after_receive_page(draws, installed):
    """A migrated page image drops covered ops; the rest apply identically."""
    ops = _make_ops(draws)
    base, queue = _fresh_slave_queue(ops)
    # The "support slave" image: sequential state at version ``installed``.
    image = _sequential_reference(base, list(queue), installed)
    image.version = max(image.version, installed)
    remaining = [(v, op) for v, op in queue if v > installed]

    expect = _sequential_reference(image, remaining, None)

    from collections import deque

    page = image.snapshot()
    _coalesced(page, deque(remaining), None)
    assert page.slots == expect.slots
    assert page.version == expect.version


# -- end-to-end: a real master drives a real slave ---------------------------------
ITEM = TableSchema(
    "item",
    [
        Column("i_id", "int", nullable=False),
        Column("i_title", "str"),
        Column("i_stock", "int"),
    ],
    primary_key=("i_id",),
    indexes=[IndexDef("ix_title", ("i_title", "i_id"))],
)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=99)),
        min_size=1,
        max_size=25,
    ),
    st.data(),
)
def test_slave_pages_match_master_after_random_updates(updates, data):
    """Replicated delta ops converge slave page images onto the master's."""
    master = MasterReplica("m0")
    lazy = SlaveReplica("lazy")
    eager = SlaveReplica("eager")
    rows = [{"i_id": i, "i_title": f"t{i % 3}", "i_stock": 0} for i in range(10)]
    for node in (master.engine, lazy.engine, eager.engine):
        node.create_table(ITEM)
        node.bulk_load("item", rows)
    sql = SqlExecutor(master.engine)
    for item, stock in updates:
        txn = master.begin_update()
        sql.execute(
            txn,
            "UPDATE item SET i_stock = ?, i_title = ? WHERE i_id = ?",
            (stock, f"t{stock % 3}", item),
        )
        ws = master.pre_commit(txn)
        lazy.receive(ws)
        eager.receive(ws)
        eager.apply_all_pending()  # applies op-by-op granularity upper bound
        master.finalize(txn)
    # Lazy slave materialises everything in one coalesced pass.
    lazy.apply_all_pending()
    for page in master.engine.store.all_pages():
        for replica in (lazy, eager):
            mirror = replica.engine.store.get(page.page_id)
            assert mirror.slots == page.slots
            assert mirror.version == page.version
    # Index lookups agree at the final tag.
    tag = VersionVector(master.current_versions().as_dict())
    ssql = SqlExecutor(lazy.engine)
    ro = lazy.begin_read_only(tag)
    title = data.draw(st.sampled_from(["t0", "t1", "t2"]))
    got = ssql.execute(
        ro, "SELECT i_id FROM item WHERE i_title = ? ORDER BY i_id", (title,)
    )
    lazy.engine.commit(ro)
    mtxn = master.begin_read_only()
    want = sql.execute(
        mtxn, "SELECT i_id FROM item WHERE i_title = ? ORDER BY i_id", (title,)
    )
    master.engine.commit(mtxn)
    assert got.rows == want.rows
