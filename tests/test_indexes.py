"""Unit tests for version-aware index visibility semantics."""

import pytest

from repro.common.errors import SchemaError
from repro.common.ids import PageId
from repro.engine.indexes import (
    PENDING,
    IndexEntry,
    VersionedHashIndex,
    VersionedTreeIndex,
    encode_key,
)

LOC = (PageId("item", 0), 0)
LOC2 = (PageId("item", 0), 1)


class TestVisibility:
    def test_committed_entry_visible_at_or_after_insert(self):
        e = IndexEntry(LOC, insert_v=5)
        assert not e.visible(None, 4)
        assert e.visible(None, 5)
        assert e.visible(None, 9)

    def test_committed_delete_invisible_from_delete_version(self):
        e = IndexEntry(LOC, insert_v=2, delete_v=6)
        assert e.visible(None, 5)
        assert not e.visible(None, 6)

    def test_pending_insert_invisible_to_tagged_reads(self):
        e = IndexEntry(LOC, insert_v=None, writer=9)
        assert not e.visible(7, 100)

    def test_pending_insert_visible_to_current_reads(self):
        e = IndexEntry(LOC, insert_v=None, writer=9)
        assert e.visible(9, None)
        assert e.visible(7, None)  # others block on the page lock instead

    def test_pending_delete_invisible_only_to_deleter(self):
        e = IndexEntry(LOC, insert_v=1, delete_v=PENDING, writer=9)
        assert not e.visible(9, None)
        assert e.visible(7, None)

    def test_committed_delete_invisible_to_current_reads(self):
        e = IndexEntry(LOC, insert_v=1, delete_v=3)
        assert not e.visible(7, None)

    def test_pending_delete_still_visible_to_tagged_reads(self):
        e = IndexEntry(LOC, insert_v=1, delete_v=PENDING, writer=9)
        assert e.visible(7, 5)


class TestEncodeKey:
    def test_null_sorts_first(self):
        assert encode_key((None,)) < encode_key((0,))
        assert encode_key((None, "b")) < encode_key((1, "a"))

    def test_plain_order_preserved(self):
        assert encode_key((1, "a")) < encode_key((1, "b")) < encode_key((2, "a"))


class TestHashIndexLifecycle:
    def test_master_insert_commit_cycle(self):
        idx = VersionedHashIndex("pk", "item")
        idx.add_pending(("k",), LOC, writer=1)
        assert idx.lookup(("k",), 1, None) == [LOC]
        assert idx.lookup(("k",), 2, 100) == []  # uncommitted, tagged read
        idx.stamp_insert(("k",), LOC, 7)
        assert idx.lookup(("k",), 2, 7) == [LOC]
        assert idx.lookup(("k",), 2, 6) == []

    def test_master_abort_reverts_insert(self):
        idx = VersionedHashIndex("pk", "item")
        idx.add_pending(("k",), LOC, writer=1)
        idx.revert_insert(("k",), LOC)
        assert idx.lookup(("k",), 1, None) == []
        assert idx.entry_count == 0

    def test_master_delete_commit_cycle(self):
        idx = VersionedHashIndex("pk", "item")
        idx.add_committed(("k",), LOC, 3)
        idx.mark_delete_pending(("k",), LOC, writer=5)
        assert idx.lookup(("k",), 5, None) == []
        idx.stamp_delete(("k",), LOC, 8)
        assert idx.lookup(("k",), 9, 7) == [LOC]
        assert idx.lookup(("k",), 9, 8) == []

    def test_master_delete_abort_restores(self):
        idx = VersionedHashIndex("pk", "item")
        idx.add_committed(("k",), LOC, 3)
        idx.mark_delete_pending(("k",), LOC, writer=5)
        idx.revert_delete(("k",), LOC)
        assert idx.lookup(("k",), 5, None) == [LOC]

    def test_stamp_without_pending_raises(self):
        idx = VersionedHashIndex("pk", "item")
        with pytest.raises(SchemaError):
            idx.stamp_insert(("k",), LOC, 1)
        idx.add_committed(("k",), LOC, 1)
        with pytest.raises(SchemaError):
            idx.stamp_delete(("k",), LOC, 2)

    def test_multiple_locs_per_key(self):
        idx = VersionedHashIndex("ix", "item")
        idx.add_committed(("k",), LOC, 1)
        idx.add_committed(("k",), LOC2, 2)
        assert set(idx.lookup(("k",), 9, 2)) == {LOC, LOC2}
        assert idx.lookup(("k",), 9, 1) == [LOC]

    def test_gc_removes_dead_entries(self):
        idx = VersionedHashIndex("pk", "item")
        idx.add_committed(("k",), LOC, 1)
        idx.mark_delete_committed(("k",), LOC, 4)
        assert idx.gc(3) == 0
        assert idx.gc(4) == 1
        assert idx.lookup(("k",), 9, 2) == []  # old versions gone after GC

    def test_has_live(self):
        idx = VersionedHashIndex("pk", "item")
        assert not idx.has_live(("k",), 1, None)
        idx.add_committed(("k",), LOC, 1)
        assert idx.has_live(("k",), 1, None)


class TestTreeIndex:
    def make(self):
        idx = VersionedTreeIndex("ix", "item")
        for i in range(10):
            idx.add_committed((i,), (PageId("item", i // 4), i % 4), version=i + 1)
        return idx

    def test_range_respects_versions(self):
        idx = self.make()
        # At tag 5 only entries with insert_v <= 5 (keys 0..4) exist.
        locs = list(idx.range_lookup(None, None, reader=99, tag_v=5))
        assert len(locs) == 5

    def test_range_bounds(self):
        idx = self.make()
        locs = list(idx.range_lookup((3,), (7,), reader=99, tag_v=100))
        assert len(locs) == 4

    def test_range_reverse(self):
        idx = self.make()
        fwd = list(idx.range_lookup((2,), (8,), 99, 100))
        rev = list(idx.range_lookup((2,), (8,), 99, 100, reverse=True))
        assert rev == fwd[::-1]

    def test_scan_all(self):
        idx = self.make()
        assert len(list(idx.scan_all(99, 100))) == 10

    def test_rotations_recorded(self):
        idx = self.make()
        assert idx.counters.get("index.rotations") > 0

    def test_delete_and_gc(self):
        idx = self.make()
        idx.mark_delete_committed((0,), (PageId("item", 0), 0), 20)
        assert list(idx.range_lookup((0,), (1,), 99, 25)) == []
        assert idx.gc(20) == 1
        assert idx.entry_count == 9

    def test_prefix_range(self):
        idx = VersionedTreeIndex("ix", "t")
        idx.add_committed(("a", 1), LOC, 1)
        idx.add_committed(("a", 2), LOC2, 1)
        idx.add_committed(("b", 1), (PageId("t", 9), 0), 1)
        # Prefix bound: everything with first component == "a".
        locs = list(idx.range_lookup(("a",), ("a", 999999), 9, 10))
        assert len(locs) == 2
