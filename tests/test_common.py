"""Unit tests for repro.common: errors, ids, RNG streams, counters."""

import pytest
from hypothesis import given, strategies as st

from repro.common import (
    Counters,
    DeadlockDetected,
    IdAllocator,
    PageId,
    ReproError,
    RngStream,
    TransactionAborted,
    VersionInconsistency,
    derive_seed,
)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(TransactionAborted, ReproError)
        assert issubclass(VersionInconsistency, TransactionAborted)
        assert issubclass(DeadlockDetected, TransactionAborted)

    def test_abort_reason_default(self):
        err = TransactionAborted("boom")
        assert err.reason == "abort"

    def test_version_inconsistency_carries_versions(self):
        err = VersionInconsistency("stale", required=3, found=7)
        assert err.reason == "version-inconsistency"
        assert err.required == 3
        assert err.found == 7

    def test_deadlock_reason(self):
        assert DeadlockDetected("victim").reason == "deadlock"


class TestIds:
    def test_allocator_monotonic(self):
        alloc = IdAllocator()
        ids = [alloc.next() for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]

    def test_allocator_custom_start(self):
        assert IdAllocator(start=100).next() == 100

    def test_page_id_equality_and_ordering(self):
        a = PageId("item", 1)
        b = PageId("item", 2)
        assert a == PageId("item", 1)
        assert a < b
        assert PageId("author", 9) < a  # table name orders first

    def test_page_id_hashable(self):
        assert len({PageId("t", 0), PageId("t", 0), PageId("t", 1)}) == 2

    def test_page_id_str(self):
        assert str(PageId("orders", 7)) == "orders#7"


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_derive_seed_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_derive_seed_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_stream_reproducible(self):
        draws1 = [RngStream(7, "x").random() for _ in range(1)]
        draws2 = [RngStream(7, "x").random() for _ in range(1)]
        assert draws1 == draws2

    def test_streams_independent(self):
        a = RngStream(7, "a")
        b = RngStream(7, "b")
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]

    def test_child_stream(self):
        parent = RngStream(9, "p")
        child = parent.child("c")
        assert child.name.endswith("/c")
        assert 0.0 <= child.random() < 1.0

    def test_expovariate_mean(self):
        stream = RngStream(3, "exp")
        draws = [stream.expovariate(5.0) for _ in range(4000)]
        assert 4.5 < sum(draws) / len(draws) < 5.5

    def test_expovariate_zero_mean(self):
        assert RngStream(3).expovariate(0.0) == 0.0

    def test_weighted_choice_respects_weights(self):
        stream = RngStream(11, "w")
        picks = [stream.weighted_choice(["a", "b"], [0.99, 0.01]) for _ in range(500)]
        assert picks.count("a") > 400

    @given(st.integers(min_value=1, max_value=1000), st.integers(min_value=0, max_value=2**30))
    def test_zipf_index_in_range(self, n, seed):
        stream = RngStream(seed, "zipf")
        for _ in range(10):
            assert 0 <= stream.zipf_index(n) < n

    def test_zipf_skews_low(self):
        stream = RngStream(13, "zipf")
        draws = [stream.zipf_index(1000, skew=1.0) for _ in range(2000)]
        low = sum(1 for d in draws if d < 100)
        assert low > len(draws) * 0.5  # heavy head

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            RngStream(1).zipf_index(0)


class TestCounters:
    def test_add_and_get(self):
        c = Counters()
        c.add("reads")
        c.add("reads", 2)
        assert c.get("reads") == 3

    def test_missing_counter_zero(self):
        assert Counters().get("nope") == 0.0

    def test_snapshot_delta(self):
        c = Counters()
        c.add("x", 5)
        snap = c.snapshot()
        c.add("x", 2)
        c.add("y", 1)
        delta = c.delta_since(snap)
        assert delta == {"x": 2, "y": 1}

    def test_delta_skips_unchanged(self):
        c = Counters()
        c.add("x", 5)
        assert c.delta_since(c.snapshot()) == {}

    def test_reset(self):
        c = Counters()
        c.add("x")
        c.reset()
        assert c.get("x") == 0

    def test_delta_survives_reset_mid_window(self):
        """A counter cleared after the snapshot must yield a negative delta,
        not silently vanish from the report."""
        c = Counters()
        c.add("x", 5)
        c.add("y", 3)
        snap = c.snapshot()
        c.reset()
        c.add("x", 5)  # returns to its prior value: genuinely no net change
        delta = c.delta_since(snap)
        assert delta == {"y": -3}

    def test_delta_negative_for_cleared_counter(self):
        c = Counters()
        c.add("x", 7)
        snap = c.snapshot()
        c.reset()
        assert c.delta_since(snap) == {"x": -7}

    def test_delta_ignores_zero_valued_snapshot_keys(self):
        c = Counters()
        c.get("x")  # read-only access must not materialise a key
        snap = dict(c.snapshot())
        snap["ghost"] = 0.0
        c.reset()
        assert c.delta_since(snap) == {}

    def test_merge_mapping(self):
        c = Counters()
        c.add("x", 2)
        c.merge({"x": 3, "y": 1})
        assert c.get("x") == 5
        assert c.get("y") == 1

    def test_merge_from_roundtrips_through_delta(self):
        """merge(delta_since(snap)) re-applies a window exactly."""
        a = Counters()
        a.add("x", 5)
        snap = a.snapshot()
        a.add("x", 2)
        a.add("y", 4)
        b = Counters()
        b.merge(snap)
        b.merge(a.delta_since(snap))
        assert b.snapshot() == a.snapshot()

    def test_iter_sorted(self):
        c = Counters()
        c.add("b")
        c.add("a")
        assert [k for k, _ in c] == ["a", "b"]
