"""Overload robustness: shed paths composed with replication machinery,
deadline propagation through the scheduler, and the metastability demo.

The interesting failure modes are *compositions*: a bounded update queue
shedding during reconfiguration while quorum acks run with a demoted
laggard; a request deadline expiring inside the master-MPL wait; the
defenses-OFF arm staying SLO-degraded long after a flash crowd while the
defenses-ON arm recovers within seconds on the same seed.
"""

from repro.bench.overload import run_overload_comparison
from repro.chaos.scenario import overload_chaos_plan, run_chaos_scenario
from repro.cluster.costs import CostConfig
from repro.cluster.simcluster import SimDmvCluster
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale
from repro.traffic.scenario import (
    flash_crowd_scenario,
    overload_base_config,
    overload_defense_config,
)

SCALE = TpcwScale(num_items=80, num_customers=230)


def build_cluster(**kwargs):
    kwargs.setdefault("num_slaves", 3)
    cluster = SimDmvCluster(TPCW_SCHEMAS, **kwargs)
    cluster.load(TpcwDataGenerator(SCALE, seed=11))
    cluster.warm_all_caches()
    return cluster


def run_workload(cluster, duration=60.0, browsers=8, settle=15.0, mix="ordering"):
    cluster.start_browsers(browsers, MIXES[mix], SCALE, think_time_mean=0.3)
    cluster.sim.schedule(max(0.0, duration - settle), cluster.stop_browsers)
    cluster.run(until=duration)
    return cluster


def merged_counter(cluster, name):
    from repro.common.counters import Counters

    merged = Counters.merged(
        [node.counters for node in cluster.nodes.values()] + [cluster.counters]
    )
    return merged.get(name)


class TestQueueLimitComposition:
    def test_queue_shed_composes_with_quorum_acks_and_demoted_slave(self):
        # All three overload-era mechanisms at once: quorum acks demote a
        # slowed laggard, then the master dies and the bounded update
        # queue sheds the arrivals that pile up during reconfiguration.
        # Shed must stay retryable and the audit must still pass with the
        # laggard out of the ack set.
        from repro.chaos import check_all_invariants

        cfg = CostConfig(update_queue_limit=1)
        cluster = build_cluster(
            seed=21, ack_policy="quorum", quorum_k=1, cost_config=cfg
        )
        cluster.sim.schedule(8.0, cluster.set_slowdown, "s2", 20.0)
        cluster.kill_node_at("m0", 25.0)
        run_workload(cluster, duration=80.0, browsers=12, settle=20.0)
        assert merged_counter(cluster, "slave.demotions") >= 1
        assert merged_counter(cluster, "sched.shed_requests") > 0
        assert "queue-shed" in cluster.metrics.aborts_by_reason
        assert cluster.metrics.failed == 0  # shed work retried, never lost
        assert cluster.metrics.completed > 0
        results = check_all_invariants(cluster)
        assert all(r.ok for r in results), [str(r) for r in results]

    def test_queue_shed_and_browser_retry_budget_compose(self):
        # Same reconfiguration storm, with the closed-loop browsers' own
        # retry budget turned on: once the bucket drains, further shed
        # retries give up and surface as bench.retries_exhausted instead
        # of hammering the recovering scheduler forever.
        cfg = CostConfig(
            update_queue_limit=1,
            retry_budget_rate=0.2,
            retry_budget_burst=2.0,
        )
        cluster = build_cluster(seed=8, cost_config=cfg)
        cluster.kill_node_at("m0", 15.0)
        run_workload(cluster, duration=70.0, browsers=12)
        assert merged_counter(cluster, "sched.shed_requests") > 0
        assert merged_counter(cluster, "bench.retries_exhausted") > 0
        assert cluster.metrics.completed > 0


class TestDeadlinePropagation:
    def test_deadline_expires_in_mpl_queue_and_releases_slot(self):
        # One update MPL slot on the slow server shape: queued updates
        # outlive a tight deadline, are cancelled *inside* the admission
        # wait (counted as sched.deadline_cancels) and the run still
        # drains cleanly — cancelled waiters must not leak MPL slots.
        scenario = flash_crowd_scenario(duration=60.0, seed=5, deadline=0.4)
        cfg = overload_base_config(update_mpl=1, request_deadline=0.4)
        report = run_chaos_scenario(
            seed=5,
            plan=overload_chaos_plan(5, 60.0),
            cost_config=cfg,
            traffic=scenario,
        )
        assert report.counters.get("sched.deadline_cancels", 0) > 0
        for stats in report.traffic.tenants.values():
            assert stats.in_flight == 0
            assert stats.accounted() == stats.injected

    def test_deadline_is_per_request_not_per_attempt(self):
        # The deadline is stamped at the *scheduled arrival*: whatever the
        # attempt count, no completion may be recorded later than
        # deadline + one interaction's worth of service; a per-attempt
        # deadline would let retries push latency far past it.
        scenario = flash_crowd_scenario(duration=60.0, seed=2, deadline=1.0)
        report = run_chaos_scenario(
            seed=2,
            plan=overload_chaos_plan(2, 60.0),
            cost_config=overload_base_config(request_deadline=1.0),
            traffic=scenario,
        )
        for stats in report.traffic.tenants.values():
            if len(stats.latency):
                # Completions start before the deadline; the tail can
                # overrun only by the in-flight interaction, never by a
                # whole retry cycle.
                assert stats.latency.percentile(100) < 1.0 + 3.0


class TestMetastabilityDemo:
    def test_off_arm_stays_degraded_at_least_twice_as_long(self):
        comparison = run_overload_comparison(seed=0, duration=120.0)
        assert comparison.on.invariants_ok, comparison.on.invariant_failures
        assert comparison.on.recovered
        # The OFF arm is the metastable failure: degraded >= 2x longer
        # (typically it never recovers inside the measured window).
        assert comparison.ok, comparison.summary()
        assert comparison.off.degraded_duration >= 2.0 * max(
            comparison.on.degraded_duration, 1e-9
        )
        assert comparison.on.slo_attainment > comparison.off.slo_attainment

    def test_defense_counters_fire_only_on_the_on_arm(self):
        comparison = run_overload_comparison(seed=7, duration=120.0)
        on, off = comparison.on.counters, comparison.off.counters
        for counter in (
            "sched.admission_rejects",
            "sched.deadline_cancels",
            "traffic.retry_budget_exhausted",
        ):
            assert on[counter] > 0, counter
            assert off[counter] == 0, counter

    def test_overload_chaos_run_fingerprint_is_reproducible(self):
        def once():
            return run_chaos_scenario(
                seed=11,
                plan=overload_chaos_plan(11, 60.0),
                cost_config=overload_defense_config(),
                traffic=flash_crowd_scenario(duration=60.0, seed=11),
            )

        a, b = once(), once()
        assert a.fingerprint == b.fingerprint
        assert a.counters == b.counters
