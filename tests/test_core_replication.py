"""Integration tests for the DMV core: master -> slave replication semantics."""

import pytest

from repro.common.errors import VersionInconsistency
from repro.common.versions import VersionVector
from repro.core import MasterReplica, SlaveReplica
from repro.engine import Column, HeapEngine, IndexDef, TableSchema
from repro.sql import SqlExecutor

ITEM = TableSchema(
    "item",
    [
        Column("i_id", "int", nullable=False),
        Column("i_title", "str"),
        Column("i_stock", "int"),
    ],
    primary_key=("i_id",),
    indexes=[IndexDef("ix_title", ("i_title",))],
)
ORDERS = TableSchema(
    "orders",
    [Column("o_id", "int", nullable=False), Column("o_total", "float")],
    primary_key=("o_id",),
)


def build_pair(n_slaves=1):
    master = MasterReplica("m0")
    slaves = [SlaveReplica(f"s{i}") for i in range(n_slaves)]
    for schema in (ITEM, ORDERS):
        master.engine.create_table(schema)
        for slave in slaves:
            slave.engine.create_table(schema)
    rows = [{"i_id": i, "i_title": f"b{i}", "i_stock": 10} for i in range(20)]
    master.engine.bulk_load("item", rows)
    for slave in slaves:
        slave.engine.bulk_load("item", rows)
    return master, slaves


def commit_update(master, slaves, fn):
    """Run an update on the master and replicate it synchronously."""
    txn = master.begin_update()
    sql = SqlExecutor(master.engine)
    fn(sql, txn)
    ws = master.pre_commit(txn)
    if ws is not None:
        for slave in slaves:
            slave.receive(ws)
    master.finalize(txn)
    return ws


class TestReplicationBasics:
    def test_write_set_carries_versions(self):
        master, slaves = build_pair()
        ws = commit_update(
            master, slaves, lambda sql, txn: sql.execute(
                txn, "UPDATE item SET i_stock = 5 WHERE i_id = 1"
            )
        )
        assert ws.versions == {"item": 1}
        assert len(ws.ops) == 1
        assert ws.byte_size() > 64

    def test_empty_write_set_skipped(self):
        master, slaves = build_pair()
        txn = master.begin_update()
        assert master.pre_commit(txn) is None  # nothing written

    def test_versions_increment_per_table(self):
        master, slaves = build_pair()
        commit_update(master, slaves, lambda s, t: s.execute(t, "UPDATE item SET i_stock = 1 WHERE i_id = 0"))
        ws = commit_update(
            master, slaves,
            lambda s, t: (
                s.execute(t, "UPDATE item SET i_stock = 2 WHERE i_id = 0"),
                s.execute(t, "INSERT INTO orders (o_id, o_total) VALUES (1, 9.5)"),
            ),
        )
        assert ws.versions == {"item": 2, "orders": 1}
        assert master.current_versions().as_dict() == {"item": 2, "orders": 1}

    def test_slave_buffers_without_applying(self):
        master, slaves = build_pair()
        slave = slaves[0]
        commit_update(master, slaves, lambda s, t: s.execute(t, "UPDATE item SET i_stock = 99 WHERE i_id = 3"))
        assert slave.pending_op_count() == 1
        # The data page itself is untouched until a reader arrives.
        page_id = next(iter(slave.pending))
        assert slave.engine.store.get(page_id).version == 0


class TestLazyMaterialisation:
    def test_tagged_read_sees_its_version(self):
        master, slaves = build_pair()
        slave = slaves[0]
        sql = SqlExecutor(slave.engine)
        commit_update(master, slaves, lambda s, t: s.execute(t, "UPDATE item SET i_stock = 99 WHERE i_id = 3"))
        txn = slave.begin_read_only(VersionVector({"item": 1}))
        rs = sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 3")
        assert rs.scalar() == 99
        assert slave.pending_op_count() == 0  # applied on demand

    def test_old_tag_does_not_apply_newer_ops(self):
        master, slaves = build_pair()
        slave = slaves[0]
        sql = SqlExecutor(slave.engine)
        commit_update(master, slaves, lambda s, t: s.execute(t, "UPDATE item SET i_stock = 99 WHERE i_id = 3"))
        txn = slave.begin_read_only(VersionVector({"item": 0}))
        rs = sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 3")
        assert rs.scalar() == 10  # original value
        assert slave.pending_op_count() == 1

    def test_version_inconsistency_abort(self):
        master, slaves = build_pair()
        slave = slaves[0]
        sql = SqlExecutor(slave.engine)
        commit_update(master, slaves, lambda s, t: s.execute(t, "UPDATE item SET i_stock = 99 WHERE i_id = 3"))
        # A new reader materialises v1; an old reader must then abort.
        new_reader = slave.begin_read_only(VersionVector({"item": 1}))
        sql.execute(new_reader, "SELECT i_stock FROM item WHERE i_id = 3")
        old_reader = slave.begin_read_only(VersionVector({"item": 0}))
        with pytest.raises(VersionInconsistency):
            sql.execute(old_reader, "SELECT i_stock FROM item WHERE i_id = 3")
        assert slave.counters.get("slave.version_aborts") == 1

    def test_same_tag_readers_share_replica(self):
        master, slaves = build_pair()
        slave = slaves[0]
        sql = SqlExecutor(slave.engine)
        commit_update(master, slaves, lambda s, t: s.execute(t, "UPDATE item SET i_stock = 99 WHERE i_id = 3"))
        tag = VersionVector({"item": 1})
        for _ in range(2):
            txn = slave.begin_read_only(tag)
            assert sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 3").scalar() == 99

    def test_insert_visible_via_index_at_tag(self):
        master, slaves = build_pair()
        slave = slaves[0]
        sql = SqlExecutor(slave.engine)
        commit_update(
            master, slaves,
            lambda s, t: s.execute(t, "INSERT INTO item (i_id, i_title, i_stock) VALUES (100, 'new', 1)"),
        )
        at_v1 = slave.begin_read_only(VersionVector({"item": 1}))
        assert sql.execute(at_v1, "SELECT COUNT(*) FROM item WHERE i_title = 'new'").scalar() == 1
        at_v0 = slave.begin_read_only(VersionVector({"item": 0}))
        assert sql.execute(at_v0, "SELECT COUNT(*) FROM item WHERE i_title = 'new'").scalar() == 0

    def test_scan_sees_snapshot(self):
        master, slaves = build_pair()
        slave = slaves[0]
        sql = SqlExecutor(slave.engine)
        commit_update(
            master, slaves,
            lambda s, t: s.execute(t, "INSERT INTO item (i_id, i_title, i_stock) VALUES (100, 'new', 1)"),
        )
        at_v0 = slave.begin_read_only(VersionVector({"item": 0}))
        assert sql.execute(at_v0, "SELECT COUNT(*) FROM item").scalar() == 20

    def test_untagged_read_applies_everything(self):
        master, slaves = build_pair()
        slave = slaves[0]
        commit_update(master, slaves, lambda s, t: s.execute(t, "UPDATE item SET i_stock = 99 WHERE i_id = 3"))
        txn = slave.engine.begin()
        # Untagged (current-state) read, as used during promotion.
        from repro.engine.txn import TxnMode
        txn = slave.engine.begin(TxnMode.READ_ONLY)
        sql = SqlExecutor(slave.engine)
        assert sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 3").scalar() == 99

    def test_two_updates_same_page_applied_in_order(self):
        master, slaves = build_pair()
        slave = slaves[0]
        sql = SqlExecutor(slave.engine)
        for stock in (50, 60):
            commit_update(
                master, slaves,
                lambda s, t, stock=stock: s.execute(
                    t, "UPDATE item SET i_stock = ? WHERE i_id = 3", (stock,)
                ),
            )
        txn = slave.begin_read_only(VersionVector({"item": 2}))
        assert sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 3").scalar() == 60

    def test_intermediate_version_readable(self):
        master, slaves = build_pair()
        slave = slaves[0]
        sql = SqlExecutor(slave.engine)
        for stock in (50, 60):
            commit_update(
                master, slaves,
                lambda s, t, stock=stock: s.execute(
                    t, "UPDATE item SET i_stock = ? WHERE i_id = 3", (stock,)
                ),
            )
        txn = slave.begin_read_only(VersionVector({"item": 1}))
        assert sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 3").scalar() == 50


class TestApplyAllAndDiscard:
    def test_apply_all_pending(self):
        master, slaves = build_pair()
        slave = slaves[0]
        for i in range(5):
            commit_update(
                master, slaves,
                lambda s, t, i=i: s.execute(t, "UPDATE item SET i_stock = ? WHERE i_id = ?", (i, i)),
            )
        assert slave.pending_op_count() == 5
        assert slave.apply_all_pending() == 5
        assert slave.pending_op_count() == 0

    def test_discard_above_removes_unconfirmed(self):
        master, slaves = build_pair()
        slave = slaves[0]
        commit_update(master, slaves, lambda s, t: s.execute(t, "UPDATE item SET i_stock = 1 WHERE i_id = 0"))
        commit_update(master, slaves, lambda s, t: s.execute(t, "UPDATE item SET i_stock = 2 WHERE i_id = 0"))
        # Scheduler last saw v1; v2 was partially propagated.
        discarded = slave.discard_above(VersionVector({"item": 1}))
        assert discarded == 1
        assert slave.received_versions.get("item") == 1
        sql = SqlExecutor(slave.engine)
        txn = slave.begin_read_only(VersionVector({"item": 1}))
        assert sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 0").scalar() == 1

    def test_discard_reverts_index_entries(self):
        master, slaves = build_pair()
        slave = slaves[0]
        commit_update(
            master, slaves,
            lambda s, t: s.execute(t, "INSERT INTO item (i_id, i_title, i_stock) VALUES (100, 'ghost', 1)"),
        )
        slave.discard_above(VersionVector({"item": 0}))
        sql = SqlExecutor(slave.engine)
        txn = slave.begin_read_only(VersionVector({"item": 0}))
        assert sql.execute(txn, "SELECT COUNT(*) FROM item WHERE i_title = 'ghost'").scalar() == 0
        assert slave.engine.table("item").row_count == 20

    def test_discard_reverts_delete_marks(self):
        master, slaves = build_pair()
        slave = slaves[0]
        commit_update(master, slaves, lambda s, t: s.execute(t, "DELETE FROM item WHERE i_id = 5"))
        slave.discard_above(VersionVector({"item": 0}))
        sql = SqlExecutor(slave.engine)
        txn = slave.begin_read_only(VersionVector({"item": 0}))
        assert sql.execute(txn, "SELECT COUNT(*) FROM item WHERE i_id = 5").scalar() == 1


class TestMigrationSupport:
    def test_page_versions_include_pending(self):
        master, slaves = build_pair()
        slave = slaves[0]
        commit_update(master, slaves, lambda s, t: s.execute(t, "UPDATE item SET i_stock = 9 WHERE i_id = 0"))
        versions = slave.page_versions()
        assert max(versions.values()) == 1

    def test_snapshot_newer_pages_only(self):
        master, slaves = build_pair(n_slaves=2)
        support, joiner = slaves
        commit_update(master, [support], lambda s, t: s.execute(t, "UPDATE item SET i_stock = 9 WHERE i_id = 0"))
        # Joiner is stale: asks for pages newer than its own versions.
        images = support.snapshot_pages_newer_than(joiner.page_versions())
        assert len(images) == 1
        assert images[0].version == 1

    def test_receive_page_drops_covered_ops(self):
        master, slaves = build_pair(n_slaves=2)
        support, joiner = slaves
        # Joiner receives the write-set (subscribed) AND the page image.
        commit_update(master, slaves, lambda s, t: s.execute(t, "UPDATE item SET i_stock = 9 WHERE i_id = 0"))
        images = support.snapshot_pages_newer_than({})
        for image in images:
            joiner.receive_page(image)
        assert joiner.pending_op_count() == 0  # ops covered by the page image
        sql = SqlExecutor(joiner.engine)
        txn = joiner.begin_read_only(VersionVector({"item": 1}))
        assert sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 0").scalar() == 9

    def test_slave_rejects_direct_writes(self):
        _master, slaves = build_pair()
        slave = slaves[0]
        txn = slave.engine.begin()
        sql = SqlExecutor(slave.engine)
        with pytest.raises(VersionInconsistency):
            sql.execute(txn, "UPDATE item SET i_stock = 1 WHERE i_id = 0")
