"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.common.errors import SqlError
from repro.sql.ast_nodes import (
    Between,
    BinOp,
    ColumnRef,
    Delete,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    Literal,
    Param,
    Select,
    UnaryOp,
    Update,
)
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_statement


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.is_kw("select") for t in tokens[:3])

    def test_identifiers(self):
        tokens = tokenize("c_uname item2 _x")
        assert [t.kind for t in tokens[:3]] == ["ident"] * 3

    def test_numbers(self):
        tokens = tokenize("42 3.14 0.5")
        assert [t.value for t in tokens[:3]] == ["42", "3.14", "0.5"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "string"
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_operators(self):
        tokens = tokenize("<= >= <> != = < >")
        assert [t.value for t in tokens[:7]] == ["<=", ">=", "<>", "!=", "=", "<", ">"]

    def test_params_and_punct(self):
        tokens = tokenize("(?, ?)")
        kinds = [(t.kind, t.value) for t in tokens[:5]]
        assert kinds == [
            ("punct", "("), ("punct", "?"), ("punct", ","), ("punct", "?"), ("punct", ")"),
        ]

    def test_qualified_name(self):
        tokens = tokenize("item.i_id")
        assert [t.value for t in tokens[:3]] == ["item", ".", "i_id"]

    def test_bad_character(self):
        with pytest.raises(SqlError):
            tokenize("SELECT @")

    def test_end_token(self):
        assert tokenize("")[0].kind == "end"


class TestParserSelect:
    def test_simple(self):
        stmt = parse_statement("SELECT a, b FROM t WHERE a = 1")
        assert isinstance(stmt, Select)
        assert len(stmt.items) == 2
        assert stmt.tables[0].table == "t"
        assert isinstance(stmt.where, BinOp)

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert stmt.star

    def test_params_numbered(self):
        stmt = parse_statement("SELECT a FROM t WHERE a = ? AND b = ?")
        conj = stmt.where
        assert conj.right.right == Param(1)
        assert conj.left.right == Param(0)

    def test_aliases(self):
        stmt = parse_statement("SELECT i.i_id AS id, a.a_fname nm FROM item i, author AS a")
        assert stmt.items[0].alias == "id"
        assert stmt.items[1].alias == "nm"
        assert stmt.tables[0].alias == "i"
        assert stmt.tables[1].alias == "a"

    def test_explicit_join_folded_into_where(self):
        stmt = parse_statement(
            "SELECT * FROM item JOIN author ON item.i_a_id = author.a_id WHERE i_id = 1"
        )
        assert len(stmt.tables) == 2
        # WHERE and ON are both present as conjuncts.
        assert isinstance(stmt.where, BinOp) and stmt.where.op == "and"

    def test_group_order_limit(self):
        stmt = parse_statement(
            "SELECT i_id, SUM(ol_qty) AS total FROM order_line "
            "GROUP BY i_id ORDER BY total DESC, i_id ASC LIMIT 50 OFFSET 10"
        )
        assert len(stmt.group_by) == 1
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit == Literal(50)
        assert stmt.offset == Literal(10)

    def test_count_star(self):
        stmt = parse_statement("SELECT COUNT(*) FROM t")
        func = stmt.items[0].expr
        assert isinstance(func, FuncCall) and func.star

    def test_distinct_aggregate(self):
        stmt = parse_statement("SELECT COUNT(DISTINCT a) FROM t")
        assert stmt.items[0].expr.distinct

    def test_select_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_like_in_between_isnull(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE a LIKE 'x%' AND b IN (1, 2) "
            "AND c BETWEEN 1 AND 5 AND d IS NOT NULL"
        )
        conjuncts = []

        def flatten(e):
            if isinstance(e, BinOp) and e.op == "and":
                flatten(e.left)
                flatten(e.right)
            else:
                conjuncts.append(e)

        flatten(stmt.where)
        assert isinstance(conjuncts[0], Like)
        assert isinstance(conjuncts[1], InList)
        assert isinstance(conjuncts[2], Between)
        assert isinstance(conjuncts[3], IsNull) and conjuncts[3].negated

    def test_not_like(self):
        stmt = parse_statement("SELECT a FROM t WHERE a NOT LIKE 'x%'")
        assert stmt.where.negated

    def test_not_in(self):
        stmt = parse_statement("SELECT a FROM t WHERE a NOT IN (1)")
        assert isinstance(stmt.where, InList) and stmt.where.negated

    def test_arithmetic_precedence(self):
        stmt = parse_statement("SELECT 1 + 2 * 3 FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesised_expression(self):
        stmt = parse_statement("SELECT (1 + 2) * 3 FROM t")
        assert stmt.items[0].expr.op == "*"

    def test_unary_minus(self):
        stmt = parse_statement("SELECT -a FROM t")
        assert isinstance(stmt.items[0].expr, UnaryOp)

    def test_or_precedence(self):
        stmt = parse_statement("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "or"
        assert stmt.where.right.op == "and"

    def test_qualified_column(self):
        stmt = parse_statement("SELECT item.i_id FROM item")
        assert stmt.items[0].expr == ColumnRef("item", "i_id")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse_statement("SELECT a FROM t garbage extra tokens ,")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlError):
            parse_statement("SELECT a WHERE a = 1")


class TestParserDml:
    def test_insert(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(stmt, Insert)
        assert stmt.columns == ["a", "b"]
        assert stmt.rows[0][1] == Literal("x")

    def test_insert_multi_row(self):
        stmt = parse_statement("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert len(stmt.rows) == 3

    def test_insert_arity_mismatch(self):
        with pytest.raises(SqlError):
            parse_statement("INSERT INTO t (a, b) VALUES (1)")

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = a + 1, b = ? WHERE c = 2")
        assert isinstance(stmt, Update)
        assert stmt.assignments[0][0] == "a"
        assert stmt.assignments[1][1] == Param(0)

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, Delete)

    def test_delete_without_where(self):
        assert parse_statement("DELETE FROM t").where is None

    def test_semicolon_tolerated(self):
        parse_statement("SELECT a FROM t;")
