"""Unit tests for the heap engine: schema, txns, commit/abort, locking."""

import pytest

from repro.common.errors import SchemaError, TransactionAborted
from repro.engine import (
    Column,
    HeapEngine,
    IndexDef,
    LockWait,
    TableSchema,
    TwoPhaseLocking,
    TxnMode,
    TxnState,
)

ITEM = TableSchema(
    name="item",
    columns=[
        Column("i_id", "int", nullable=False),
        Column("i_title", "str"),
        Column("i_cost", "float"),
        Column("i_subject", "str"),
    ],
    primary_key=("i_id",),
    indexes=[IndexDef("item_subject", ("i_subject", "i_id"))],
)


def make_engine(controller=None):
    engine = HeapEngine(controller=controller, rows_per_page=4)
    engine.create_table(ITEM)
    return engine


def insert_items(engine, txn, n, start=0):
    locs = []
    for i in range(start, start + n):
        locs.append(
            engine.table("item").insert_row(
                txn,
                {"i_id": i, "i_title": f"book-{i}", "i_cost": float(i), "i_subject": "SCI"},
            )
        )
    return locs


class TestSchema:
    def test_row_roundtrip(self):
        row = ITEM.row_from_dict({"i_id": 1, "i_title": "t", "i_cost": 2, "i_subject": None})
        assert row == (1, "t", 2.0, None)
        assert ITEM.row_to_dict(row)["i_title"] == "t"

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            ITEM.row_from_dict({"nope": 1})

    def test_type_check(self):
        with pytest.raises(SchemaError):
            ITEM.row_from_dict({"i_id": "not-an-int"})

    def test_not_null_enforced(self):
        with pytest.raises(SchemaError):
            ITEM.row_from_dict({"i_title": "t"})  # i_id missing and NOT NULL

    def test_bool_is_not_int(self):
        with pytest.raises(SchemaError):
            ITEM.row_from_dict({"i_id": True})

    def test_updated_row(self):
        row = ITEM.row_from_dict({"i_id": 1, "i_title": "a"})
        assert ITEM.updated_row(row, {"i_title": "b"})[1] == "b"

    def test_pk_required(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", "int")], primary_key=())

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a"), Column("a")], primary_key=("a",))

    def test_index_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", "int")],
                primary_key=("a",),
                indexes=[IndexDef("bad", ("zz",))],
            )


class TestCrud:
    def test_insert_and_fetch(self):
        engine = make_engine()
        txn = engine.begin()
        (loc,) = insert_items(engine, txn, 1)
        assert engine.table("item").fetch(txn, loc)[1] == "book-0"
        engine.commit(txn)

    def test_duplicate_pk_rejected(self):
        engine = make_engine()
        txn = engine.begin()
        insert_items(engine, txn, 1)
        with pytest.raises(TransactionAborted) as err:
            insert_items(engine, txn, 1)
        assert err.value.reason == "duplicate-key"

    def test_pk_reusable_after_delete(self):
        engine = make_engine()
        txn = engine.begin()
        (loc,) = insert_items(engine, txn, 1)
        engine.commit(txn)
        txn2 = engine.begin()
        engine.table("item").delete_row(txn2, loc)
        insert_items(engine, txn2, 1)  # same id again
        engine.commit(txn2)

    def test_update_row(self):
        engine = make_engine()
        txn = engine.begin()
        (loc,) = insert_items(engine, txn, 1)
        engine.commit(txn)
        txn2 = engine.begin()
        engine.table("item").update_row(txn2, loc, {"i_cost": 99.0})
        engine.commit(txn2)
        txn3 = engine.begin(TxnMode.READ_ONLY)
        assert engine.table("item").fetch(txn3, loc)[2] == 99.0

    def test_pk_update_rejected(self):
        engine = make_engine()
        txn = engine.begin()
        (loc,) = insert_items(engine, txn, 1)
        with pytest.raises(SchemaError):
            engine.table("item").update_row(txn, loc, {"i_id": 777})

    def test_scan(self):
        engine = make_engine()
        txn = engine.begin()
        insert_items(engine, txn, 10)
        engine.commit(txn)
        txn2 = engine.begin(TxnMode.READ_ONLY)
        assert len(list(engine.table("item").scan(txn2))) == 10

    def test_pages_span(self):
        engine = make_engine()  # 4 rows per page
        txn = engine.begin()
        insert_items(engine, txn, 10)
        engine.commit(txn)
        assert engine.store.page_count() == 3

    def test_row_count(self):
        engine = make_engine()
        txn = engine.begin()
        locs = insert_items(engine, txn, 5)
        engine.table("item").delete_row(txn, locs[0])
        engine.commit(txn)
        assert engine.table("item").row_count == 4

    def test_slot_reuse_after_delete(self):
        engine = make_engine()
        txn = engine.begin()
        locs = insert_items(engine, txn, 4)  # fills page 0
        engine.table("item").delete_row(txn, locs[1])
        engine.commit(txn)
        txn2 = engine.begin()
        (new_loc,) = insert_items(engine, txn2, 1, start=100)
        engine.commit(txn2)
        assert new_loc == locs[1]  # freed slot reused

    def test_read_only_txn_cannot_write(self):
        engine = make_engine()
        txn = engine.begin(TxnMode.READ_ONLY)
        with pytest.raises(TransactionAborted):
            insert_items(engine, txn, 1)

    def test_index_lookup_after_commit(self):
        engine = make_engine()
        txn = engine.begin()
        insert_items(engine, txn, 5)
        engine.commit(txn)
        ro = engine.begin(TxnMode.READ_ONLY)
        locs = list(engine.table("item").index_range(ro, "item_subject", ("SCI",), ("SCI", 10**9)))
        assert len(locs) == 5


class TestAbort:
    def test_abort_restores_rows(self):
        engine = make_engine()
        txn = engine.begin()
        insert_items(engine, txn, 3)
        engine.commit(txn)
        txn2 = engine.begin()
        insert_items(engine, txn2, 3, start=10)
        engine.abort(txn2)
        ro = engine.begin(TxnMode.READ_ONLY)
        assert len(list(engine.table("item").scan(ro))) == 3
        assert engine.table("item").row_count == 3

    def test_abort_restores_update(self):
        engine = make_engine()
        txn = engine.begin()
        (loc,) = insert_items(engine, txn, 1)
        engine.commit(txn)
        txn2 = engine.begin()
        engine.table("item").update_row(txn2, loc, {"i_title": "changed"})
        engine.abort(txn2)
        ro = engine.begin(TxnMode.READ_ONLY)
        assert engine.table("item").fetch(ro, loc)[1] == "book-0"

    def test_abort_restores_delete_and_indexes(self):
        engine = make_engine()
        txn = engine.begin()
        (loc,) = insert_items(engine, txn, 1)
        engine.commit(txn)
        txn2 = engine.begin()
        engine.table("item").delete_row(txn2, loc)
        engine.abort(txn2)
        ro = engine.begin(TxnMode.READ_ONLY)
        assert engine.table("item").pk_lookup(ro, (0,)) == [loc]

    def test_abort_is_idempotent(self):
        engine = make_engine()
        txn = engine.begin()
        insert_items(engine, txn, 1)
        engine.abort(txn)
        engine.abort(txn)  # no-op
        assert txn.state is TxnState.ABORTED

    def test_abort_all_active(self):
        engine = make_engine()
        t1 = engine.begin()
        t2 = engine.begin()
        insert_items(engine, t1, 1)
        insert_items(engine, t2, 1, start=50)
        assert engine.abort_all_active() == 2
        assert engine.table("item").row_count == 0


class TestSavepoints:
    def test_statement_rollback(self):
        engine = make_engine()
        txn = engine.begin()
        insert_items(engine, txn, 2)
        sp = txn.savepoint()
        insert_items(engine, txn, 2, start=10)
        engine.rollback_to(txn, sp)
        engine.commit(txn)
        ro = engine.begin(TxnMode.READ_ONLY)
        assert len(list(engine.table("item").scan(ro))) == 2

    def test_rollback_truncates_redo(self):
        engine = make_engine()
        txn = engine.begin()
        insert_items(engine, txn, 1)
        sp = txn.savepoint()
        insert_items(engine, txn, 1, start=10)
        engine.rollback_to(txn, sp)
        assert len(txn.redo) == 1


class TestVersionsAndCommit:
    def test_commit_returns_versions(self):
        engine = make_engine()
        txn = engine.begin()
        insert_items(engine, txn, 1)
        versions = engine.commit(txn)
        assert versions == {"item": 1}
        txn2 = engine.begin()
        insert_items(engine, txn2, 1, start=5)
        assert engine.commit(txn2) == {"item": 2}

    def test_commit_stamps_page_versions(self):
        engine = make_engine()
        txn = engine.begin()
        (loc,) = insert_items(engine, txn, 1)
        engine.commit(txn)
        assert engine.store.get(loc[0]).version == 1

    def test_commit_stamps_index_versions(self):
        engine = make_engine()
        txn = engine.begin()
        (loc,) = insert_items(engine, txn, 1)
        engine.commit(txn)
        from repro.common.versions import VersionVector

        ro = engine.begin(TxnMode.READ_ONLY, tag=VersionVector({"item": 1}))
        assert engine.table("item").pk_lookup(ro, (0,)) == [loc]
        ro0 = engine.begin(TxnMode.READ_ONLY, tag=VersionVector({"item": 0}))
        assert engine.table("item").pk_lookup(ro0, (0,)) == []


class TestTwoPhaseLocking:
    def test_write_conflict_raises_lockwait(self):
        engine = make_engine(controller=TwoPhaseLocking())
        t1 = engine.begin()
        (loc,) = insert_items(engine, t1, 1)
        engine.commit(t1)
        t2 = engine.begin()
        t3 = engine.begin()
        engine.table("item").update_row(t2, loc, {"i_cost": 1.0})
        with pytest.raises(LockWait):
            engine.table("item").update_row(t3, loc, {"i_cost": 2.0})

    def test_lock_released_after_commit(self):
        engine = make_engine(controller=TwoPhaseLocking())
        t1 = engine.begin()
        (loc,) = insert_items(engine, t1, 1)
        engine.commit(t1)
        t2 = engine.begin()
        engine.table("item").update_row(t2, loc, {"i_cost": 1.0})
        engine.commit(t2)
        t3 = engine.begin()
        engine.table("item").update_row(t3, loc, {"i_cost": 2.0})
        engine.commit(t3)

    def test_reader_blocks_on_writer(self):
        engine = make_engine(controller=TwoPhaseLocking())
        t1 = engine.begin()
        (loc,) = insert_items(engine, t1, 1)
        engine.commit(t1)
        writer = engine.begin()
        engine.table("item").update_row(writer, loc, {"i_cost": 5.0})
        reader = engine.begin(TxnMode.READ_ONLY)
        with pytest.raises(LockWait):
            engine.table("item").fetch(reader, loc)

    def test_lockwait_retry_after_release(self):
        engine = make_engine(controller=TwoPhaseLocking())
        t1 = engine.begin()
        (loc,) = insert_items(engine, t1, 1)
        engine.commit(t1)
        writer = engine.begin()
        engine.table("item").update_row(writer, loc, {"i_cost": 5.0})
        reader = engine.begin(TxnMode.READ_ONLY)
        sp = reader.savepoint()
        granted = []
        try:
            engine.table("item").fetch(reader, loc)
        except LockWait as wait:
            engine.rollback_to(reader, sp)
            wait.request.on_grant(lambda r: granted.append(True))
        engine.commit(writer)
        assert granted == [True]
        assert engine.table("item").fetch(reader, loc)[2] == 5.0

    def test_dirty_page_detection(self):
        engine = make_engine(controller=TwoPhaseLocking())
        txn = engine.begin()
        (loc,) = insert_items(engine, txn, 1)
        page = engine.store.get(loc[0])
        assert engine.page_is_dirty(page)
        engine.commit(txn)
        assert not engine.page_is_dirty(page)


class TestCounters:
    def test_engine_counters_move(self):
        engine = make_engine()
        txn = engine.begin()
        insert_items(engine, txn, 3)
        engine.commit(txn)
        assert engine.counters.get("engine.rows_inserted") == 3
        assert engine.counters.get("engine.txns_committed") == 1
