"""Unit tests for the failover building blocks (pure, no simulation)."""

import pytest

from repro.common.errors import NodeUnavailable
from repro.common.versions import VersionVector
from repro.core import MasterReplica, SlaveReplica
from repro.engine import Column, HeapEngine, TableSchema, TxnMode
from repro.disk.wal import WriteAheadLog
from repro.engine.engine import TwoPhaseLocking
from repro.failover import (
    cleanup_after_master_failure,
    elect_new_master,
    ghost_wal_records,
    integrate_stale_node,
    promote_slave_to_master,
    restore_from_checkpoint,
    ship_page_ids,
)
from repro.sql import SqlExecutor
from repro.storage import PageCache, StableStore
from repro.storage.checkpoint import FuzzyCheckpointer

ITEM = TableSchema(
    "item",
    [Column("i_id", "int", nullable=False), Column("i_stock", "int")],
    primary_key=("i_id",),
)


def build(n_slaves=2, rows=40):
    master = MasterReplica("m0")
    slaves = [SlaveReplica(f"s{i}") for i in range(n_slaves)]
    data = [{"i_id": i, "i_stock": 10} for i in range(rows)]
    for node in [master.engine] + [s.engine for s in slaves]:
        node.create_table(ITEM)
        node.bulk_load("item", data)
    return master, slaves


def do_update(master, slaves, i, stock):
    sql = SqlExecutor(master.engine)
    txn = master.begin_update(write_tables=["item"])
    sql.execute(txn, "UPDATE item SET i_stock = ? WHERE i_id = ?", (stock, i))
    ws = master.pre_commit(txn)
    for slave in slaves:
        slave.receive(ws)
    master.finalize(txn)
    return ws


class TestElection:
    def test_lowest_id_wins(self):
        _, slaves = build(3)
        assert elect_new_master(slaves).node_id == "s0"

    def test_no_candidates_raises(self):
        with pytest.raises(NodeUnavailable):
            elect_new_master([])

    def test_freshest_candidate_beats_lower_id(self):
        # Quorum acks: s0 (lowest id) missed the last two commits while s1
        # and s2 received them.  Electing s0 by id would silently discard
        # confirmed history; the election must prefer the freshest replica.
        master, slaves = build(3)
        do_update(master, slaves, 1, 11)  # all three receive v1
        do_update(master, [slaves[1], slaves[2]], 2, 12)
        do_update(master, [slaves[1], slaves[2]], 3, 13)
        assert slaves[0].received_versions.total() < slaves[1].received_versions.total()
        assert elect_new_master(slaves).node_id == "s1"  # freshest, id tiebreak

    def test_id_tiebreak_among_equally_fresh(self):
        master, slaves = build(3)
        do_update(master, slaves, 1, 11)
        assert elect_new_master(list(reversed(slaves))).node_id == "s0"


class TestMasterRecovery:
    def test_cleanup_discards_unconfirmed(self):
        master, slaves = build(2)
        do_update(master, slaves, 1, 50)  # confirmed (v1)
        do_update(master, slaves, 2, 60)  # partially propagated (v2)
        confirmed = VersionVector({"item": 1})
        dropped = cleanup_after_master_failure(slaves, confirmed)
        assert dropped == 2  # one op on each slave
        for slave in slaves:
            assert slave.received_versions.get("item") == 1

    def test_promotion_applies_pending_and_switches_role(self):
        master, slaves = build(2)
        do_update(master, slaves, 1, 50)
        confirmed = VersionVector({"item": 1})
        new_master = promote_slave_to_master(slaves[0], confirmed)
        assert new_master.engine is slaves[0].engine
        assert new_master.current_versions() == confirmed
        # The promoted node can now execute updates.
        sql = SqlExecutor(new_master.engine)
        txn = new_master.begin_update(write_tables=["item"])
        sql.execute(txn, "UPDATE item SET i_stock = 99 WHERE i_id = 1")
        ws = new_master.pre_commit(txn)
        assert ws.versions == {"item": 2}
        new_master.finalize(txn)

    def test_promotion_without_confirmed_uses_received(self):
        master, slaves = build(1)
        do_update(master, slaves, 1, 50)
        new_master = promote_slave_to_master(slaves[0])
        assert new_master.current_versions().get("item") == 1

    def test_promotion_reuses_versions_of_discarded_ghosts(self):
        # After cleanup the promoted master's next commit claims the same
        # version number the discarded write-set carried — the reuse that
        # forces restart-time WAL redo to filter on commit identity, not
        # version comparison alone.
        master, slaves = build(2)
        do_update(master, slaves, 1, 50)  # confirmed v1
        ghost = do_update(master, slaves, 2, 60)  # unacknowledged v2
        cleanup_after_master_failure(slaves, VersionVector({"item": 1}))
        new_master = promote_slave_to_master(slaves[0], VersionVector({"item": 1}))
        sql = SqlExecutor(new_master.engine)
        txn = new_master.begin_update(write_tables=["item"])
        sql.execute(txn, "UPDATE item SET i_stock = 77 WHERE i_id = 3")
        ws = new_master.pre_commit(txn)
        new_master.finalize(txn)
        assert ws.versions == ghost.versions == {"item": 2}
        assert ws.dedup_key() != ghost.dedup_key() or ws.txn_id != ghost.txn_id

    def test_promotion_honors_read_concurrency_choice(self):
        master, slaves = build(2)
        do_update(master, slaves, 1, 50)
        new_master = promote_slave_to_master(
            slaves[0], VersionVector({"item": 1}), read_concurrency="2pl"
        )
        assert isinstance(new_master.engine.controller, TwoPhaseLocking)

    def test_promotion_rejects_unknown_concurrency_mode(self):
        master, slaves = build(1)
        do_update(master, slaves, 1, 50)
        with pytest.raises(ValueError):
            promote_slave_to_master(
                slaves[0], VersionVector({"item": 1}), read_concurrency="mvcc"
            )


class TestGhostClassification:
    def _wal_with(self, master, slaves, count):
        wal = WriteAheadLog()
        for i in range(1, count + 1):
            ws = do_update(master, slaves, i, i * 10)
            wal.append_commit(
                ws.txn_id, ws.ops, versions=ws.versions,
                master_id=ws.master_id, seq=ws.seq,
            )
        return wal

    def test_records_above_confirmed_are_ghost_candidates(self):
        master, slaves = build(1)
        wal = self._wal_with(master, slaves, 3)
        ghosts = ghost_wal_records(
            wal.records_since(0), VersionVector({"item": 1})
        )
        assert [dict(g.versions)["item"] for g in ghosts] == [2, 3]

    def test_fully_covered_records_are_never_ghosts(self):
        master, slaves = build(1)
        wal = self._wal_with(master, slaves, 2)
        assert ghost_wal_records(
            wal.records_since(0), VersionVector({"item": 5})
        ) == []

    def test_versionless_records_are_skipped(self):
        # Size-only disk-tier records carry no redo content: nothing to
        # resurrect, so they are not ghost candidates.
        from repro.disk.wal import WalRecord

        assert ghost_wal_records(
            [WalRecord(txn_id=1, nbytes=48)], VersionVector()
        ) == []


class TestCheckpointRestore:
    def test_roundtrip_through_stable_store(self):
        master, slaves = build(1)
        slave = slaves[0]
        do_update(master, slaves, 1, 77)
        slave.apply_all_pending()
        stable = StableStore()
        ckpt = FuzzyCheckpointer(slave.engine.store, stable)
        ckpt.full_checkpoint(lambda page: False)
        # Simulate reboot + restore.
        restored = restore_from_checkpoint(slave, stable)
        assert restored == len(stable)
        assert slave.catching_up
        # After finish_catchup the node serves correct reads again.
        slave.finish_catchup()
        sql = SqlExecutor(slave.engine)
        txn = slave.begin_read_only(VersionVector({"item": 1}))
        assert sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 1").scalar() == 77

    def test_restore_clears_prior_pending(self):
        master, slaves = build(1)
        slave = slaves[0]
        stable = StableStore()
        FuzzyCheckpointer(slave.engine.store, stable).full_checkpoint(lambda p: False)
        do_update(master, slaves, 1, 50)
        assert slave.pending_op_count() == 1
        restore_from_checkpoint(slave, stable)
        assert slave.pending_op_count() == 0


class TestIntegration:
    def test_stale_node_catches_up(self):
        master, slaves = build(2)
        support, joiner = slaves
        # Joiner misses three updates entirely (it was down).
        for i, stock in ((1, 11), (2, 22), (3, 33)):
            do_update(master, [support], i, stock)
        joiner.catching_up = True
        stats = integrate_stale_node(joiner, support)
        assert stats.pages_sent >= 1  # every page holding a changed row
        assert stats.bytes_sent > 0
        assert len(stats.page_ids) == stats.pages_sent
        sql = SqlExecutor(joiner.engine)
        txn = joiner.begin_read_only(VersionVector({"item": 3}))
        assert sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 2").scalar() == 22

    def test_integration_with_concurrent_subscription(self):
        master, slaves = build(2)
        support, joiner = slaves
        do_update(master, [support], 1, 11)        # missed while down
        joiner.catching_up = True
        do_update(master, slaves, 2, 22)           # received after subscribing
        stats = integrate_stale_node(joiner, support)
        # The subscribed op was covered by the page transfer (support had
        # materialised it) — either dropped or index-applied, never both.
        sql = SqlExecutor(joiner.engine)
        txn = joiner.begin_read_only(VersionVector({"item": 2}))
        assert sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 1").scalar() == 11
        assert sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 2").scalar() == 22
        assert not joiner.catching_up


class TestWarmup:
    def test_ship_page_ids_copies_hottest(self):
        from repro.common.ids import PageId

        active = PageCache(100)
        backup = PageCache(100)
        for n in range(10):
            active.touch(PageId("item", n))
        shipped = ship_page_ids(active, backup)
        assert len(shipped) == 10
        assert backup.resident_count() == 10
        # LRU order mirrors the active cache: hottest last-touched first.
        assert backup.hottest(1) == active.hottest(1)

    def test_ship_with_limit(self):
        from repro.common.ids import PageId

        active = PageCache(100)
        backup = PageCache(100)
        for n in range(10):
            active.touch(PageId("item", n))
        shipped = ship_page_ids(active, backup, limit=3)
        assert len(shipped) == 3
        assert backup.resident_count() == 3
