"""Stress tests: the threaded live cluster under real thread interleaving."""

import threading

import pytest

from repro.cluster.threaded import ThreadedDmvCluster
from repro.common.errors import TransactionAborted
from repro.engine import Column, TableSchema

ACCOUNTS = TableSchema(
    "accounts",
    [Column("id", "int", nullable=False), Column("balance", "int")],
    primary_key=("id",),
)
N_ACCOUNTS = 32
INITIAL = 100


def build(num_slaves=2):
    cluster = ThreadedDmvCluster([ACCOUNTS], num_slaves=num_slaves)
    cluster.bulk_load("accounts", [{"id": i, "balance": INITIAL} for i in range(N_ACCOUNTS)])
    return cluster


class TestBasics:
    def test_read_after_update(self):
        cluster = build()
        cluster.run_update(
            [("UPDATE accounts SET balance = 50 WHERE id = 0", ())], tables=["accounts"]
        )
        assert cluster.run_read(
            "SELECT balance FROM accounts WHERE id = 0", tables=["accounts"]
        ).scalar() == 50

    def test_reads_balance_across_slaves(self):
        cluster = build(num_slaves=3)
        for _ in range(6):
            assert cluster.run_read(
                "SELECT COUNT(*) FROM accounts", tables=["accounts"]
            ).scalar() == N_ACCOUNTS


class TestConcurrency:
    def _transfer_worker(self, cluster, rounds, errors, done_counts, worker_id):
        import random

        rng = random.Random(worker_id)
        done = 0
        for _ in range(rounds):
            src = rng.randrange(N_ACCOUNTS)
            dst = rng.randrange(N_ACCOUNTS)
            amount = rng.randint(1, 10)
            try:
                cluster.run_update(
                    [
                        ("UPDATE accounts SET balance = balance - ? WHERE id = ?", (amount, src)),
                        ("UPDATE accounts SET balance = balance + ? WHERE id = ?", (amount, dst)),
                    ],
                    tables=["accounts"],
                )
                done += 1
            except TransactionAborted:
                pass  # deadlock victim: acceptable, retried by real apps
            except Exception as exc:  # noqa: BLE001 - surface to the test
                errors.append(exc)
                return
        done_counts[worker_id] = done

    def _reader_worker(self, cluster, rounds, errors, worker_id):
        for _ in range(rounds):
            try:
                total = cluster.run_read(
                    "SELECT SUM(balance) FROM accounts", tables=["accounts"]
                ).scalar()
                if total != N_ACCOUNTS * INITIAL:
                    errors.append(AssertionError(f"inconsistent snapshot: {total}"))
                    return
            except TransactionAborted:
                pass  # version-inconsistency abort: retry in real apps
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
                return

    def test_concurrent_transfers_preserve_invariant(self):
        """The headline guarantee under true preemptive threading."""
        cluster = build(num_slaves=2)
        errors: list = []
        done_counts: dict = {}
        writers = [
            threading.Thread(
                target=self._transfer_worker,
                args=(cluster, 40, errors, done_counts, w),
            )
            for w in range(4)
        ]
        readers = [
            threading.Thread(target=self._reader_worker, args=(cluster, 40, errors, 100 + r))
            for r in range(4)
        ]
        for t in writers + readers:
            t.start()
        for t in writers + readers:
            t.join(timeout=60)
            assert not t.is_alive(), "worker thread hung"
        assert not errors, errors
        assert sum(done_counts.values()) > 0
        # Final state is consistent everywhere.
        total = cluster.run_read("SELECT SUM(balance) FROM accounts", tables=["accounts"]).scalar()
        assert total == N_ACCOUNTS * INITIAL

    def test_slaves_converge_after_concurrent_load(self):
        cluster = build(num_slaves=2)
        errors: list = []
        done: dict = {}
        threads = [
            threading.Thread(
                target=self._transfer_worker, args=(cluster, 30, errors, done, w)
            )
            for w in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        states = []
        for node in cluster.nodes.values():
            if node.slave is None:
                continue
            with node.mutex:
                node.slave.apply_all_pending()
                from repro.engine import TxnMode

                ro = node.engine.begin(TxnMode.READ_ONLY)
                states.append(sorted(r for _l, r in node.engine.table("accounts").scan(ro)))
        assert states[0] == states[1]

    def test_blocking_lock_wait_resolves(self):
        """A statement blocked on another thread's page lock wakes up."""
        cluster = build(num_slaves=1)
        conn1 = cluster.connect()
        conn1.begin_update(["accounts"])
        conn1.query("UPDATE accounts SET balance = 1 WHERE id = 0")
        outcome = {}

        def blocked():
            try:
                cluster.run_update(
                    [("UPDATE accounts SET balance = 2 WHERE id = 0", ())],
                    tables=["accounts"],
                )
                outcome["ok"] = True
            except Exception as exc:  # noqa: BLE001
                outcome["error"] = exc

        thread = threading.Thread(target=blocked)
        thread.start()
        thread.join(timeout=0.5)
        assert thread.is_alive()  # genuinely blocked on the page lock
        conn1.commit()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert outcome.get("ok") is True
        assert cluster.run_read(
            "SELECT balance FROM accounts WHERE id = 0", tables=["accounts"]
        ).scalar() == 2
