"""Dynamic conflict-class sharding: split/merge/re-home correctness.

Three layers of assurance:

* unit tests of the ``ConflictClassMap`` mutation API (atom floors, id
  allocation, master inheritance, epoch bumps);
* Hypothesis: random split/merge/re-home sequences over random template
  sets always preserve the disjointness invariants (every table in
  exactly one class, no co-written atom ever split across classes), and
  map construction is independent of input ordering and of
  ``PYTHONHASHSEED``;
* cluster-level: a forced re-home mid-run drains the class and replays
  zero lost or duplicated write-sets (commit-log coverage, counter
  conservation, byte-identical replica contents).
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.core import ConflictClassMap
from repro.tpcw.schema import TABLE_NAMES, UPDATE_TEMPLATES

TABLES = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"]


def pair_map():
    """Four atoms of two tables each — plenty of room to regroup."""
    return ConflictClassMap(
        TABLES, [{"t0", "t1"}, {"t2", "t3"}, {"t4", "t5"}, {"t6", "t7"}]
    )


class TestSplit:
    def test_single_atom_class_is_the_floor(self):
        ccm = ConflictClassMap.single_class(["a", "b"])
        assert ccm.split_class(0) is None

    def test_split_after_merge_restores_granularity(self):
        ccm = pair_map()
        ccm.assign_masters(["m0"])
        merged = ccm.merge_classes(0, 1)
        assert ccm.num_classes == 3
        new_id = ccm.split_class(merged)
        assert new_id is not None and new_id >= 4  # fresh id, never recycled
        assert ccm.num_classes == 4
        ccm.validate_disjoint()
        # The split moved whole atoms: t2/t3 travel together.
        assert ccm.class_of("t2") == ccm.class_of("t3") == new_id

    def test_split_product_inherits_master(self):
        ccm = pair_map()
        ccm.assign_masters(["m0", "m1"])
        merged = ccm.merge_classes(0, 1)
        owner = ccm.master_of_class(merged)
        new_id = ccm.split_class(merged)
        assert ccm.master_of_class(new_id) == owner

    def test_split_bumps_assignment_epoch(self):
        ccm = pair_map()
        ccm.merge_classes(0, 1)
        before = ccm.assignment_epoch
        ccm.split_class(0)
        assert ccm.assignment_epoch == before + 1


class TestMerge:
    def test_merge_retires_absorbed_id(self):
        ccm = pair_map()
        ccm.assign_masters(["m0"])
        ccm.merge_classes(0, 2)
        assert 2 not in ccm.class_ids()
        assert ccm.class_of("t4") == 0
        ccm.validate_disjoint()

    def test_merge_keeps_keepers_master(self):
        ccm = pair_map()
        ccm.assign_masters(["m0", "m1"])
        keeper_master = ccm.master_of_class(0)
        ccm.merge_classes(0, 2)
        assert ccm.master_of_class(0) == keeper_master

    def test_merge_unknown_class_rejected(self):
        ccm = pair_map()
        with pytest.raises(ConfigError):
            ccm.merge_classes(0, 99)

    def test_merge_self_is_noop(self):
        ccm = pair_map()
        before = ccm.assignment_epoch
        assert ccm.merge_classes(1, 1) == 1
        assert ccm.assignment_epoch == before


class TestRehome:
    def test_rehome_moves_ownership_and_bumps_epoch(self):
        ccm = pair_map()
        ccm.assign_masters(["m0", "m1"])
        cls = ccm.class_of("t0")
        before = ccm.assignment_epoch
        ccm.rehome_class(cls, "m1")
        assert ccm.master_of_class(cls) == "m1"
        assert ccm.assignment_epoch == before + 1
        ccm.validate_disjoint()

    def test_rehome_unknown_class_rejected(self):
        ccm = pair_map()
        with pytest.raises(ConfigError):
            ccm.rehome_class(42, "m0")


# -- Hypothesis: disjointness survives any mutation sequence --------------------

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["split", "merge", "rehome"]),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=30,
)

templates_strategy = st.lists(
    st.sets(st.sampled_from(TABLES), min_size=1, max_size=4),
    max_size=6,
)


@st.composite
def map_and_ops(draw):
    return draw(templates_strategy), draw(ops_strategy)


class TestDisjointnessProperty:
    @settings(max_examples=200, deadline=None)
    @given(map_and_ops())
    def test_random_mutations_preserve_disjointness(self, case):
        templates, ops = case
        ccm = ConflictClassMap(TABLES, templates)
        masters = ["m0", "m1", "m2", "m3"]
        ccm.assign_masters(masters)
        atom_count = len(ccm.atoms)
        for kind, a, b in ops:
            ids = ccm.class_ids()
            if kind == "split":
                ccm.split_class(ids[a % len(ids)])
            elif kind == "merge" and len(ids) > 1:
                keep, absorb = ids[a % len(ids)], ids[b % len(ids)]
                if keep != absorb:
                    ccm.merge_classes(keep, absorb)
            elif kind == "rehome":
                ccm.rehome_class(ids[a % len(ids)], masters[b % len(masters)])
            # The invariants hold after *every* step, not just at the end.
            ccm.validate_disjoint()
            # Classes partition the tables exactly.
            assert sorted(
                t for c in ccm.class_ids() for t in ccm.tables_of_class(c)
            ) == sorted(TABLES)
            # Atom granularity is the floor and the ceiling of regrouping.
            assert 1 <= len(ccm.class_ids()) <= atom_count
            assert ccm.num_classes == len(ccm.class_ids())

    @settings(max_examples=100, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_construction_is_order_independent(self, rng):
        shuffled_tables = list(TABLE_NAMES)
        rng.shuffle(shuffled_tables)
        shuffled_templates = [set(t) for t in UPDATE_TEMPLATES]
        rng.shuffle(shuffled_templates)
        reference = ConflictClassMap(TABLE_NAMES, UPDATE_TEMPLATES)
        permuted = ConflictClassMap(shuffled_tables, shuffled_templates)
        assert permuted._class_of_table == reference._class_of_table
        assert permuted.atoms == reference.atoms


_HASHSEED_SCRIPT = """
import json, sys
from repro.core import ConflictClassMap
from repro.tpcw.schema import TABLE_NAMES, UPDATE_TEMPLATES

ccm = ConflictClassMap(TABLE_NAMES, UPDATE_TEMPLATES)
ccm.assign_masters(["m0", "m1", "m2", "m3"])
merged = ccm.merge_classes(*ccm.class_ids()[:2])
new_id = ccm.split_class(merged)
ccm.rehome_class(new_id if new_id is not None else merged, "m2")
print(json.dumps({
    "classes": ccm._class_of_table,
    "masters": {str(k): v for k, v in sorted(ccm._master_of_class.items())},
    "atoms": [sorted(a) for a in ccm.atoms],
    "epoch": ccm.assignment_epoch,
}, sort_keys=True))
"""


class TestHashSeedDeterminism:
    def test_routing_tables_identical_across_hash_seeds(self):
        outputs = []
        for seed in ("0", "1", "1234"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (env.get("PYTHONPATH"), "src") if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", _HASHSEED_SCRIPT],
                capture_output=True, text=True, env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1] == outputs[2]


# -- cluster level: a drained re-home loses and duplicates nothing ---------------


class TestDrainedRehomeReplay:
    def test_forced_rehome_mid_run_zero_lost_or_duplicated(self):
        from dataclasses import replace

        from repro.chaos.invariants import check_all_invariants
        from repro.cluster.costs import CostConfig
        from repro.cluster.simcluster import SimDmvCluster
        from repro.tpcw import (
            MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale, tpcw_conflict_map,
        )

        scale = TpcwScale(num_items=40, num_customers=96)
        cost = replace(
            CostConfig(),
            update_mpl=4,
            epoch_max_txns=4,
            epoch_ms=5.0,
            dynamic_classes=True,
            rebalance_interval=1e9,  # only the forced re-home moves classes
        )
        cmap = tpcw_conflict_map(multi_master=True)
        cluster = SimDmvCluster(
            TPCW_SCHEMAS,
            num_slaves=2,
            conflict_map=cmap,
            multi_master=True,
            num_masters=2,
            cost_config=cost,
            seed=5,
        )
        cluster.load(TpcwDataGenerator(scale, seed=5))
        cluster.warm_all_caches()
        cluster.start_browsers(24, MIXES["ordering"], scale, think_time_mean=0.3)

        def force_rehome():
            cls = cmap.class_of("customer")
            src = cmap.master_of_class(cls)
            dst = next(
                n.node_id for n in cluster._class_masters() if n.node_id != src
            )
            cluster.rehome_table_to("customer", dst)

        cluster.sim.schedule(6.0, force_rehome)
        cluster.run(until=20.0)
        snap = cluster.counters.snapshot()
        assert snap.get("sched.class_rehomes", 0) == 1
        assert snap.get("sched.rehome_aborts", 0) == 0
        cmap.validate_disjoint()

        # Ownership flipped consistently down to the lock controllers.
        for class_id in cmap.class_ids():
            owner = cmap.master_of_class(class_id)
            tables = set(cmap.tables_of_class(class_id))
            for node in cluster._class_masters():
                owned = node.engine.controller.owned
                if node.node_id == owner:
                    assert tables <= owned
                else:
                    assert not (owned & tables)

        # Quiesce, then audit: every confirmed commit everywhere, contents
        # byte-identical, every transmission accounted once.
        cluster.stop_browsers()
        cluster.run(until=cluster.sim.now() + 10.0)
        results = {r.name: r for r in check_all_invariants(cluster)}
        for name in (
            "durable-commits",
            "replica-convergence",
            "snapshot-consistency",
            "counter-conservation",
        ):
            assert results[name].ok, str(results[name])
