"""Behavioural tests for the TPC-W interactions (SQL-level semantics)."""

import pytest

from repro.common.rng import RngStream
from repro.cluster import SyncDmvCluster
from repro.tpcw import (
    INTERACTIONS,
    EmulatedBrowser,
    InteractionContext,
    MIXES,
    TPCW_SCHEMAS,
    TpcwDataGenerator,
    TpcwScale,
    run_sync,
)
from repro.tpcw.interactions import SharedSequences

SCALE = TpcwScale(num_items=50, num_customers=144)


@pytest.fixture
def cluster():
    cluster = SyncDmvCluster(TPCW_SCHEMAS, num_slaves=1)
    cluster.load(TpcwDataGenerator(SCALE, seed=9))
    return cluster


@pytest.fixture
def ctx():
    import time

    return InteractionContext(
        rng=RngStream(4, "ctx"),
        scale=SCALE,
        sequences=SharedSequences(SCALE),
        customer_id=7,
        now=time.time,
    )


class TestReadOnlySemantics:
    def test_new_products_sorted_by_pub_date(self, cluster, ctx):
        conn = cluster.connect()
        # Query directly so the subject is deterministic.
        conn.begin_read(["item", "author"])
        from repro.tpcw.interactions import NEW_PRODUCTS

        rs = conn.query(NEW_PRODUCTS, ("ARTS",)).value
        conn.commit()
        # Fetch pub dates for the returned ids and check descending order.
        dates = [
            cluster.run_read(
                "SELECT i_pub_date FROM item WHERE i_id = ?", (row[0],), tables=["item"]
            ).scalar()
            for row in rs.rows
        ]
        assert dates == sorted(dates, reverse=True)

    def test_best_sellers_ranking_descends(self, cluster, ctx):
        conn = cluster.connect()
        # Create sales concentrated on known items.
        ctx.cart_contents = {}
        run_sync(INTERACTIONS["shopping_cart"](conn, ctx))
        run_sync(INTERACTIONS["buy_confirm"](conn, ctx))
        from repro.tpcw.interactions import BEST_SELLERS, MAX_ORDER_ID

        conn.begin_read(["item", "author", "orders", "order_line"])
        newest = conn.query(MAX_ORDER_ID).value.scalar()
        subject_rows = None
        for subject in ("ARTS", "COMPUTERS", "HISTORY"):
            rs = conn.query(BEST_SELLERS, (0, subject)).value
            if len(rs.rows) >= 2:
                subject_rows = rs.rows
                break
        conn.commit()
        if subject_rows:
            totals = [row[4] for row in subject_rows]
            assert totals == sorted(totals, reverse=True)

    def test_order_display_returns_latest_order(self, cluster, ctx):
        conn = cluster.connect()
        run_sync(INTERACTIONS["shopping_cart"](conn, ctx))
        first = run_sync(INTERACTIONS["buy_confirm"](conn, ctx))
        run_sync(INTERACTIONS["shopping_cart"](conn, ctx))
        second = run_sync(INTERACTIONS["buy_confirm"](conn, ctx))
        assert second["order"] > first["order"]
        rs = cluster.run_read(
            "SELECT o_id FROM orders WHERE o_c_id = ? ORDER BY o_date DESC, o_id DESC LIMIT 1",
            (ctx.customer_id,),
            tables=["orders"],
        )
        assert rs.scalar() == second["order"]

    def test_order_inquiry_finds_password(self, cluster, ctx):
        conn = cluster.connect()
        summary = run_sync(INTERACTIONS["order_inquiry"](conn, ctx))
        assert summary["rows"] == 1


class TestUpdateSemantics:
    def test_buy_confirm_order_math(self, cluster, ctx):
        conn = cluster.connect()
        run_sync(INTERACTIONS["shopping_cart"](conn, ctx))
        summary = run_sync(INTERACTIONS["buy_confirm"](conn, ctx))
        rs = cluster.run_read(
            "SELECT o_sub_total, o_tax, o_total FROM orders WHERE o_id = ?",
            (summary["order"],),
            tables=["orders"],
        )
        subtotal, tax, total = rs.rows[0]
        assert tax == pytest.approx(round(subtotal * 0.0825, 2))
        assert total == pytest.approx(subtotal + tax)

    def test_buy_confirm_decrements_stock(self, cluster, ctx):
        conn = cluster.connect()
        run_sync(INTERACTIONS["shopping_cart"](conn, ctx))
        items = list(ctx.cart_contents.items())
        stocks_before = {
            item: cluster.run_read(
                "SELECT i_stock FROM item WHERE i_id = ?", (item,), tables=["item"]
            ).scalar()
            for item, _qty in items
        }
        run_sync(INTERACTIONS["buy_confirm"](conn, ctx))
        for item, qty in items:
            after = cluster.run_read(
                "SELECT i_stock FROM item WHERE i_id = ?", (item,), tables=["item"]
            ).scalar()
            # Stock decreases by qty, or is restocked (+21) 10 % of the time.
            assert after in (stocks_before[item] - qty, stocks_before[item] - qty + 21)

    def test_buy_confirm_empties_cart(self, cluster, ctx):
        conn = cluster.connect()
        run_sync(INTERACTIONS["shopping_cart"](conn, ctx))
        run_sync(INTERACTIONS["buy_confirm"](conn, ctx))
        assert ctx.cart_contents == {}
        rs = cluster.run_read(
            "SELECT COUNT(*) FROM shopping_cart_line WHERE scl_sc_id = ?",
            (ctx.cart_id,),
            tables=["shopping_cart_line"],
        )
        assert rs.scalar() == 0

    def test_shopping_cart_upsert_accumulates(self, cluster, ctx):
        conn = cluster.connect()
        for _ in range(4):
            run_sync(INTERACTIONS["shopping_cart"](conn, ctx))
        # Session view matches the database exactly.
        rs = cluster.run_read(
            "SELECT scl_i_id, scl_qty FROM shopping_cart_line WHERE scl_sc_id = ?",
            (ctx.cart_id,),
            tables=["shopping_cart_line"],
        )
        assert {row[0]: row[1] for row in rs.rows} == ctx.cart_contents

    def test_customer_registration_inserts_address(self, cluster, ctx):
        conn = cluster.connect()
        run_sync(INTERACTIONS["customer_registration"](conn, ctx))
        rs = cluster.run_read(
            "SELECT c_addr_id FROM customer WHERE c_id = ?", (ctx.customer_id,),
            tables=["customer"],
        )
        addr_id = rs.scalar()
        assert addr_id > SCALE.num_addresses
        rs = cluster.run_read(
            "SELECT COUNT(*) FROM address WHERE addr_id = ?", (addr_id,),
            tables=["address"],
        )
        assert rs.scalar() == 1

    def test_admin_confirm_raises_price(self, cluster, ctx):
        before = {
            i: cluster.run_read(
                "SELECT i_cost FROM item WHERE i_id = ?", (i,), tables=["item"]
            ).scalar()
            for i in range(1, SCALE.num_items + 1)
        }
        conn = cluster.connect()
        summary = run_sync(INTERACTIONS["admin_confirm"](conn, ctx))
        after = cluster.run_read(
            "SELECT i_cost FROM item WHERE i_id = ?", (summary["item"],), tables=["item"]
        ).scalar()
        assert after == pytest.approx(round(before[summary["item"]] * 1.1, 2))


class TestEmulatedBrowser:
    def make_browser(self, mix="shopping"):
        return EmulatedBrowser(
            browser_id=0,
            mix=MIXES[mix],
            scale=SCALE,
            sequences=SharedSequences(SCALE),
            rng=RngStream(5, "eb"),
        )

    def test_pick_distribution_tracks_mix(self):
        browser = self.make_browser("browsing")
        picks = [browser.pick() for _ in range(3000)]
        home_share = picks.count("home") / len(picks)
        assert 0.24 < home_share < 0.34  # browsing mix: 29 %

    def test_think_time_capped(self):
        browser = self.make_browser()
        for _ in range(500):
            assert 0.0 <= browser.think_time() <= 70.0

    def test_is_update_classification(self):
        browser = self.make_browser()
        assert browser.is_update("buy_confirm")
        assert not browser.is_update("best_sellers")

    def test_start_counts_interactions(self, cluster):
        browser = self.make_browser()
        conn = cluster.connect()
        run_sync(browser.start("home", conn))
        assert browser.interactions_run == 1
