"""Tests for the chaos layer: lossy links, retransmission, dedup,
fault plans, invariant checkers, graceful degradation, and the
satellite edge cases (total-slave loss, total-scheduler loss,
repeat-failure detection after reintegration).
"""

import pytest

from repro.chaos import (
    ANY,
    CrashNode,
    FaultPlan,
    LinkFault,
    NetworkModel,
    Partition,
    check_all_invariants,
    check_counter_conservation,
    check_durable_commits,
    default_chaos_plan,
    run_chaos_scenario,
)
from repro.cluster.simcluster import SimDmvCluster
from repro.common.rng import RngStream
from repro.core import MasterReplica, SlaveReplica
from repro.engine import Column, TableSchema
from repro.sql import SqlExecutor
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale

SCALE = TpcwScale(num_items=80, num_customers=230)

ITEM = TableSchema(
    "item",
    [
        Column("i_id", "int", nullable=False),
        Column("i_title", "str"),
        Column("i_stock", "int"),
    ],
    primary_key=("i_id",),
)


def build_tpcw_cluster(**kwargs):
    kwargs.setdefault("num_slaves", 2)
    cluster = SimDmvCluster(TPCW_SCHEMAS, **kwargs)
    cluster.load(TpcwDataGenerator(SCALE, seed=11))
    cluster.warm_all_caches()
    return cluster


def build_item_cluster(**kwargs):
    kwargs.setdefault("num_slaves", 1)
    cluster = SimDmvCluster([ITEM], seed=kwargs.pop("seed", 1), **kwargs)
    rows = [{"i_id": i, "i_title": f"t{i}", "i_stock": 10} for i in range(8)]
    for node in cluster.nodes.values():
        node.engine.bulk_load("item", rows)
    return cluster


def one_write_set(master, i=1):
    sql = SqlExecutor(master.engine)
    txn = master.begin_update()
    sql.execute(txn, "UPDATE item SET i_stock = ? WHERE i_id = ?", (i, i))
    ws = master.pre_commit(txn)
    master.finalize(txn)
    return ws


class TestNetworkModel:
    def net(self):
        return NetworkModel(RngStream(3, "net"))

    def test_links_start_clean(self):
        net = self.net()
        link = net.link("a", "b")
        assert not link.lossy
        assert not link.drops() and not link.duplicates()
        assert link.extra_delay() == 0.0

    def test_wildcard_fault_hits_existing_and_future_links(self):
        net = self.net()
        old = net.link("a", "b")
        net.set_fault(ANY, ANY, drop_p=0.5)
        new = net.link("c", "d")
        assert old.drop_p == 0.5 and new.drop_p == 0.5
        net.clear_fault()
        assert not old.lossy and not net.link("e", "f").lossy

    def test_partition_cuts_both_directions_until_healed(self):
        net = self.net()
        ab = net.link("a", "b")
        net.partition(("a",), ("b",))
        ba = net.link("b", "a")  # created while partitioned
        assert ab.drops() and ba.drops()
        assert not net.link("a", "c").partitioned
        net.heal(("a",), ("b",))
        assert not ab.partitioned and not ba.partitioned
        with pytest.raises(ValueError):
            net.heal(("a",), ("b",))


class TestDedup:
    def test_duplicate_write_set_applied_once(self):
        master = MasterReplica("m0")
        slave = SlaveReplica("s0")
        rows = [{"i_id": i, "i_title": f"t{i}", "i_stock": 10} for i in range(4)]
        for engine in (master.engine, slave.engine):
            engine.create_table(ITEM)
            engine.bulk_load("item", rows)
        ws = one_write_set(master)
        slave.receive(ws)
        assert slave.is_duplicate(ws)
        slave.receive(ws)  # idempotent: filtered, counted
        assert slave.counters.get("net.dups_ignored") == 1
        assert slave.pending_op_count() == len(ws.ops)

    def test_distinct_write_sets_not_confused(self):
        master = MasterReplica("m0")
        slave = SlaveReplica("s0")
        rows = [{"i_id": i, "i_title": f"t{i}", "i_stock": 10} for i in range(4)]
        for engine in (master.engine, slave.engine):
            engine.create_table(ITEM)
            engine.bulk_load("item", rows)
        ws1, ws2 = one_write_set(master, 1), one_write_set(master, 2)
        assert ws1.dedup_key() != ws2.dedup_key()
        slave.receive(ws1)
        assert not slave.is_duplicate(ws2)


class TestRetransmission:
    def test_lost_data_frame_retransmitted_until_delivered(self):
        cluster = build_item_cluster()
        master = cluster.nodes["m0"].master
        target = cluster.nodes["s0"]
        cluster.net.set_fault("m0", "s0", drop_p=1.0)
        ws = one_write_set(master)
        ack = cluster._channel("m0", target).send(ws)
        cluster.run(until=0.5)
        assert target.counters.get("net.drops") >= 2
        assert target.counters.get("net.retransmits") >= 1
        assert not ack.triggered
        cluster.net.clear_fault("m0", "s0")
        cluster.run(until=3.0)
        assert ack.triggered and ack.value is True
        assert target.counters.get("slave.write_sets_received") == 1
        # Per-attempt conservation: sent == received + dups + drops.
        assert check_counter_conservation(cluster).ok

    def test_lost_ack_frame_causes_duplicate_filtered_by_slave(self):
        cluster = build_item_cluster()
        master = cluster.nodes["m0"].master
        target = cluster.nodes["s0"]
        cluster.net.set_fault("s0", "m0", drop_p=1.0)  # acks vanish
        ws = one_write_set(master)
        ack = cluster._channel("m0", target).send(ws)
        cluster.run(until=0.5)
        assert target.counters.get("net.retransmits") >= 1
        assert target.counters.get("net.dups_ignored") >= 1
        cluster.net.clear_fault("s0", "m0")
        cluster.run(until=3.0)
        assert ack.triggered and ack.value is True
        # Delivered many times, applied exactly once.
        assert target.counters.get("slave.write_sets_received") == 1
        assert target.slave.pending_op_count() == len(ws.ops)
        assert check_counter_conservation(cluster).ok

    def test_exhausted_retransmit_budget_suspects_target(self):
        cluster = build_item_cluster()
        master = cluster.nodes["m0"].master
        target = cluster.nodes["s0"]
        cluster.net.set_fault("m0", "s0", drop_p=1.0)
        ack = cluster._channel("m0", target).send(one_write_set(master))
        cluster.run(until=30.0)
        assert ack.triggered and ack.value is False
        assert not target.alive
        assert cluster.counters.get("net.suspicions") >= 1
        limit = cluster.cost.config.retransmit_limit
        assert target.counters.get("net.retransmits") == limit - 1

    def test_backoff_schedule_doubles_then_caps(self):
        cluster = build_item_cluster()
        channel = cluster._channel("m0", cluster.nodes["s0"])
        cfg = cluster.cost.config
        delays = [channel._ack_timeout(a) for a in range(1, 8)]
        assert delays[0] == cfg.ack_timeout_base
        assert delays[1] == 2 * cfg.ack_timeout_base
        assert delays[-1] == cfg.retransmit_backoff_cap
        assert all(b >= a for a, b in zip(delays, delays[1:]))


class TestFaultPlan:
    def test_schedule_installs_and_describes(self):
        cluster = build_tpcw_cluster()
        plan = FaultPlan(
            seed=5,
            events=(
                LinkFault(at=1.0, drop_p=0.1, until=8.0),
                Partition(at=2.0, heal_at=4.0, group_a=("m0",), group_b=("s0",)),
                CrashNode(at=5.0, node_id="s1"),
            ),
        )
        plan.schedule(cluster)
        text = plan.describe()
        assert "drop" in text and "partition" in text and "crash" in text
        cluster.run(until=3.0)
        assert cluster.net.link("m0", "s0").partitioned
        cluster.run(until=10.0)
        assert not cluster.net.link("m0", "s0").partitioned
        assert not cluster.nodes["s1"].alive
        assert cluster.net.link("m0", "s0").drop_p == 0.0  # fault expired

    def test_random_plan_is_seed_deterministic(self):
        a = FaultPlan.random(seed=9, node_ids=("m0", "s0", "s1"), horizon=150.0)
        b = FaultPlan.random(seed=9, node_ids=("m0", "s0", "s1"), horizon=150.0)
        assert a.describe() == b.describe()
        assert all(e.at <= 150.0 for e in a.events)


class TestInvariants:
    def test_clean_run_passes_all_invariants(self):
        cluster = build_tpcw_cluster()
        cluster.start_browsers(6, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.run(until=20.0)
        cluster.stop_browsers()
        cluster.run(until=30.0)
        results = check_all_invariants(cluster)
        assert [r.name for r in results] == [
            "durable-commits",
            "replica-convergence",
            "snapshot-consistency",
            "counter-conservation",
            "buffer-bounds",
            "rejoin-convergence",
            "quorum-no-lost-commits",
            "class-ownership-unique",
        ]
        assert all(r.ok for r in results), [str(r) for r in results]

    def test_durability_checker_catches_lost_commit(self):
        cluster = build_tpcw_cluster()
        cluster.start_browsers(4, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.run(until=10.0)
        cluster.stop_browsers()
        cluster.run(until=16.0)
        assert check_durable_commits(cluster).ok
        cluster.commit_log.append(("m0", 10**9, {"item": 10**9}))
        assert not check_durable_commits(cluster).ok

    def test_conservation_checker_catches_imbalance(self):
        cluster = build_tpcw_cluster()
        cluster.start_browsers(4, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.run(until=10.0)
        assert check_counter_conservation(cluster).ok
        cluster.counters.add("net.drops")
        assert not check_counter_conservation(cluster).ok


class TestGracefulDegradation:
    def test_updates_queue_through_master_reconfiguration(self):
        cluster = build_tpcw_cluster(num_slaves=3)
        cluster.start_browsers(8, MIXES["ordering"], SCALE, think_time_mean=0.2)
        cluster.kill_node_at("m0", 10.0)
        cluster.run(until=40.0)
        # Updates arriving during the reconfiguration window parked on the
        # queue instead of failing outright, and the deadline never fired.
        assert cluster.counters.get("sched.queued_updates") > 0
        assert cluster.counters.get("sched.deadline_rejects") == 0
        assert cluster.metrics.failed == 0
        assert cluster.metrics.completed > 50


class TestEdgeCases:
    def test_master_failure_with_no_surviving_slaves_fails_clean(self):
        """Satellite: zero subscribed slaves left -> clean error, no hang."""
        cluster = build_tpcw_cluster(num_slaves=1)
        cluster.start_browsers(6, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.kill_node_at("s0", 5.0)
        cluster.kill_node_at("m0", 10.0)
        end = cluster.run(until=60.0)
        assert end <= 60.0  # terminated: browsers drained, nothing hangs
        assert cluster.metrics.failed > 0  # updates failed (cleanly)
        assert cluster.metrics.completed > 0  # pre-failure work finished

    def test_all_scheduler_agents_dead_fails_clean(self):
        """Satellite: failure of ALL scheduler agents is a clean error."""
        cluster = build_tpcw_cluster(num_slaves=2, num_schedulers=2)
        cluster.start_browsers(6, MIXES["shopping"], SCALE, think_time_mean=0.3)
        cluster.kill_scheduler_at("sched0", 5.0)
        cluster.kill_scheduler_at("sched1", 8.0)
        end = cluster.run(until=40.0)
        assert end <= 40.0
        assert cluster.metrics.failed > 0
        assert cluster.metrics.completed > 0


class TestRepeatFailureDetection:
    def test_node_killed_again_after_reintegration_is_redetected(self):
        """Satellite: the detector's missed map resets on reintegration."""
        cluster = build_tpcw_cluster(num_slaves=2)
        cluster.start_browsers(6, MIXES["shopping"], SCALE, think_time_mean=0.5)
        cluster.kill_node_at("s0", 5.0)
        cluster.run(until=15.0)
        assert "s0" not in [s.node_id for s in cluster.scheduler.active_slaves()]
        cluster.reintegrate("s0")
        cluster.run(until=30.0)
        assert "s0" in [s.node_id for s in cluster.scheduler.active_slaves()]
        assert "s0" not in cluster._handled_failures
        cluster.kill_node("s0")
        cluster.run(until=45.0)
        # Second failure of the same node is detected and handled again.
        assert "s0" not in [s.node_id for s in cluster.scheduler.active_slaves()]
        assert "s0" in cluster._handled_failures


class TestChaosScenario:
    def test_seeded_scenario_reproduces_exactly(self):
        runs = [
            run_chaos_scenario(seed=3, duration=40.0, settle=10.0, browsers=8)
            for _ in range(2)
        ]
        assert runs[0].fingerprint == runs[1].fingerprint
        assert runs[0].counters == runs[1].counters
        assert runs[0].completed == runs[1].completed
        assert runs[0].ok(), runs[0].summary()

    def test_different_seeds_diverge(self):
        a = run_chaos_scenario(seed=3, duration=30.0, settle=10.0, browsers=8)
        b = run_chaos_scenario(seed=4, duration=30.0, settle=10.0, browsers=8)
        assert a.fingerprint != b.fingerprint

    def test_default_plan_exercises_loss_retransmit_and_dedup(self):
        report = run_chaos_scenario(seed=7, duration=60.0, settle=15.0, browsers=8)
        assert report.ok(), report.summary()
        assert report.counters.get("net.drops", 0) > 0
        assert report.counters.get("net.retransmits", 0) > 0
        assert report.counters.get("net.dups_ignored", 0) > 0
        assert report.completed > 100
        assert all(inv.ok for inv in report.invariants)


class TestWriteScaleoutPlan:
    """The ``write-scaleout`` plan: flash load + forced re-homes + master kill."""

    @staticmethod
    def _run(seed=7, duration=80.0):
        from dataclasses import replace

        from repro.chaos import write_scaleout_chaos_plan
        from repro.cluster.costs import CostConfig
        from repro.tpcw import tpcw_conflict_map

        cost = replace(
            CostConfig(),
            update_mpl=4,
            epoch_max_txns=4,
            epoch_ms=5.0,
            dynamic_classes=True,
            rebalance_interval=5.0,
        )
        return run_chaos_scenario(
            seed=seed,
            plan=write_scaleout_chaos_plan(seed, duration),
            duration=duration,
            settle=20.0,
            browsers=8,
            cost_config=cost,
            multi_master=True,
            num_masters=2,
            conflict_map=tpcw_conflict_map(multi_master=True),
        )

    def test_plan_survives_rehomes_and_master_kill(self):
        report = self._run()
        assert report.ok(), report.summary()
        # Both forced handoffs ran (failover/organic moves may add more)
        # and none aborted into the failure path.
        assert report.counters.get("sched.class_rehomes", 0) >= 2
        assert report.counters.get("sched.rehome_aborts", 0) == 0
        # Epoch batching was live on the masters.
        assert report.counters.get("engine.epochs", 0) > 0
        assert (
            report.counters["engine.epoch_batched_commits"]
            >= report.counters["engine.epochs"]
        )
        # The ownership audit actually had dual controllers to inspect.
        ownership = {r.name: r for r in report.invariants}["class-ownership-unique"]
        assert ownership.ok and "controller-owned" in ownership.detail

    def test_plan_is_seed_deterministic(self):
        runs = [self._run(seed=3, duration=60.0) for _ in range(2)]
        assert runs[0].fingerprint == runs[1].fingerprint
        assert runs[0].counters == runs[1].counters
        assert runs[0].ok(), runs[0].summary()
