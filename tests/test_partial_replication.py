"""Tests for partial replication: interest sets, coverage-then-version
routing, broadcast filtering, hot/cold tiering, the interest-coverage
invariant, and the capacity-sweep bench harness.
"""

import os

import pytest

from repro.chaos import (
    check_all_invariants,
    check_interest_coverage,
    partial_chaos_plan,
    partial_interest_sets,
    run_chaos_scenario,
)
from repro.cluster.interest import InterestRegistry, InterestSet, parse_interest_spec
from repro.cluster.simcluster import SimDmvCluster
from repro.common.errors import ConfigError, NodeUnavailable
from repro.common.versions import VersionVector
from repro.core import ConflictClassMap, MasterReplica
from repro.engine import Column, TableSchema
from repro.scheduler import VersionAwareScheduler
from repro.sql import SqlExecutor
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale

SCALE = TpcwScale(num_items=80, num_customers=230)

ALPHA = TableSchema(
    "alpha",
    [Column("id", "int", nullable=False), Column("val", "int")],
    primary_key=("id",),
)
BETA = TableSchema(
    "beta",
    [Column("id", "int", nullable=False), Column("val", "int")],
    primary_key=("id",),
)


def two_table_master():
    master = MasterReplica("m0")
    rows = [{"id": i, "val": 0} for i in range(6)]
    for schema in (ALPHA, BETA):
        master.engine.create_table(schema)
        master.engine.bulk_load(schema.name, rows)
    return master


def commit_on(master, *tables):
    sql = SqlExecutor(master.engine)
    txn = master.begin_update(write_tables=list(tables))
    for table in tables:
        sql.execute(txn, f"UPDATE {table} SET val = val + 1 WHERE id = 1", ())
    ws = master.pre_commit(txn)
    master.finalize(txn)
    return ws


def build_tpcw_cluster(**kwargs):
    kwargs.setdefault("num_slaves", 2)
    cluster = SimDmvCluster(TPCW_SCHEMAS, **kwargs)
    cluster.load(TpcwDataGenerator(SCALE, seed=11))
    cluster.warm_all_caches()
    return cluster


class TestInterestSet:
    def test_full_covers_everything(self):
        full = InterestSet.full()
        assert full.is_full
        assert full.covers_table("anything")
        assert full.covers(["a", "b", "c"])

    def test_partial_covers_only_declared(self):
        iset = InterestSet.of("item", "author")
        assert not iset.is_full
        assert iset.covers_table("item")
        assert not iset.covers_table("orders")
        assert iset.covers(["item", "author"])
        assert not iset.covers(["item", "orders"])

    def test_superset_of(self):
        full = InterestSet.full()
        small = InterestSet.of("item")
        big = InterestSet.of("item", "author")
        assert full.superset_of(small) and full.superset_of(full)
        assert big.superset_of(small)
        assert not small.superset_of(big)
        # Only a full set can support a full joiner.
        assert not big.superset_of(full)

    def test_restrict_full_is_identity(self):
        master = two_table_master()
        ws = commit_on(master, "alpha", "beta")
        assert InterestSet.full().restrict(ws) is ws

    def test_restrict_covered_frame_is_identity(self):
        master = two_table_master()
        ws = commit_on(master, "alpha")
        assert InterestSet.of("alpha", "beta").restrict(ws) is ws

    def test_restrict_filters_ops_and_versions(self):
        master = two_table_master()
        ws = commit_on(master, "alpha", "beta")
        restricted = InterestSet.of("alpha").restrict(ws)
        assert restricted is not None and restricted is not ws
        assert all(op.page_id.table == "alpha" for op in restricted.ops)
        assert set(restricted.versions) == {"alpha"}
        assert restricted.versions["alpha"] == ws.versions["alpha"]
        assert (restricted.master_id, restricted.txn_id, restricted.seq) == (
            ws.master_id,
            ws.txn_id,
            ws.seq,
        )
        assert restricted.byte_size() < ws.byte_size()

    def test_restrict_drops_uninteresting_frame(self):
        master = two_table_master()
        ws = commit_on(master, "beta")
        assert InterestSet.of("alpha").restrict(ws) is None

    def test_restrict_is_idempotent_for_dedup(self):
        """Retransmitted frames restricted twice keep the same dedup key."""
        master = two_table_master()
        ws = commit_on(master, "alpha", "beta")
        iset = InterestSet.of("alpha")
        once = iset.restrict(ws)
        twice = iset.restrict(once)
        assert twice.dedup_key() == once.dedup_key()

    def test_parse_interest_spec(self):
        spec = parse_interest_spec("s0=*;s1=item,author; s2 = customer")
        assert spec["s0"] is None
        assert spec["s1"] == ("item", "author")
        assert spec["s2"] == ("customer",)
        with pytest.raises(ValueError):
            parse_interest_spec("s0")


class TestInterestRegistry:
    def test_full_declarations_keep_registry_inactive(self):
        reg = InterestRegistry()
        reg.declare("s0", InterestSet.full())
        assert not reg.partial_active
        assert reg.get("s0").is_full

    def test_partial_declaration_activates(self):
        reg = InterestRegistry()
        reg.declare("s1", InterestSet.of("item"))
        assert reg.partial_active
        assert reg.covers_table("s1", "item")
        assert not reg.covers_table("s1", "orders")
        # Undeclared nodes are full replicas.
        assert reg.covers_table("s0", "orders")

    def test_redeclaring_full_clears_entry(self):
        reg = InterestRegistry()
        reg.declare("s1", InterestSet.of("item"))
        reg.declare("s1", InterestSet.full())
        assert not reg.partial_active


def make_sched(n_slaves=3):
    ccm = ConflictClassMap.single_class(["item", "orders"])
    ccm.assign_masters(["m0"])
    sched = VersionAwareScheduler("sched0", ccm)
    for i in range(n_slaves):
        sched.add_slave(f"s{i}")
    return sched


class TestPartialRouting:
    def test_uncovering_candidates_shed_and_counted(self):
        sched = make_sched(n_slaves=3)
        sched.set_interest("s1", ["orders"])
        for _ in range(4):
            routed = sched.route_read(["item"])
            assert routed.node_id != "s1"
        assert sched.partial_counters.get("sched.coverage_rejects") == 4

    def test_reject_count_is_per_candidate(self):
        sched = make_sched(n_slaves=3)
        sched.set_interest("s1", ["orders"])
        sched.set_interest("s2", ["orders"])
        sched.route_read(["item"])
        assert sched.partial_counters.get("sched.coverage_rejects") == 2

    def test_fresh_covering_slave_wins(self):
        sched = make_sched(n_slaves=2)
        sched.set_interest("s1", ["item"])
        sched.on_master_commit("m0", {"item": 3})
        # Only s1 positively acked version 3; s0 (full interest, never
        # acked anything since partial mode began) is stale for this tag.
        sched.note_slave_versions("s1", {"item": 3})
        assert sched.route_read(["item"]).node_id == "s1"

    def test_stale_but_covering_falls_back_to_master(self):
        sched = make_sched(n_slaves=2)
        sched.set_interest("s1", ["item"])
        sched.on_master_commit("m0", {"item": 3})
        routed = sched.route_read(["item"])
        assert routed.node_id == "m0"
        assert routed.tag == VersionVector({"item": 3})
        assert sched.partial_counters.get("sched.partial_master_fallbacks") == 1

    def test_fresh_but_uncovering_never_beats_coverage(self):
        """Coverage first: a fresh slave that lacks the table is shed even
        when every covering slave is stale (master fallback instead)."""
        sched = make_sched(n_slaves=2)
        sched.set_interest("s1", ["orders"])
        sched.on_master_commit("m0", {"item": 5})
        sched.note_slave_versions("s1", {"item": 5})  # fresh, but uncovering
        routed = sched.route_read(["item"])
        assert routed.node_id == "m0"
        assert sched.partial_counters.get("sched.coverage_rejects") == 1
        assert sched.partial_counters.get("sched.partial_master_fallbacks") == 1

    def test_no_covering_replica_or_master_raises(self):
        sched = make_sched(n_slaves=1)
        sched.set_interest("s0", ["orders"])
        sched.set_interest("m0", ["orders"])  # promoted ex-partial master
        with pytest.raises(NodeUnavailable):
            sched.route_read(["item"])

    def test_clearing_all_interest_restores_legacy_routing(self):
        sched = make_sched(n_slaves=2)
        sched.set_interest("s1", ["orders"])
        assert sched.partial_routing
        sched.set_interest("s1", None)
        assert not sched.partial_routing
        assert sched._known == {}
        sched.on_master_commit("m0", {"item": 1})
        # Legacy path again: never-acked slaves are routable.
        assert sched.route_read(["item"]).node_id in ("s0", "s1")

    def test_slave_added_under_partial_mode_starts_fresh(self):
        sched = make_sched(n_slaves=1)
        sched.set_interest("s0", ["orders"])
        sched.on_master_commit("m0", {"item": 7})
        sched.add_slave("s9")  # rejoin completes migration before re-add
        assert sched.route_read(["item"]).node_id == "s9"


class TestClusterPartial:
    def run_partial_cluster(self, **kwargs):
        kwargs.setdefault(
            "interest_sets", {"s0": None, "s1": ("item", "author", "customer")}
        )
        cluster = build_tpcw_cluster(num_slaves=2, seed=5, **kwargs)
        cluster.start_browsers(8, MIXES["ordering"], SCALE, think_time_mean=0.5)
        cluster.run(until=40.0)
        return cluster

    def test_broadcast_filtering_saves_bytes(self):
        cluster = self.run_partial_cluster()
        assert cluster.metrics.completed > 100
        saved = cluster.nodes["s1"].counters.get("net.bytes_saved_partial")
        filtered = cluster.nodes["s1"].counters.get("net.write_sets_filtered")
        assert saved > 0 and filtered > 0
        # The full replica pays full freight.
        assert cluster.nodes["s0"].counters.get("net.bytes_saved_partial") == 0

    def test_partial_slave_state_is_leak_free(self):
        cluster = self.run_partial_cluster()
        slave = cluster.nodes["s1"].slave
        interest = {"item", "author", "customer"}
        for table, version in slave.received_versions.as_dict().items():
            if table not in interest:
                assert version == 0, f"leaked {table}@{version}"
        result = check_interest_coverage(cluster)
        assert result.ok, result.detail
        assert "leak-free" in result.detail

    def test_coverage_invariant_detects_injected_leak(self):
        cluster = self.run_partial_cluster()
        # Hand an unrestricted orders frame straight to the partial slave,
        # bypassing the cluster's broadcast filter.
        master = cluster.nodes["m0"].master
        sql = SqlExecutor(master.engine)
        txn = master.begin_update(write_tables=["orders"])
        sql.execute(txn, "UPDATE orders SET o_status = ? WHERE o_id = ?", ("X", 1))
        ws = master.pre_commit(txn)
        master.finalize(txn)
        assert ws is not None
        cluster.nodes["s1"].slave.receive(ws)
        result = check_interest_coverage(cluster)
        assert not result.ok
        assert "orders" in result.detail

    def test_coverage_invariant_counts_min_replication_factor(self):
        cluster = self.run_partial_cluster(min_replication_factor=2)
        assert check_interest_coverage(cluster).ok
        # Demand more covering holders than exist for orders (master +
        # full slave = 2 < 3): the invariant must flag it.
        cluster.min_replication_factor = 3
        result = check_interest_coverage(cluster)
        assert not result.ok and "orders" in result.detail

    def test_reads_fall_back_to_master_when_no_slave_covers(self):
        cluster = build_tpcw_cluster(
            num_slaves=2,
            seed=5,
            interest_sets={"s0": ("item", "author"), "s1": ("item", "author")},
        )
        cluster.start_browsers(8, MIXES["ordering"], SCALE, think_time_mean=0.5)
        cluster.run(until=40.0)
        # order_inquiry/order_display touch customer/orders: no slave
        # covers them, so those reads complete on the master.
        assert cluster.metrics.completed > 100
        assert cluster.metrics.failed == 0
        assert cluster.counters.get("sched.partial_master_fallbacks") > 0
        assert check_interest_coverage(cluster).ok

    def test_tiering_budget_spills_and_refaults(self):
        capped = self.run_partial_cluster(slave_cache_pages=8)
        assert capped.metrics.completed > 100
        evictions = sum(
            capped.nodes[s].counters.get("cache.evictions") for s in ("s0", "s1")
        )
        assert evictions > 0
        # Budgets bind per slave: resident set never exceeds the cap.
        for node_id in ("s0", "s1"):
            assert capped.nodes[node_id].cache.resident_count() <= 8
        assert all(r.ok for r in check_all_invariants(capped))

    def test_interest_set_for_unknown_node_rejected(self):
        with pytest.raises(ConfigError):
            SimDmvCluster(
                TPCW_SCHEMAS, num_slaves=1, interest_sets={"s7": ("item",)}
            )

    def test_master_must_keep_full_interest(self):
        with pytest.raises(ConfigError):
            SimDmvCluster(
                TPCW_SCHEMAS, num_slaves=1, interest_sets={"m0": ("item",)}
            )


class TestPartialChaosPlan:
    def _run(self, seed=7, duration=60.0):
        return run_chaos_scenario(
            seed=seed,
            plan=partial_chaos_plan(seed, duration),
            duration=duration,
            settle=15.0,
            browsers=8,
            interest_sets=partial_interest_sets(),
            min_replication_factor=2,
            slave_cache_pages=16,
        )

    def test_plan_survives_sole_extra_replica_crash(self):
        report = self._run()
        assert report.ok(), report.summary()
        assert report.counters.get("net.bytes_saved_partial", 0) > 0
        assert report.counters.get("sched.coverage_rejects", 0) > 0
        assert report.counters.get("cache.evictions", 0) > 0
        coverage = {r.name: r for r in report.invariants}["interest-coverage"]
        assert coverage.ok and "leak-free" in coverage.detail

    def test_plan_is_seed_deterministic(self):
        runs = [self._run(seed=3, duration=40.0) for _ in range(2)]
        assert runs[0].fingerprint == runs[1].fingerprint
        assert runs[0].counters == runs[1].counters
        assert runs[0].ok(), runs[0].summary()


@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_QUICK"),
    reason="capacity sweep is bench-sized; set REPRO_BENCH_QUICK=1",
)
class TestCapacitySweep:
    def test_acceptance_point_serves_twice_its_budget(self):
        from repro.bench.capacity import run_capacity_sweep

        sweep = run_capacity_sweep(duration=20.0, clients=16)
        assert sweep.ok
        accept = sweep.acceptance_point
        assert accept is not None
        assert accept.capacity_ratio >= 2.0
        assert accept.completed > 0
        assert accept.counters["cache.evictions"] > 0
        assert accept.counters["net.bytes_saved_partial"] > 0
