"""Cost-model regression: re-home pricing must not perturb the static path.

The historical cost model priced class->master assignment as free because
it could never change.  Dynamic sharding makes handoffs a real cost
(``CostModel.rehome_cost``); these tests pin down that (a) the new knobs
default to the legacy configuration, (b) the static-path cost formulas
return exactly the values the seed shipped with, and (c) a legacy cluster
never charges a re-home or spawns the rebalancer machinery.
"""

import pytest

from repro.cluster.costs import CostConfig, CostModel
from repro.cluster.simcluster import SimDmvCluster
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale


class TestLegacyDefaults:
    def test_scaleout_knobs_default_off(self):
        cfg = CostConfig()
        assert cfg.epoch_max_txns == 1
        assert cfg.epoch_ms == 0.0
        assert cfg.update_mpl == 0
        assert cfg.dynamic_classes is False
        assert cfg.rebalance_interval == 0.0

    def test_static_statement_cpu_unchanged(self):
        # Hard-coded legacy expectation: the exact formula the seed used.
        model = CostModel(CostConfig())
        delta = {
            "engine.rows_read": 10,
            "engine.pages_read": 4,
            "engine.pages_written": 2,
            "engine.rows_inserted": 1,
            "engine.rows_updated": 2,
            "engine.rows_deleted": 0,
            "index.rotations": 3,
            "locks.waits": 1,
            "slave.ops_applied": 5,
        }
        expected = (
            0.0003          # cpu_per_statement
            + 0.00002 * 10  # rows read
            + 0.00001 * 6   # pages read + written
            + 0.00008 * 3   # rows written
            + 0.00020 * 3   # index rotations
            + 0.00005 * 1   # lock waits
            + 0.00002 * 5   # lazy applies folded into the statement
        )
        assert model.statement_cpu(delta) == pytest.approx(expected, rel=1e-12)

    def test_static_replication_cpu_unchanged(self):
        model = CostModel(CostConfig())
        assert model.precommit_cpu(100) == pytest.approx(0.00003 * 100)
        assert model.apply_cpu(100) == pytest.approx(0.00002 * 100)
        assert model.receive_cpu(100) == pytest.approx(0.00002 * 100)


class TestRehomeCost:
    def test_formula(self):
        cfg = CostConfig(
            rehome_handoff_overhead=0.5,
            cpu_per_rehome_table=0.01,
            cpu_per_op_apply=0.001,
        )
        model = CostModel(cfg)
        assert model.rehome_cost(6, pending_ops=20) == pytest.approx(
            0.5 + 0.01 * 6 + 0.001 * 20
        )

    def test_no_pending_ops_term_by_default(self):
        model = CostModel(CostConfig())
        assert model.rehome_cost(3) == pytest.approx(0.02 + 0.0005 * 3)

    def test_scales_with_tables_and_backlog(self):
        model = CostModel(CostConfig())
        base = model.rehome_cost(1)
        assert model.rehome_cost(8) > base
        assert model.rehome_cost(1, pending_ops=1000) > base


class TestStaticClusterNeverPaysRehome:
    def test_legacy_run_has_no_scaleout_activity(self):
        scale = TpcwScale(num_items=40, num_customers=72)
        cluster = SimDmvCluster(TPCW_SCHEMAS, num_slaves=2, seed=3)
        cluster.load(TpcwDataGenerator(scale, seed=3))
        cluster.warm_all_caches()
        cluster.start_browsers(8, MIXES["ordering"], scale, think_time_mean=0.3)
        cluster.run(until=15.0)
        assert not cluster.rebalancer_active
        assert cluster._update_slots == {}           # no MPL admission
        assert cluster._epochs == {}                 # no epoch commit state
        snap = cluster.counters.snapshot()
        assert snap.get("sched.class_rehomes", 0) == 0
        assert snap.get("sched.class_splits", 0) == 0
        assert snap.get("sched.class_merges", 0) == 0
        assert snap.get("sched.rehome_aborts", 0) == 0
        for node in cluster.nodes.values():
            node_snap = node.counters.snapshot()
            assert node_snap.get("engine.epochs", 0) == 0
            assert node_snap.get("engine.epoch_batched_commits", 0) == 0
        # The conflict map never moved: assignment epoch still zero.
        assert cluster.conflict_map.assignment_epoch == 0
