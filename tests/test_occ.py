"""Unit tests for the optimistic read path (OccReadValidation).

Covers read-set bookkeeping, backward validation at pre-commit, the
early stamp check at X-acquisition, abort/retry behaviour, dirty-read
rejection, writer X-lock semantics (unchanged from 2PL), the uncontended
lock fast path, and the counter-emission gating that keeps legacy 2PL
fingerprints byte-stable.
"""

import pytest

from repro.common.errors import TransactionAborted
from repro.engine import (
    Column,
    HeapEngine,
    LockWait,
    OccReadValidation,
    TableSchema,
    TwoPhaseLocking,
    TxnMode,
    make_update_controller,
)
from repro.engine.locks import FAST_GRANT, LockManager, LockMode
from repro.sql import SqlExecutor

ITEM = TableSchema(
    "item",
    [
        Column("i_id", "int", nullable=False),
        Column("i_title", "str"),
        Column("i_stock", "int"),
    ],
    primary_key=("i_id",),
)


def make_engine(controller=None):
    engine = HeapEngine(
        controller=controller if controller is not None else OccReadValidation(),
        rows_per_page=4,
    )
    engine.create_table(ITEM)
    txn = engine.begin()
    for i in range(8):
        engine.table("item").insert_row(
            txn, {"i_id": i, "i_title": f"book-{i}", "i_stock": 10}
        )
    engine.commit(txn)
    return engine


def loc_of(engine, item_id):
    txn = engine.begin(TxnMode.READ_ONLY)
    for loc, row in engine.table("item").scan(txn):
        if row[0] == item_id:
            engine.commit(txn)
            return loc
    raise AssertionError(f"item {item_id} not found")


class TestReadSetBookkeeping:
    def test_optimistic_read_records_first_stamp(self):
        engine = make_engine()
        loc = loc_of(engine, 0)
        txn = engine.begin()
        engine.table("item").fetch(txn, loc)
        page = engine.store.get(loc[0])
        assert txn.read_stamps == {loc[0]: page.stamp}

    def test_repeat_read_keeps_first_stamp(self):
        engine = make_engine()
        loc = loc_of(engine, 0)
        txn = engine.begin()
        engine.table("item").fetch(txn, loc)
        first = dict(txn.read_stamps)
        engine.table("item").fetch(txn, loc)
        assert txn.read_stamps == first

    def test_write_intent_read_takes_x_and_skips_read_set(self):
        engine = make_engine()
        loc = loc_of(engine, 0)
        txn = engine.begin(write_intent=["item"])
        engine.table("item").fetch(txn, loc)
        assert txn.read_stamps == {}
        assert engine.controller.manager.exclusively_locked(loc[0])
        engine.commit(txn)

    def test_own_write_retires_optimistic_read(self):
        """X-acquisition pops the page so our own puts cannot self-abort."""
        engine = make_engine()
        loc = loc_of(engine, 0)
        txn = engine.begin()
        engine.table("item").fetch(txn, loc)
        engine.table("item").update_row(txn, loc, {"i_stock": 5})
        assert loc[0] not in txn.read_stamps
        engine.commit(txn)  # own writes must not fail validation

    def test_2pl_leaves_read_set_empty(self):
        engine = make_engine(controller=TwoPhaseLocking())
        loc = loc_of(engine, 0)
        txn = engine.begin()
        engine.table("item").fetch(txn, loc)
        assert txn.read_stamps == {}
        engine.commit(txn)


class TestValidation:
    def test_unchanged_read_set_commits(self):
        engine = make_engine()
        loc_r, loc_w = loc_of(engine, 0), loc_of(engine, 4)
        txn = engine.begin()
        engine.table("item").fetch(txn, loc_r)
        engine.table("item").update_row(txn, loc_w, {"i_stock": 3})
        engine.commit(txn)
        assert engine.counters.get("engine.occ_validations") >= 1
        assert engine.counters.get("engine.occ_aborts") == 0

    def test_committed_overwrite_aborts_reader_at_validation(self):
        engine = make_engine()
        loc_r, loc_w = loc_of(engine, 0), loc_of(engine, 4)
        reader = engine.begin()
        engine.table("item").fetch(reader, loc_r)
        writer = engine.begin()
        engine.table("item").update_row(writer, loc_r, {"i_stock": 1})
        engine.commit(writer)
        engine.table("item").update_row(reader, loc_w, {"i_stock": 2})
        with pytest.raises(TransactionAborted) as err:
            engine.commit(reader)
        assert err.value.reason == "occ-conflict"
        assert reader.active  # still revertible: validation vetoes pre-PREPARED
        engine.abort(reader, reason=err.value.reason)
        assert engine.counters.get("engine.occ_aborts") == 1

    def test_uncommitted_writer_holding_x_aborts_reader(self):
        """Dirty-read rejection: the writer may still roll back."""
        engine = make_engine()
        loc = loc_of(engine, 0)
        reader = engine.begin()
        engine.table("item").fetch(reader, loc)
        writer = engine.begin()
        engine.table("item").update_row(writer, loc, {"i_stock": 1})
        # Writer is still ACTIVE: its put bumped the stamp and it holds X.
        with pytest.raises(TransactionAborted) as err:
            engine.commit(reader)
        assert err.value.reason == "occ-conflict"
        engine.abort(reader)
        engine.abort(writer)

    def test_aborted_writer_still_invalidates_reader(self):
        """The undo revert bumps the stamp too — conservative but safe."""
        engine = make_engine()
        loc = loc_of(engine, 0)
        reader = engine.begin()
        engine.table("item").fetch(reader, loc)
        writer = engine.begin()
        engine.table("item").update_row(writer, loc, {"i_stock": 1})
        engine.abort(writer)
        with pytest.raises(TransactionAborted):
            engine.commit(reader)
        engine.abort(reader)

    def test_read_only_transactions_never_validate_against_writes_elsewhere(self):
        engine = make_engine()
        loc_r, loc_w = loc_of(engine, 0), loc_of(engine, 4)
        reader = engine.begin()
        engine.table("item").fetch(reader, loc_r)
        writer = engine.begin()
        engine.table("item").update_row(writer, loc_w, {"i_stock": 1})
        engine.commit(writer)
        # Disjoint pages: reader's read-set is intact, commit succeeds.
        engine.commit(reader)


class TestAbortRetry:
    def test_conflicting_write_aborts_mid_statement(self):
        """Stale read caught at X-acquisition, before any put."""
        engine = make_engine()
        loc = loc_of(engine, 0)
        t1 = engine.begin()
        engine.table("item").fetch(t1, loc)  # optimistic read
        t2 = engine.begin()
        engine.table("item").update_row(t2, loc, {"i_stock": 1})
        engine.commit(t2)
        with pytest.raises(TransactionAborted) as err:
            engine.table("item").update_row(t1, loc, {"i_stock": 2})
        assert err.value.reason == "occ-conflict"
        assert not t1.journal  # aborted before the first put
        engine.abort(t1)

    def test_retry_reaches_serial_equivalence(self):
        engine = make_engine()
        loc = loc_of(engine, 0)

        def read_modify_write(delta):
            txn = engine.begin()
            row = engine.table("item").fetch(txn, loc)
            engine.table("item").update_row(txn, loc, {"i_stock": row[2] + delta})
            engine.commit(txn)

        t1 = engine.begin()
        stale = engine.table("item").fetch(t1, loc)
        read_modify_write(+5)  # concurrent committer invalidates t1's read
        with pytest.raises(TransactionAborted):
            engine.table("item").update_row(t1, loc, {"i_stock": stale[2] - 3})
        engine.abort(t1)
        read_modify_write(-3)  # the retry re-reads and re-applies
        ro = engine.begin(TxnMode.READ_ONLY)
        assert engine.table("item").fetch(ro, loc)[2] == 10 + 5 - 3


class TestWriterLocks:
    def test_concurrent_writer_blocks_like_2pl(self):
        engine = make_engine()
        loc = loc_of(engine, 0)
        t1 = engine.begin()
        engine.table("item").update_row(t1, loc, {"i_stock": 1})
        t2 = engine.begin()
        with pytest.raises(LockWait):
            engine.table("item").update_row(t2, loc, {"i_stock": 2})
        engine.abort(t2)
        engine.commit(t1)


class TestLockFastPath:
    def test_uncontended_grant_returns_singleton(self):
        manager = LockManager()
        request = manager.acquire(1, "page-a", LockMode.EXCLUSIVE)
        assert request is FAST_GRANT
        assert request.granted
        assert manager.fast_grants == 1

    def test_reentrant_grant_does_not_count_fast(self):
        manager = LockManager()
        manager.acquire(1, "page-a", LockMode.EXCLUSIVE)
        again = manager.acquire(1, "page-a", LockMode.SHARED)
        assert again is FAST_GRANT
        assert manager.fast_grants == 1

    def test_contended_path_allocates_real_request(self):
        manager = LockManager()
        manager.acquire(1, "page-a", LockMode.EXCLUSIVE)
        request = manager.acquire(2, "page-a", LockMode.SHARED)
        assert request is not FAST_GRANT
        assert not request.granted
        assert manager.fast_grants == 1

    def test_fast_grants_counter_emitted_under_occ(self):
        engine = make_engine()
        loc = loc_of(engine, 0)
        txn = engine.begin()
        engine.table("item").update_row(txn, loc, {"i_stock": 1})
        engine.commit(txn)
        assert engine.counters.get("engine.lock_fast_grants") >= 1


class TestCounterGating:
    """Legacy 2PL runs must emit no OCC-era counters (fingerprint safety)."""

    def run_workload(self, controller):
        engine = make_engine(controller=controller)
        sql = SqlExecutor(engine)
        for i in range(3):
            txn = engine.begin(write_intent=["item"])
            sql.execute(txn, "UPDATE item SET i_stock = i_stock - 1 WHERE i_id = ?", (i,))
            engine.commit(txn)
            txn = engine.begin(TxnMode.READ_ONLY)
            sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = ?", (i,))
            engine.commit(txn)
        return engine, sql

    def test_2pl_emits_no_occ_counters(self):
        engine, sql = self.run_workload(TwoPhaseLocking())
        occ_keys = [k for k in engine.counters.snapshot() if k.startswith("engine.occ")]
        assert occ_keys == []
        assert engine.counters.get("engine.lock_fast_grants") == 0
        assert engine.counters.get("engine.plan_cache_hits") == 0
        # The plain attributes still count (micro-benchmarks read them).
        assert sql.plan_cache_hits > 0

    def test_occ_emits_hotpath_counters(self):
        engine, sql = self.run_workload(OccReadValidation())
        assert engine.counters.get("engine.occ_validations") >= 3
        assert engine.counters.get("engine.lock_fast_grants") >= 1
        assert engine.counters.get("engine.plan_cache_hits") > 0
        assert sql.plan_cache_hits == engine.counters.get("engine.plan_cache_hits")


class TestFactory:
    def test_factory_personalities(self):
        assert isinstance(make_update_controller("occ"), OccReadValidation)
        assert isinstance(make_update_controller("2pl"), TwoPhaseLocking)
        assert make_update_controller().emits_occ_counters
        assert not make_update_controller("2pl").emits_occ_counters

    def test_factory_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            make_update_controller("3pl")
