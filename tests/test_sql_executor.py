"""Integration tests: SQL execution over the heap engine."""

import pytest

from repro.common.errors import SqlError
from repro.engine import Column, HeapEngine, IndexDef, TableSchema, TxnMode
from repro.sql import SqlExecutor

ITEM = TableSchema(
    "item",
    [
        Column("i_id", "int", nullable=False),
        Column("i_title", "str"),
        Column("i_a_id", "int"),
        Column("i_subject", "str"),
        Column("i_cost", "float"),
        Column("i_pub_date", "float"),
        Column("i_stock", "int"),
    ],
    primary_key=("i_id",),
    indexes=[
        IndexDef("ix_item_subject", ("i_subject", "i_pub_date")),
        IndexDef("ix_item_title", ("i_title",)),
    ],
)
AUTHOR = TableSchema(
    "author",
    [
        Column("a_id", "int", nullable=False),
        Column("a_fname", "str"),
        Column("a_lname", "str"),
    ],
    primary_key=("a_id",),
    indexes=[IndexDef("ix_author_lname", ("a_lname",))],
)
ORDER_LINE = TableSchema(
    "order_line",
    [
        Column("ol_id", "int", nullable=False),
        Column("ol_o_id", "int", nullable=False),
        Column("ol_i_id", "int"),
        Column("ol_qty", "int"),
    ],
    primary_key=("ol_o_id", "ol_id"),
    indexes=[IndexDef("ix_ol_o_id", ("ol_o_id",))],
)

SUBJECTS = ["ARTS", "BIOGRAPHIES", "COMPUTERS"]


@pytest.fixture
def db():
    engine = HeapEngine(rows_per_page=8)
    for schema in (ITEM, AUTHOR, ORDER_LINE):
        engine.create_table(schema)
    sql = SqlExecutor(engine)
    txn = engine.begin()
    for a in range(5):
        sql.execute(
            txn,
            "INSERT INTO author (a_id, a_fname, a_lname) VALUES (?, ?, ?)",
            (a, f"First{a}", f"Last{a}"),
        )
    for i in range(30):
        sql.execute(
            txn,
            "INSERT INTO item (i_id, i_title, i_a_id, i_subject, i_cost, i_pub_date, i_stock) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (i, f"Title {i:03d}", i % 5, SUBJECTS[i % 3], float(i), float(1000 - i), 10),
        )
    ol = 0
    for order in range(10):
        for line in range(3):
            sql.execute(
                txn,
                "INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty) VALUES (?, ?, ?, ?)",
                (line, order, (order * 3 + line) % 30, 1 + order % 4),
            )
            ol += 1
    engine.commit(txn)
    return engine, sql


def ro(engine):
    return engine.begin(TxnMode.READ_ONLY)


class TestSelect:
    def test_pk_lookup(self, db):
        engine, sql = db
        rs = sql.execute(ro(engine), "SELECT i_title FROM item WHERE i_id = ?", (7,))
        assert rs.rows == [("Title 007",)]
        assert rs.columns == ["i_title"]

    def test_star(self, db):
        engine, sql = db
        rs = sql.execute(ro(engine), "SELECT * FROM author WHERE a_id = 1")
        assert rs.rows == [(1, "First1", "Last1")]
        assert rs.columns == ["a_id", "a_fname", "a_lname"]

    def test_index_equality(self, db):
        engine, sql = db
        rs = sql.execute(ro(engine), "SELECT i_id FROM item WHERE i_subject = 'ARTS'")
        assert len(rs.rows) == 10

    def test_full_scan_filter(self, db):
        engine, sql = db
        rs = sql.execute(ro(engine), "SELECT i_id FROM item WHERE i_cost > 25")
        assert sorted(r[0] for r in rs.rows) == [26, 27, 28, 29]

    def test_join_via_pk(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine),
            "SELECT i_title, a_fname, a_lname FROM item, author "
            "WHERE item.i_a_id = author.a_id AND i_id = ?",
            (12,),
        )
        assert rs.rows == [("Title 012", "First2", "Last2")]

    def test_join_order_independent_of_from_order(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine),
            "SELECT i_title FROM author, item "
            "WHERE i_a_id = a_id AND a_lname = 'Last3' ORDER BY i_title LIMIT 2",
        )
        assert rs.rows == [("Title 003",), ("Title 008",)]

    def test_order_by_desc_limit(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine), "SELECT i_id FROM item ORDER BY i_cost DESC LIMIT 3"
        )
        assert [r[0] for r in rs.rows] == [29, 28, 27]

    def test_order_by_multiple_keys(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine),
            "SELECT i_subject, i_id FROM item ORDER BY i_subject ASC, i_id DESC LIMIT 2",
        )
        assert rs.rows == [("ARTS", 27), ("ARTS", 24)]

    def test_limit_offset(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine), "SELECT i_id FROM item ORDER BY i_id LIMIT 5 OFFSET 10"
        )
        assert [r[0] for r in rs.rows] == [10, 11, 12, 13, 14]

    def test_like_prefix(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine), "SELECT i_id FROM item WHERE i_title LIKE ?", ("Title 00%",)
        )
        assert len(rs.rows) == 10

    def test_like_contains(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine), "SELECT i_id FROM item WHERE i_title LIKE '%9'"
        )
        assert sorted(r[0] for r in rs.rows) == [9, 19, 29]

    def test_in_list(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine), "SELECT i_id FROM item WHERE i_id IN (1, 2, ?)", (25,)
        )
        assert sorted(r[0] for r in rs.rows) == [1, 2, 25]

    def test_between(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine), "SELECT i_id FROM item WHERE i_id BETWEEN 5 AND 8"
        )
        assert sorted(r[0] for r in rs.rows) == [5, 6, 7, 8]

    def test_range_on_index_prefix(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine),
            "SELECT i_id FROM item WHERE i_subject = 'ARTS' AND i_pub_date >= ?",
            (985.0,),
        )
        # ARTS items are i_id multiples of 3; pub_date = 1000 - i.
        assert sorted(r[0] for r in rs.rows) == [0, 3, 6, 9, 12, 15]

    def test_arithmetic_projection(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine), "SELECT i_cost * 2 + 1 FROM item WHERE i_id = 10"
        )
        assert rs.rows == [(21.0,)]

    def test_distinct(self, db):
        engine, sql = db
        rs = sql.execute(ro(engine), "SELECT DISTINCT i_subject FROM item")
        assert sorted(r[0] for r in rs.rows) == sorted(SUBJECTS)

    def test_is_null(self, db):
        engine, sql = db
        txn = engine.begin()
        sql.execute(
            txn,
            "INSERT INTO item (i_id, i_title, i_a_id, i_subject, i_cost, i_pub_date, i_stock) "
            "VALUES (99, NULL, 0, 'ARTS', 1.0, 1.0, 1)",
        )
        engine.commit(txn)
        rs = sql.execute(ro(engine), "SELECT i_id FROM item WHERE i_title IS NULL")
        assert rs.rows == [(99,)]

    def test_scalar_helper(self, db):
        engine, sql = db
        rs = sql.execute(ro(engine), "SELECT COUNT(*) FROM item")
        assert rs.scalar() == 30

    def test_dicts_helper(self, db):
        engine, sql = db
        rs = sql.execute(ro(engine), "SELECT a_id, a_lname FROM author WHERE a_id = 2")
        assert rs.dicts() == [{"a_id": 2, "a_lname": "Last2"}]


class TestAggregates:
    def test_count_star(self, db):
        engine, sql = db
        assert sql.execute(ro(engine), "SELECT COUNT(*) FROM order_line").scalar() == 30

    def test_sum_group_by_order_by_alias(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine),
            "SELECT ol_i_id, SUM(ol_qty) AS total FROM order_line "
            "GROUP BY ol_i_id ORDER BY total DESC, ol_i_id LIMIT 3",
        )
        assert len(rs.rows) == 3
        totals = [r[1] for r in rs.rows]
        assert totals == sorted(totals, reverse=True)

    def test_avg_min_max(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine),
            "SELECT AVG(i_cost), MIN(i_cost), MAX(i_cost) FROM item",
        )
        avg, lo, hi = rs.rows[0]
        assert (avg, lo, hi) == (14.5, 0.0, 29.0)

    def test_group_join_aggregate(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine),
            "SELECT i_id, i_title, SUM(ol_qty) AS val FROM item, order_line "
            "WHERE ol_i_id = i_id AND ol_o_id >= ? GROUP BY i_id, i_title "
            "ORDER BY val DESC LIMIT 5",
            (0,),
        )
        assert len(rs.rows) == 5

    def test_aggregate_empty_input(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine), "SELECT COUNT(*), SUM(i_cost) FROM item WHERE i_id = -5"
        )
        assert rs.rows == [(0, None)]

    def test_count_distinct(self, db):
        engine, sql = db
        assert (
            sql.execute(ro(engine), "SELECT COUNT(DISTINCT i_subject) FROM item").scalar()
            == 3
        )


class TestDml:
    def test_update_with_arithmetic(self, db):
        engine, sql = db
        txn = engine.begin()
        rs = sql.execute(
            txn, "UPDATE item SET i_stock = i_stock - ? WHERE i_id = ?", (4, 3)
        )
        assert rs.rowcount == 1
        engine.commit(txn)
        assert sql.execute(ro(engine), "SELECT i_stock FROM item WHERE i_id = 3").scalar() == 6

    def test_update_multiple_rows(self, db):
        engine, sql = db
        txn = engine.begin()
        rs = sql.execute(txn, "UPDATE item SET i_stock = 0 WHERE i_subject = 'ARTS'")
        assert rs.rowcount == 10
        engine.commit(txn)

    def test_delete(self, db):
        engine, sql = db
        txn = engine.begin()
        rs = sql.execute(txn, "DELETE FROM order_line WHERE ol_o_id = 0")
        assert rs.rowcount == 3
        engine.commit(txn)
        assert sql.execute(ro(engine), "SELECT COUNT(*) FROM order_line").scalar() == 27

    def test_insert_returns_rowcount(self, db):
        engine, sql = db
        txn = engine.begin()
        rs = sql.execute(
            txn,
            "INSERT INTO author (a_id, a_fname, a_lname) VALUES (10, 'A', 'B'), (11, 'C', 'D')",
        )
        assert rs.rowcount == 2
        engine.commit(txn)

    def test_update_index_maintained(self, db):
        engine, sql = db
        txn = engine.begin()
        sql.execute(txn, "UPDATE item SET i_subject = 'HISTORY' WHERE i_id = 0")
        engine.commit(txn)
        rs = sql.execute(ro(engine), "SELECT i_id FROM item WHERE i_subject = 'HISTORY'")
        assert rs.rows == [(0,)]
        rs = sql.execute(ro(engine), "SELECT COUNT(*) FROM item WHERE i_subject = 'ARTS'")
        assert rs.scalar() == 9


class TestErrorsAndMisc:
    def test_unknown_table(self, db):
        engine, sql = db
        from repro.common.errors import SchemaError

        with pytest.raises(SchemaError):
            sql.execute(ro(engine), "SELECT x FROM missing")

    def test_unknown_column(self, db):
        engine, sql = db
        with pytest.raises(SqlError):
            sql.execute(ro(engine), "SELECT nope FROM item")

    def test_ambiguous_column(self, db):
        engine, sql = db
        # Self-join style ambiguity via two tables sharing no columns is
        # impossible here, so craft one with duplicate binding names.
        with pytest.raises(SqlError):
            sql.execute(ro(engine), "SELECT i_id FROM item, item")

    def test_missing_param(self, db):
        engine, sql = db
        with pytest.raises(SqlError):
            sql.execute(ro(engine), "SELECT i_id FROM item WHERE i_id = ?")

    def test_now_function(self, db):
        engine, _ = db
        sql = SqlExecutor(engine, now=lambda: 123.5)
        assert sql.execute(ro(engine), "SELECT NOW() FROM author WHERE a_id = 0").scalar() == 123.5

    def test_plan_cache_reused(self, db):
        engine, sql = db
        sql.execute(ro(engine), "SELECT i_id FROM item WHERE i_id = ?", (1,))
        cached = len(sql._plans)
        sql.execute(ro(engine), "SELECT i_id FROM item WHERE i_id = ?", (2,))
        assert len(sql._plans) == cached

    def test_invalidate_plans(self, db):
        engine, sql = db
        sql.execute(ro(engine), "SELECT i_id FROM item WHERE i_id = 1")
        sql.invalidate_plans()
        assert not sql._plans

    def test_division_by_zero_yields_null(self, db):
        engine, sql = db
        rs = sql.execute(ro(engine), "SELECT i_cost / 0 FROM item WHERE i_id = 1")
        assert rs.scalar() is None


class TestHaving:
    def test_having_filters_groups(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine),
            "SELECT ol_i_id, SUM(ol_qty) AS total FROM order_line "
            "GROUP BY ol_i_id HAVING SUM(ol_qty) > 3 ORDER BY total DESC",
        )
        assert rs.rows
        assert all(r[1] > 3 for r in rs.rows)

    def test_having_with_count(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine),
            "SELECT i_subject, COUNT(*) AS n FROM item GROUP BY i_subject "
            "HAVING COUNT(*) >= 10",
        )
        assert all(r[1] >= 10 for r in rs.rows)
        assert len(rs.rows) == 3  # all three subjects have 10 items

    def test_having_can_reference_group_column(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine),
            "SELECT i_subject, COUNT(*) FROM item GROUP BY i_subject "
            "HAVING i_subject = 'ARTS'",
        )
        assert len(rs.rows) == 1
        assert rs.rows[0][0] == "ARTS"

    def test_having_excluding_everything(self, db):
        engine, sql = db
        rs = sql.execute(
            ro(engine),
            "SELECT i_subject, COUNT(*) FROM item GROUP BY i_subject "
            "HAVING COUNT(*) > 1000",
        )
        assert rs.rows == []

    def test_having_parse_requires_group_by(self, db):
        engine, sql = db
        # HAVING without GROUP BY is not part of our subset: the keyword
        # is only consumed after GROUP BY, so it fails to parse.
        with pytest.raises(SqlError):
            sql.execute(ro(engine), "SELECT COUNT(*) FROM item HAVING COUNT(*) > 1")
