"""Unit tests for the crash-consistent durability layer.

Covers the content-carrying WAL (checksums, LSNs, fsync boundaries, the
crash loss model with torn writes / fsync lies / bit flips, torn-tail
truncation, the truncate-vs-synced clamp, checkpoint-coordinated
truncation), the hardened :class:`StableStore` (image checksums,
previous-generation fallback, ``.prev`` file fallback), the slave-side
WAL-redo receive (:meth:`restore_write_set`), and the full
restart-from-own-disk path (:func:`recover_from_local_disk`) including
the ghost filter.
"""

import dataclasses

import pytest

from repro.common.counters import Counters
from repro.common.errors import CorruptCheckpoint, SchemaError
from repro.common.ids import PageId
from repro.common.versions import VersionVector
from repro.core import MasterReplica, SlaveReplica
from repro.disk.wal import WalRecord, WriteAheadLog
from repro.engine import Column, TableSchema
from repro.failover import recover_from_local_disk
from repro.sql import SqlExecutor
from repro.storage.checkpoint import StableStore
from repro.storage.page import Page, PageStore

ITEM = TableSchema(
    "item",
    [
        Column("i_id", "int", nullable=False),
        Column("i_title", "str"),
        Column("i_stock", "int"),
    ],
    primary_key=("i_id",),
)


def build_pair():
    master = MasterReplica("m0")
    slave = SlaveReplica("s0")
    for replica in (master, slave):
        replica.engine.create_table(ITEM)
        replica.engine.bulk_load(
            "item", [{"i_id": i, "i_title": f"b{i}", "i_stock": 10} for i in range(20)]
        )
    return master, slave


def commit_update(master, stock, item_id=1):
    txn = master.begin_update()
    SqlExecutor(master.engine).execute(
        txn, "UPDATE item SET i_stock = ? WHERE i_id = ?", (stock, item_id)
    )
    ws = master.pre_commit(txn)
    master.finalize(txn)
    return ws


def log_write_set(wal, ws):
    return wal.append_commit(
        ws.txn_id, ws.ops, versions=ws.versions, master_id=ws.master_id, seq=ws.seq
    )


class TestWalRecords:
    def test_append_seals_checksum_and_lsn(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        records = [log_write_set(wal, commit_update(master, i)) for i in range(1, 4)]
        assert [r.lsn for r in records] == [0, 1, 2]
        assert all(r.checksum != 0 and r.verify() for r in records)
        assert wal.base_lsn == 0
        assert wal.counters.get("wal.records") == 3

    def test_tampered_record_fails_verify(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        record = log_write_set(wal, commit_update(master, 5))
        tampered = dataclasses.replace(record, txn_id=record.txn_id + 1)
        assert not tampered.verify()

    def test_legacy_unsealed_record_always_verifies(self):
        # The disk tier's size-only records predate content checksums.
        assert WalRecord(txn_id=1, nbytes=48).verify()

    def test_dedup_key_matches_write_set(self):
        master, _slave = build_pair()
        ws = commit_update(master, 5)
        record = log_write_set(WriteAheadLog(), ws)
        assert record.dedup_key() == ws.dedup_key()


class TestFsyncBoundaries:
    def test_fsync_advances_both_boundaries(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        log_write_set(wal, commit_update(master, 1))
        assert wal.synced_through == 0 and wal.durable_through == 0
        assert wal.fsync() == 1
        assert wal.synced_through == 1 and wal.durable_through == 1

    def test_fsync_lie_advances_only_believed(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        log_write_set(wal, commit_update(master, 1))
        wal.set_fsync_lies(True)
        wal.fsync()
        assert wal.synced_through == 1
        assert wal.durable_through == 0
        wal.set_fsync_lies(False)
        log_write_set(wal, commit_update(master, 2))
        wal.fsync()
        assert wal.durable_through == 2


class TestCrashModel:
    def test_crash_loses_unsynced_tail(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        log_write_set(wal, commit_update(master, 1))
        wal.fsync()
        lost_record = log_write_set(wal, commit_update(master, 2))
        lost = wal.crash()
        assert lost == [lost_record]
        assert len(wal) == 1
        records, truncated = wal.recover_records()
        assert truncated == 0 and len(records) == 1

    def test_fsync_lie_widens_the_loss(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        log_write_set(wal, commit_update(master, 1))
        wal.fsync()
        wal.set_fsync_lies(True)
        log_write_set(wal, commit_update(master, 2))
        log_write_set(wal, commit_update(master, 3))
        wal.fsync()  # acked, not persisted
        assert wal.synced_through == 3
        lost = wal.crash()
        assert len(lost) == 2  # everything past the honest fsync
        assert len(wal) == 1

    def test_torn_write_leaves_checksum_failing_tail(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        log_write_set(wal, commit_update(master, 1))
        wal.fsync()
        log_write_set(wal, commit_update(master, 2))
        log_write_set(wal, commit_update(master, 3))
        wal.arm_torn_write()
        lost = wal.crash()
        assert len(lost) == 2
        assert len(wal) == 2  # durable record + torn survivor
        records, truncated = wal.recover_records()
        assert truncated == 1  # torn tail cut at the bad checksum
        assert len(records) == 1
        assert wal.counters.get("wal.torn_tail_records") == 1

    def test_torn_write_on_fully_synced_log_tears_last_record(self):
        # The crash interrupted the final sector write: even a log with no
        # un-fsynced tail loses (exactly) its last record to the tear.
        master, _slave = build_pair()
        wal = WriteAheadLog()
        log_write_set(wal, commit_update(master, 1))
        log_write_set(wal, commit_update(master, 2))
        wal.fsync()
        wal.arm_torn_write()
        assert wal.crash() == []  # nothing was un-durable
        records, truncated = wal.recover_records()
        assert truncated == 1
        assert [r.lsn for r in records] == [0]

    def test_bitflip_truncates_everything_after_it(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        for i in range(1, 5):
            log_write_set(wal, commit_update(master, i))
        wal.fsync()
        assert wal.corrupt_record(1) == 1
        records, truncated = wal.recover_records()
        assert [r.lsn for r in records] == [0]
        assert truncated == 3  # redo cannot skip holes
        # A second scan is clean: the bad suffix is gone.
        assert wal.recover_records() == ([records[0]], 0)


class TestTruncateClamp:
    """Satellite: truncation can never outrun the fsynced/durable prefix."""

    def test_truncate_clamps_to_synced_boundary(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        for i in range(1, 4):
            log_write_set(wal, commit_update(master, i))
        wal.fsync()
        log_write_set(wal, commit_update(master, 9))  # un-fsynced
        assert wal.truncate(10) == 3  # clamped to synced_through, not len
        assert len(wal) == 1
        assert wal.synced_through == 0 and wal.durable_through == 0
        assert wal.fsync() == 1  # accounting never went negative

    def test_truncate_clamps_to_durable_boundary_under_lies(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        log_write_set(wal, commit_update(master, 1))
        wal.set_fsync_lies(True)
        wal.fsync()
        assert wal.truncate(1) == 0  # believed synced, not durable: kept
        assert len(wal) == 1

    def test_truncate_negative_and_zero_are_noops(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        log_write_set(wal, commit_update(master, 1))
        wal.fsync()
        assert wal.truncate(-5) == 0
        assert wal.truncate(0) == 0
        assert len(wal) == 1

    def test_truncate_preserves_byte_accounting(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        records = [log_write_set(wal, commit_update(master, i)) for i in range(1, 4)]
        wal.fsync()
        wal.truncate(2)
        assert wal.total_bytes == records[2].nbytes
        assert wal.base_lsn == 2


class TestCheckpointCoordinatedTruncation:
    def test_covered_prefix_dropped_uncovered_suffix_kept(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        for i in range(1, 5):
            log_write_set(wal, commit_update(master, i))  # item v1..v4
        wal.fsync()
        assert wal.truncate_for_checkpoint({"item": 2}) == 2
        assert [dict(r.versions)["item"] for r in wal.records_since(0)] == [3, 4]

    def test_versionless_record_blocks_truncation(self):
        wal = WriteAheadLog()
        wal._records.append(WalRecord(txn_id=1, nbytes=48))  # size-only record
        wal.synced_through = wal._durable_through = 1
        assert wal.truncate_for_checkpoint({"item": 99}) == 0

    def test_unsynced_records_never_truncated(self):
        master, _slave = build_pair()
        wal = WriteAheadLog()
        log_write_set(wal, commit_update(master, 1))
        assert wal.truncate_for_checkpoint({"item": 99}) == 0


def make_page(table="item", number=0, version=3, rows=((0, ("a", 1)),)):
    page = Page(PageId(table, number), capacity=8, version=version)
    for slot, row in rows:
        page.put(slot, row)
    return page


class TestStableStoreFallback:
    def test_flush_seals_checksum_and_retains_previous(self):
        stable = StableStore()
        stable.flush_page(make_page(version=1))
        stable.flush_page(make_page(version=2))
        image = stable.load(PageId("item", 0))
        assert image.version == 2 and image.verify()

    def test_corrupt_current_falls_back_to_previous_generation(self):
        stable = StableStore()
        stable.flush_page(make_page(version=1, rows=((0, ("old", 1)),)))
        stable.flush_page(make_page(version=2, rows=((0, ("new", 2)),)))
        assert stable.corrupt_page(PageId("item", 0))
        store = PageStore()
        restored, _nbytes, corrupt = stable.recover_into(store)
        assert (restored, corrupt) == (1, 1)
        assert store.get(PageId("item", 0)).version == 1  # previous generation
        assert stable.counters.get("checkpoint.corrupt_pages") == 1
        assert stable.counters.get("checkpoint.fallback_pages") == 1

    def test_both_generations_bad_skips_page(self):
        stable = StableStore()
        stable.flush_page(make_page(version=1))
        stable.corrupt_page(PageId("item", 0))
        store = PageStore()
        restored, _nbytes, corrupt = stable.recover_into(store)
        assert (restored, corrupt) == (0, 1)
        assert not store.contains(PageId("item", 0))  # migration re-fetches

    def test_restore_into_is_unvalidated_legacy_path(self):
        stable = StableStore()
        stable.flush_page(make_page(version=4))
        store = PageStore()
        assert stable.restore_into(store) == 1
        assert store.get(PageId("item", 0)).version == 4


class TestFilePersistenceFallback:
    def test_prev_generation_fallback_on_corrupt_file(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        stable = StableStore()
        stable.flush_page(make_page(version=1))
        stable.save_to(path)  # generation 1
        stable.flush_page(make_page(version=2))
        stable.save_to(path)  # generation 2, gen 1 now at .prev
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"table": "item"}\n')  # corrupt the current file
        loaded = StableStore.load_from(path)
        assert loaded.load(PageId("item", 0)).version == 1
        assert loaded.counters.get("checkpoint.fallback_loads") == 1

    def test_no_prev_generation_raises_typed_error(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"table": "item"}\n')
        with pytest.raises(CorruptCheckpoint):
            StableStore.load_from(path)

    def test_corrupt_checkpoint_is_a_schema_error(self):
        # Pre-existing callers catch SchemaError; the typed subclass must
        # keep flowing through those handlers.
        assert issubclass(CorruptCheckpoint, SchemaError)

    def test_line_crc_detects_value_tampering(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        stable = StableStore()
        stable.flush_page(make_page(version=7))
        stable.save_to(path)
        with open(path, "r", encoding="utf-8") as fh:
            content = fh.read()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content.replace('"version": 7', '"version": 8'))
        with pytest.raises(CorruptCheckpoint):
            StableStore.load_from(path)


class TestRestoreWriteSet:
    def test_covered_op_skipped_per_op_not_per_write_set(self):
        master, slave = build_pair()
        ws1 = commit_update(master, 5, item_id=1)
        ws2 = commit_update(master, 6, item_id=1)
        # The checkpoint image already covers ws1's page at v1.
        page = slave.engine.store.get_or_allocate(ws1.ops[0].page_id)
        page.version = 1
        slave.catching_up = True
        assert slave.restore_write_set(ws1) == 0  # fully covered
        assert slave.restore_write_set(ws2) == 1  # v2 > v1: buffered
        assert slave.pending_ops == 1
        assert slave.received_versions.get("item") == 2

    def test_moves_no_replication_counters(self):
        master, slave = build_pair()
        ws = commit_update(master, 5)
        before = slave.counters.snapshot()
        slave.catching_up = True
        slave.restore_write_set(ws)
        assert slave.counters.snapshot() == before

    def test_records_dedup_identity(self):
        master, slave = build_pair()
        ws = commit_update(master, 5)
        slave.catching_up = True
        slave.restore_write_set(ws)
        assert ws.dedup_key() in slave._seen_write_sets
        # The wire retransmit of the same identity is now filtered.
        slave.receive(ws)
        assert slave.counters.get("net.dups_ignored") == 1


class TestRecoverFromLocalDisk:
    def _crashed_state(self, commits=4, checkpoint_after=2):
        """Master commits N times; node checkpointed after the first K."""
        master, slave = build_pair()
        wal = WriteAheadLog(Counters())
        stable = StableStore()
        write_sets = []
        for i in range(1, commits + 1):
            ws = commit_update(master, i * 10, item_id=1)
            write_sets.append(ws)
            slave.receive(ws)
            log_write_set(wal, ws)
            wal.fsync()
            if i == checkpoint_after:
                page = slave.materialize_fully(ws.ops[0].page_id)
                stable.flush_page(page)
        return master, slave, wal, stable, write_sets

    def test_checkpoint_plus_wal_suffix_rebuilds_state(self):
        _master, slave, wal, stable, write_sets = self._crashed_state()
        recovery = recover_from_local_disk(slave, stable, wal)
        assert recovery.pages_restored == 1
        assert recovery.records_scanned == 4
        assert recovery.records_replayed == 4
        # Ops of the two checkpoint-covered records skip; two redo.
        assert recovery.ops_buffered == 2
        assert slave.received_versions.get("item") == 4
        slave.finish_catchup()
        page = slave.materialize_fully(write_sets[-1].ops[0].page_id)
        assert page.version == 4
        assert slave.counters.get("wal.replayed") == 4

    def test_torn_tail_is_truncated_before_redo(self):
        _master, slave, wal, stable, _write_sets = self._crashed_state()
        wal._durable_through = 3  # crash before the last record persisted
        wal.arm_torn_write()
        wal.crash()
        recovery = recover_from_local_disk(slave, stable, wal)
        assert recovery.torn_tail_records == 1
        assert recovery.records_replayed == 3
        assert slave.received_versions.get("item") == 3

    def test_ghost_filter_skips_unconfirmed_records(self):
        _master, slave, wal, stable, write_sets = self._crashed_state()
        confirmed = {(ws.master_id, ws.txn_id) for ws in write_sets[:3]}
        recovery = recover_from_local_disk(
            slave,
            stable,
            wal,
            is_confirmed=lambda r: (r.master_id, r.txn_id) in confirmed,
        )
        assert recovery.ghost_records_skipped == 1
        assert recovery.records_replayed == 3
        assert slave.received_versions.get("item") == 3
        assert slave.counters.get("wal.ghost_records_skipped") == 1
        # The ghost's identity was not recorded: the *real* commit that
        # later reuses those versions must not be treated as a duplicate.
        assert write_sets[-1].dedup_key() not in slave._seen_write_sets

    def test_catching_up_discard_above_skips_index_reverts(self):
        _master, slave, wal, stable, _write_sets = self._crashed_state()
        recover_from_local_disk(slave, stable, wal)
        assert slave.catching_up
        # Structural ghost sweep during restart: must not touch indexes
        # (none were maintained during catch-up redo) yet still drop ops.
        dropped = slave.discard_above(VersionVector({"item": 3}))
        assert dropped == 1
        assert slave.received_versions.get("item") == 3
