"""Epoch-batched version-vector commit: batching, liveness, admission.

``epoch_max_txns > 1`` lets N update commits on a master share one
version-vector advance, one WAL force and one broadcast/ack barrier.
These tests pin the observable contract:

* under load, epochs actually batch (``engine.epoch_batched_commits``
  strictly exceeds ``engine.epochs``) and every batched commit is still
  durable, converged and conserved;
* under trickle load, the ``epoch_ms`` timer seals part-filled epochs so
  no commit ever hangs waiting for co-members that never arrive;
* ``update_mpl`` admission keeps the per-master update multiprogramming
  level at or below the configured bound throughout the run;
* the legacy configuration (``epoch_max_txns == 1``) never touches the
  epoch machinery at all.
"""

from dataclasses import replace

from repro.chaos.invariants import check_all_invariants
from repro.cluster.costs import CostConfig
from repro.cluster.simcluster import SimDmvCluster
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale

SCALE = TpcwScale(num_items=40, num_customers=96)
SEED = 11

EPOCH_COST = replace(
    CostConfig(),
    update_mpl=4,
    epoch_max_txns=4,
    epoch_ms=5.0,
)


def _make_cluster(cost, num_slaves=2, seed=SEED):
    cluster = SimDmvCluster(
        TPCW_SCHEMAS, num_slaves=num_slaves, cost_config=cost, seed=seed
    )
    cluster.load(TpcwDataGenerator(SCALE, seed=seed))
    cluster.warm_all_caches()
    return cluster


def _epoch_totals(cluster):
    epochs = batched = 0
    for node in cluster.nodes.values():
        snap = node.counters.snapshot()
        epochs += snap.get("engine.epochs", 0)
        batched += snap.get("engine.epoch_batched_commits", 0)
    return epochs, batched


def _quiesce_and_check(cluster):
    cluster.stop_browsers()
    cluster.run(until=cluster.sim.now() + 10.0)
    results = {r.name: r for r in check_all_invariants(cluster)}
    for name in (
        "durable-commits",
        "replica-convergence",
        "snapshot-consistency",
        "counter-conservation",
    ):
        assert results[name].ok, str(results[name])


class TestEpochBatching:
    def test_loaded_epochs_batch_multiple_commits(self):
        cluster = _make_cluster(EPOCH_COST)
        cluster.start_browsers(32, MIXES["ordering"], SCALE, think_time_mean=0.2)
        cluster.run(until=20.0)
        epochs, batched = _epoch_totals(cluster)
        assert epochs > 0
        # Batching is real: strictly more commits than epochs, i.e. the
        # average epoch carried more than one member.
        assert batched > epochs
        assert batched <= epochs * EPOCH_COST.epoch_max_txns
        assert len(cluster.commit_log) == batched
        _quiesce_and_check(cluster)

    def test_trickle_load_timer_seals_part_filled_epochs(self):
        # One browser can never fill a 64-member epoch; only the epoch_ms
        # timer stands between its commits and a hang.
        cost = replace(EPOCH_COST, epoch_max_txns=64)
        cluster = _make_cluster(cost)
        cluster.start_browsers(1, MIXES["ordering"], SCALE, think_time_mean=0.2)
        cluster.run(until=20.0)
        epochs, batched = _epoch_totals(cluster)
        assert batched > 0, "trickle commits hung waiting for epoch members"
        assert epochs > 0
        _quiesce_and_check(cluster)

    def test_legacy_single_txn_epochs_bypass_machinery(self):
        cluster = _make_cluster(CostConfig())
        cluster.start_browsers(8, MIXES["ordering"], SCALE, think_time_mean=0.2)
        cluster.run(until=15.0)
        epochs, batched = _epoch_totals(cluster)
        assert epochs == 0 and batched == 0
        assert cluster._epochs == {}
        assert len(cluster.commit_log) > 0
        _quiesce_and_check(cluster)


class TestAdmissionControl:
    def test_update_mpl_bound_holds_throughout(self):
        cluster = _make_cluster(EPOCH_COST)
        cluster.start_browsers(32, MIXES["ordering"], SCALE, think_time_mean=0.2)
        peak = 0
        for step in range(1, 81):
            cluster.run(until=step * 0.25)
            for slot in cluster._update_slots.values():
                assert slot.capacity == EPOCH_COST.update_mpl
                assert slot.in_use <= slot.capacity
                peak = max(peak, slot.in_use)
        # The load was heavy enough that the bound actually bit.
        assert peak == EPOCH_COST.update_mpl
        _quiesce_and_check(cluster)
