"""Integration tests: TPC-W interactions on the embedded synchronous cluster."""

import pytest

from repro.common.rng import RngStream
from repro.cluster import SyncDmvCluster
from repro.tpcw import (
    INTERACTIONS,
    InteractionContext,
    TPCW_SCHEMAS,
    TpcwDataGenerator,
    TpcwScale,
    run_sync,
    tpcw_conflict_map,
)
from repro.tpcw.interactions import SharedSequences

SCALE = TpcwScale(num_items=60, num_customers=173)


_SHARED_SEQUENCES = SharedSequences(SCALE)  # one id space per test module


@pytest.fixture(scope="module")
def loaded_cluster():
    cluster = SyncDmvCluster(TPCW_SCHEMAS, num_slaves=2, num_disk_backends=1)
    cluster.load(TpcwDataGenerator(SCALE, seed=3))
    return cluster


def make_ctx(seed=0):
    return InteractionContext(
        rng=RngStream(seed, "ctx"),
        scale=SCALE,
        sequences=_SHARED_SEQUENCES,
        customer_id=5,
    )


class TestAllInteractions:
    @pytest.mark.parametrize("name", sorted(INTERACTIONS))
    def test_interaction_completes(self, loaded_cluster, name):
        ctx = make_ctx(seed=hash(name) % 1000)
        conn = loaded_cluster.connect()
        summary = run_sync(INTERACTIONS[name](conn, ctx))
        assert summary["interaction"] == name

    def test_buy_confirm_creates_order(self, loaded_cluster):
        cluster = loaded_cluster
        ctx = make_ctx(seed=77)
        conn = cluster.connect()
        run_sync(INTERACTIONS["shopping_cart"](conn, ctx))
        summary = run_sync(INTERACTIONS["buy_confirm"](conn, ctx))
        o_id = summary["order"]
        rs = cluster.run_read(
            "SELECT o_total FROM orders WHERE o_id = ?", (o_id,), tables=["orders"]
        )
        assert len(rs.rows) == 1
        # Order visible on every slave and on the disk backend.
        disk = cluster.disk_backends[0]
        txn = disk.begin(read_only=True)
        assert disk.execute(txn, "SELECT COUNT(*) FROM orders WHERE o_id = ?", (o_id,)).scalar() == 1
        disk.engine.commit(txn)

    def test_customer_registration_switches_session(self, loaded_cluster):
        ctx = make_ctx(seed=88)
        conn = loaded_cluster.connect()
        summary = run_sync(INTERACTIONS["customer_registration"](conn, ctx))
        assert ctx.customer_id == summary["customer"]
        assert ctx.customer_id > SCALE.num_customers
        rs = loaded_cluster.run_read(
            "SELECT c_uname FROM customer WHERE c_id = ?", (ctx.customer_id,),
            tables=["customer"],
        )
        assert len(rs.rows) == 1

    def test_best_sellers_produces_ranked_rows(self, loaded_cluster):
        ctx = make_ctx(seed=99)
        # Warm some orders so a subject has sales.
        conn = loaded_cluster.connect()
        for _ in range(3):
            run_sync(INTERACTIONS["shopping_cart"](conn, ctx))
            run_sync(INTERACTIONS["buy_confirm"](conn, ctx))
        summary = run_sync(INTERACTIONS["best_sellers"](conn, ctx))
        assert summary["rows"] >= 0  # subject may have no sales; must not crash

    def test_admin_confirm_updates_related(self, loaded_cluster):
        ctx = make_ctx(seed=111)
        conn = loaded_cluster.connect()
        summary = run_sync(INTERACTIONS["admin_confirm"](conn, ctx))
        rs = loaded_cluster.run_read(
            "SELECT i_related1 FROM item WHERE i_id = ?", (summary["item"],),
            tables=["item"],
        )
        assert 1 <= rs.scalar() <= SCALE.num_items


class TestClusterMechanics:
    def test_replication_reaches_all_slaves(self):
        cluster = SyncDmvCluster(TPCW_SCHEMAS, num_slaves=3)
        cluster.load(TpcwDataGenerator(SCALE, seed=3))
        cluster.run_update(
            [("UPDATE item SET i_stock = 77 WHERE i_id = 1", ())], tables=["item"]
        )
        for node_id in cluster.slave_ids():
            handle = cluster.node(node_id)
            from repro.common.versions import VersionVector

            txn = handle.slave.begin_read_only(VersionVector({"item": 1}))
            rs = handle.sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 1")
            assert rs.scalar() == 77

    def test_reads_balance_across_slaves(self, loaded_cluster):
        # The scheduler decrements outstanding counts at commit, so repeated
        # single reads spread by node id; just check routing works N times.
        for _ in range(4):
            rs = loaded_cluster.run_read(
                "SELECT COUNT(*) FROM country", tables=["country"]
            )
            assert rs.scalar() == 92

    def test_version_vector_advances(self):
        cluster = SyncDmvCluster(TPCW_SCHEMAS, num_slaves=1)
        cluster.load(TpcwDataGenerator(SCALE, seed=3))
        before = cluster.latest_versions().get("item")
        cluster.run_update(
            [("UPDATE item SET i_stock = 1 WHERE i_id = 2", ())], tables=["item"]
        )
        assert cluster.latest_versions().get("item") == before + 1

    def test_multi_master_mode(self):
        cluster = SyncDmvCluster(
            TPCW_SCHEMAS,
            num_slaves=2,
            conflict_map=tpcw_conflict_map(multi_master=True),
            multi_master=True,
        )
        cluster.load(TpcwDataGenerator(SCALE, seed=3))
        assert len(cluster.master_ids()) == 2
        ctx = make_ctx(seed=5)
        conn = cluster.connect()
        # Registration goes to the customer-class master, cart to the other.
        run_sync(INTERACTIONS["customer_registration"](conn, ctx))
        run_sync(INTERACTIONS["shopping_cart"](conn, ctx))
        run_sync(INTERACTIONS["buy_confirm"](conn, ctx))
        # Both masters' updates are visible on the slaves.
        rs = cluster.run_read(
            "SELECT COUNT(*) FROM customer WHERE c_id = ?", (ctx.customer_id,),
            tables=["customer"],
        )
        assert rs.scalar() == 1


class TestFailover:
    def build(self, num_slaves=3, num_spares=0):
        cluster = SyncDmvCluster(TPCW_SCHEMAS, num_slaves=num_slaves, num_spares=num_spares)
        cluster.load(TpcwDataGenerator(SCALE, seed=3))
        return cluster

    def run_some_updates(self, cluster, n=5):
        for i in range(n):
            cluster.run_update(
                [("UPDATE item SET i_stock = ? WHERE i_id = ?", (i, (i % SCALE.num_items) + 1))],
                tables=["item"],
            )

    def test_slave_failure_removes_from_routing(self):
        cluster = self.build()
        victim = cluster.slave_ids()[0]
        cluster.kill_slave(victim)
        assert victim not in cluster.slave_ids()
        rs = cluster.run_read("SELECT COUNT(*) FROM item", tables=["item"])
        assert rs.scalar() == SCALE.num_items

    def test_master_failure_promotes_slave(self):
        cluster = self.build()
        self.run_some_updates(cluster)
        new_master = cluster.kill_master("m0")
        assert new_master in cluster.master_ids()
        assert new_master not in cluster.slave_ids()
        # Updates keep flowing through the promoted master.
        cluster.run_update(
            [("UPDATE item SET i_stock = 123 WHERE i_id = 1", ())], tables=["item"]
        )
        rs = cluster.run_read("SELECT i_stock FROM item WHERE i_id = 1", tables=["item"])
        assert rs.scalar() == 123

    def test_reads_survive_master_failure(self):
        cluster = self.build()
        self.run_some_updates(cluster)
        cluster.kill_master("m0")
        rs = cluster.run_read("SELECT COUNT(*) FROM customer", tables=["customer"])
        assert rs.scalar() == SCALE.num_customers

    def test_reintegration_after_slave_failure(self):
        cluster = self.build()
        self.run_some_updates(cluster, n=3)
        victim = cluster.slave_ids()[0]
        cluster.node(victim).checkpoint()
        self.run_some_updates(cluster, n=4)  # updates the checkpoint missed
        cluster.kill_slave(victim)
        self.run_some_updates(cluster, n=3)  # updates while the node is down
        stats = cluster.reintegrate(victim)
        assert stats.pages_sent >= 1
        assert victim in cluster.slave_ids()
        # The reintegrated node answers current reads correctly.
        handle = cluster.node(victim)
        txn = handle.slave.begin_read_only(cluster.latest_versions())
        rs = handle.sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 3")
        assert rs.scalar() == 2  # last update wrote i=2 at i_id=3

    def test_reintegration_without_checkpoint_sends_everything(self):
        cluster = self.build()
        self.run_some_updates(cluster, n=2)
        victim = cluster.slave_ids()[0]
        cluster.kill_slave(victim)
        stats = cluster.reintegrate(victim)
        # No checkpoint: the support slave ships every page (worst case).
        assert stats.pages_sent == cluster.node(victim).engine.store.page_count()

    def test_spare_promotion_serves_reads(self):
        cluster = self.build(num_slaves=1, num_spares=1)
        self.run_some_updates(cluster)
        cluster.kill_slave("s0")
        cluster.promote_spare("spare0")
        rs = cluster.run_read("SELECT COUNT(*) FROM item", tables=["item"])
        assert rs.scalar() == SCALE.num_items


class TestCheckpointPersistence:
    def test_save_and_reintegrate_from_file(self, tmp_path):
        cluster = SyncDmvCluster(TPCW_SCHEMAS, num_slaves=3)
        cluster.load(TpcwDataGenerator(SCALE, seed=3))
        for i in range(3):
            cluster.run_update(
                [("UPDATE item SET i_stock = ? WHERE i_id = ?", (i, i + 1))],
                tables=["item"],
            )
        victim = cluster.slave_ids()[0]
        path = str(tmp_path / f"{victim}.ckpt.jsonl")
        saved = cluster.save_node_checkpoint(victim, path)
        assert saved > 0
        # More updates the checkpoint does not contain.
        cluster.run_update(
            [("UPDATE item SET i_stock = 42 WHERE i_id = 9", ())], tables=["item"]
        )
        cluster.kill_slave(victim)
        stats = cluster.reintegrate_from_file(victim, path)
        # Only the delta since the checkpoint moves.
        total_pages = cluster.node(victim).engine.store.page_count()
        assert 0 < stats.pages_sent < total_pages
        handle = cluster.node(victim)
        txn = handle.slave.begin_read_only(cluster.latest_versions())
        rs = handle.sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 9")
        assert rs.scalar() == 42
