"""Unit tests for the benchmark harness utilities."""

import pytest

from repro.bench.calibration import BENCH_SCALE, bench_cost
from repro.bench.harness import (
    FailoverResult,
    PeakResult,
    ThroughputRun,
    cached_rows,
    find_peak,
    total_pages,
)
from repro.bench.report import format_series, format_table
from repro.sim.stats import TimeSeries


class TestCalibration:
    def test_bench_cost_overrides(self):
        cost = bench_cost(page_fault_cost=0.5)
        assert cost.page_fault_cost == 0.5
        assert cost.cores_per_node == 2

    def test_net_delay_and_rtt(self):
        cost = bench_cost(net_latency=0.001, net_bandwidth=1e6)
        assert cost.net_delay(1000) == pytest.approx(0.002)
        assert cost.rtt(0) == pytest.approx(0.002)


class TestCachedRows:
    def test_cached_and_deterministic(self):
        rows1 = cached_rows(BENCH_SCALE)
        rows2 = cached_rows(BENCH_SCALE)
        assert rows1 is rows2  # same object: cache hit
        tables = [t for t, _r in rows1]
        assert "item" in tables and "shopping_cart" in tables

    def test_total_pages_positive(self):
        assert total_pages(BENCH_SCALE) > 100


class TestFindPeak:
    def test_stops_when_flat(self):
        calls = []

        def runner(clients):
            calls.append(clients)
            wips = min(clients, 50)  # saturates at 50
            return ThroughputRun(clients, wips, 0.1, 0.0, wips * 10)

        result = find_peak("x", runner, [10, 40, 80, 160, 320])
        assert result.peak_wips == 50
        # 160 showed no improvement over 80, so 320 is never run.
        assert calls == [10, 40, 80, 160]

    def test_peak_step(self):
        def runner(clients):
            return ThroughputRun(clients, 100 - abs(clients - 50), 0.1, 0.0, 1)

        result = find_peak("x", runner, [25, 50, 75])
        assert result.peak_step.clients == 50

    def test_empty(self):
        assert PeakResult("x").peak_wips == 0.0
        assert PeakResult("x").peak_step is None


def synthetic_failover(kill=100.0, baseline=50.0, dip=25.0, recover_at=160.0):
    series = TimeSeries("wips")
    for t in range(10, 300, 20):
        if t < kill:
            value = baseline
        elif t < recover_at:
            value = dip
        else:
            value = baseline
        series.record(float(t), value)
    return FailoverResult("x", series, TimeSeries("lat"), kill)


class TestFailoverResult:
    def test_mean_before(self):
        result = synthetic_failover()
        assert result.mean_before(60.0) == pytest.approx(50.0)

    def test_mean_during(self):
        result = synthetic_failover()
        assert result.mean_during(0.0, 50.0) == pytest.approx(25.0)

    def test_recovery_point(self):
        result = synthetic_failover(kill=100.0, recover_at=160.0)
        # First post-kill bucket at baseline with a confirming successor.
        assert result.recovery_point(threshold=0.9) == pytest.approx(70.0)

    def test_recovery_point_never_recovers(self):
        result = synthetic_failover(recover_at=10_000.0)
        horizon = result.series.times[-1] - 100.0
        assert result.recovery_point(threshold=0.9) == pytest.approx(horizon)

    def test_recovery_point_ignores_single_spike(self):
        series = TimeSeries("wips")
        values = [50, 50, 50, 50, 50, 10, 52, 9, 11, 50, 50, 50]
        for i, v in enumerate(values):
            series.record(10.0 + 20 * i, float(v))
        result = FailoverResult("x", series, TimeSeries("lat"), 100.0)
        # The lone 52 at t=130 has a bad successor; recovery is at t=190.
        assert result.recovery_point(threshold=0.9) == pytest.approx(90.0)


class TestReport:
    def test_format_table(self):
        out = format_table("Title", ["alpha", "beta"], [[1, 2], [3, 4]])
        assert "Title" in out and "-----" in out

    def test_format_series(self):
        series = TimeSeries("s")
        series.record(1.0, 5.0)
        series.record(2.0, 10.0)
        out = format_series("S", series, width=10)
        assert "#####" in out and "##########" in out

    def test_format_series_empty(self):
        assert "Empty" in format_series("Empty", TimeSeries("s"))

    def test_format_series_all_zero(self):
        series = TimeSeries("s")
        series.record(1.0, 0.0)
        out = format_series("Z", series)
        assert "0.00" in out
