"""Unit tests for simulation resources, servers, stores and stats."""

import pytest

from repro.sim import Histogram, Resource, Server, Simulator, Store, TimeSeries, WindowedRate
from repro.sim.stats import pretty_table


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_serializes_when_capacity_one(self):
        sim = Simulator()
        server = Server(sim, capacity=1)
        done = []

        def job(tag, duration):
            yield from server.serve(duration)
            done.append((tag, sim.now()))

        sim.spawn(job("a", 5.0))
        sim.spawn(job("b", 3.0))
        sim.run()
        assert done == [("a", 5.0), ("b", 8.0)]

    def test_parallel_when_capacity_two(self):
        sim = Simulator()
        server = Server(sim, capacity=2)
        done = []

        def job(tag, duration):
            yield from server.serve(duration)
            done.append((tag, sim.now()))

        for tag in ("a", "b", "c"):
            sim.spawn(job(tag, 4.0))
        sim.run()
        assert done == [("a", 4.0), ("b", 4.0), ("c", 8.0)]

    def test_release_without_request_raises(self):
        with pytest.raises(RuntimeError):
            Resource(Simulator()).release()

    def test_utilization(self):
        sim = Simulator()
        server = Server(sim, capacity=1)

        def job():
            yield from server.serve(5.0)

        sim.spawn(job())
        sim.run(until=10.0)
        assert server.utilization(10.0) == pytest.approx(0.5)

    def test_queue_length(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        res.request()
        res.request()
        sim.run()
        assert res.queue_length == 2

    def test_cancelled_waiter_skipped(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first = res.request()
        sim.run()
        assert first.triggered
        stale = res.request()
        stale.cancel()  # waiter dies while queued
        live = res.request()
        res.release()
        sim.run(until=1.0)
        assert live.triggered and live.ok


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        evt = store.get()
        assert evt.triggered and evt.value == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now()))

        def producer():
            yield sim.timeout(3.0)
            store.put("msg")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert got == [("msg", 3.0)]

    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(3):
            store.put(i)
        assert [store.get().value for _ in range(3)] == [0, 1, 2]

    def test_drain(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.drain() == [1, 2]
        assert len(store) == 0


class TestTimeSeries:
    def test_record_and_reduce(self):
        ts = TimeSeries("t")
        for i in range(5):
            ts.record(float(i), float(i * 10))
        assert len(ts) == 5
        assert ts.mean() == 20.0
        assert ts.min() == 0.0
        assert ts.max() == 40.0

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_between(self):
        ts = TimeSeries()
        for i in range(10):
            ts.record(float(i), float(i))
        sub = ts.between(3.0, 7.0)
        assert sub.times == [3.0, 4.0, 5.0, 6.0]

    def test_bucketed(self):
        ts = TimeSeries()
        for i in range(10):
            ts.record(float(i), float(i))
        b = ts.bucketed(5.0)
        assert b.values == [2.0, 7.0]
        assert b.times == [2.5, 7.5]

    def test_bucketed_with_gap(self):
        ts = TimeSeries()
        ts.record(1.0, 10.0)
        ts.record(21.0, 30.0)
        b = ts.bucketed(10.0)
        assert b.values == [10.0, 30.0]

    def test_bucketed_empty(self):
        assert len(TimeSeries().bucketed(5.0)) == 0


class TestWindowedRate:
    def test_series(self):
        rate = WindowedRate(window=10.0)
        for t in (1.0, 2.0, 3.0, 12.0):
            rate.mark(t)
        series = rate.series()
        assert series.values == [0.3, 0.1]
        assert rate.total() == 4

    def test_empty_windows_reported_as_zero(self):
        rate = WindowedRate(window=10.0)
        rate.mark(35.0)
        assert rate.series().values == [0.0, 0.0, 0.0, 0.1]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedRate(window=0.0)


class TestHistogram:
    def test_percentiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.record(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0
        assert h.mean() == 50.5

    def test_empty(self):
        h = Histogram()
        assert h.percentile(95) == 0.0
        assert h.mean() == 0.0

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.record(1.0)
        b.record(3.0)
        a.merge(b)
        assert len(a) == 2

    def test_summary_keys(self):
        h = Histogram()
        h.record(2.0)
        assert set(h.summary()) == {"count", "mean", "p50", "p95", "p99", "max"}

    def test_invalid_percentile(self):
        h = Histogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(150)


def test_pretty_table_alignment():
    out = pretty_table(["name", "val"], [["a", 1], ["long-name", 22]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
