"""Integration tests: multi-master conflict-class operation in the sim."""

import pytest

from repro.cluster.simcluster import SimDmvCluster
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale, tpcw_conflict_map

SCALE = TpcwScale(num_items=80, num_customers=230)


def build(**kwargs):
    kwargs.setdefault("num_slaves", 2)
    cluster = SimDmvCluster(
        TPCW_SCHEMAS,
        conflict_map=tpcw_conflict_map(multi_master=True),
        multi_master=True,
        **kwargs,
    )
    cluster.load(TpcwDataGenerator(SCALE, seed=11))
    cluster.warm_all_caches()
    return cluster


class TestMultiMasterOperation:
    def test_two_masters_exist(self):
        cluster = build()
        masters = [n for n in cluster.nodes.values() if n.master is not None]
        assert len(masters) == 2
        # Each is also a slave for the classes it does not own.
        assert all(n.slave is not None for n in masters)

    def test_updates_split_across_masters(self):
        cluster = build()
        cluster.start_browsers(10, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.run(until=40.0)
        m0 = cluster.nodes["m0"].counters.get("master.write_sets")
        m1 = cluster.nodes["m1"].counters.get("master.write_sets")
        assert m0 > 0 and m1 > 0  # both conflict classes saw commits

    def test_slaves_see_both_masters_updates(self):
        cluster = build()
        cluster.start_browsers(10, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.run(until=40.0)
        latest = cluster.scheduler.latest
        assert latest.get("shopping_cart") > 0   # ordering-class master
        assert latest.get("customer") > 0        # registration-class master
        for node_id in ("s0", "s1"):
            slave = cluster.nodes[node_id].slave
            assert slave.received_versions.dominates(latest)

    def test_masters_replicate_to_each_other(self):
        cluster = build()
        cluster.start_browsers(10, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.run(until=40.0)
        # m0 owns the ordering class; it must still have received the
        # customer-class write-sets as a slave.
        m0 = cluster.nodes["m0"]
        assert m0.slave.received_versions.get("customer") > 0

    def test_workload_completes_without_failures(self):
        cluster = build()
        cluster.start_browsers(10, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.run(until=40.0)
        assert cluster.metrics.completed > 100
        assert cluster.metrics.failed == 0


class TestMultiMasterFailover:
    def test_one_master_fails_other_keeps_running(self):
        cluster = build(num_slaves=3)
        cluster.start_browsers(10, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.kill_node_at("m1", 20.0)
        cluster.run(until=80.0)
        masters = {
            n.node_id for n in cluster.nodes.values() if n.master is not None and n.alive
        }
        assert "m0" in masters
        assert len(masters) == 2  # a slave inherited m1's classes
        promoted = (masters - {"m0"}).pop()
        # The promoted node keeps a slave role for the classes it does not own.
        assert cluster.nodes[promoted].slave is not None
        late = cluster.metrics.wips.series(end=80.0).between(50.0, 80.0)
        assert late.mean() > 0

    def test_registrations_flow_after_customer_master_death(self):
        cluster = build(num_slaves=3)
        cluster.start_browsers(10, MIXES["ordering"], SCALE, think_time_mean=0.3)
        # m1 owns the customer/address class (round-robin assignment).
        victim = cluster.conflict_map.master_for_tables(["customer"])
        cluster.kill_node_at(victim, 20.0)
        before_done = None
        cluster.run(until=40.0)
        before = cluster.scheduler.latest.get("customer")
        cluster.run(until=90.0)
        after = cluster.scheduler.latest.get("customer")
        assert after > before  # registrations commit on the new master
