"""Legacy chaos fingerprints must survive the partial-replication change.

Partial replication is opt-in: with no interest sets declared, every plan
must reproduce its pre-change counter fingerprint bit-for-bit — same
seeds, same counters, same hashes — and must emit none of the new
partial-mode counters.  The hashes below were captured on the commit
before the partial-replication subsystem landed; the two 200 sim-s runs
are the CI chaos-smoke anchors, the 60 sim-s runs pin every other plan.
"""

import pytest

from repro.chaos.__main__ import main as chaos_main

# (cli args, pre-partial-replication fingerprint)
BASELINES = {
    "default-60s": ("--seed 7 --duration 60", "6bd64ef89cb69bd3"),
    "straggler-60s": (
        "--plan straggler --ack-policy quorum --seed 7 --duration 60",
        "15f1d6a139adca16",
    ),
    "durability-60s": (
        "--plan durability --seed 0 --duration 60",
        "3f06ff527ac1998a",
    ),
    "write-scaleout-60s": (
        "--plan write-scaleout --seed 7 --duration 60",
        "2317579ec4ec277e",
    ),
    "occ-200s": ("--seed 7 --min-commits 500", "710e8a4ca4605d1d"),
    "2pl-200s": (
        "--seed 7 --min-commits 500 --read-concurrency 2pl",
        "3d95b8f6d3679ce5",
    ),
}


@pytest.mark.parametrize("name", sorted(BASELINES))
def test_legacy_fingerprint_reproduced_bit_for_bit(name, capsys):
    args, fingerprint = BASELINES[name]
    rc = chaos_main(args.split() + ["--expect-fingerprint", fingerprint])
    out = capsys.readouterr().out
    assert rc == 0, out
    # The partial-mode counters must not exist on a full-replication run
    # (they would change the fingerprint the moment they were touched).
    for counter in (
        "net.bytes_saved_partial",
        "net.write_sets_filtered",
        "sched.coverage_rejects",
        "sched.partial_master_fallbacks",
        # Overload defenses are opt-in: none of these may fire (or even be
        # touched) on a legacy closed-loop run with defenses off.
        "sched.admission_rejects",
        "sched.deadline_cancels",
        "bench.retries_exhausted",
        "traffic.requests_injected",
        "traffic.retry_budget_exhausted",
        "traffic.breaker_short_circuits",
    ):
        assert f"{counter}=0" in out, f"{counter} fired on a legacy run"
