"""Integration tests for the simulated on-disk baseline tier."""

import pytest

from repro.cluster.simdisk import SimDiskCluster
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale

SCALE = TpcwScale(num_items=60, num_customers=173)


def build(num_active=1, num_passive=0, **kwargs):
    cluster = SimDiskCluster(
        TPCW_SCHEMAS, num_active=num_active, num_passive=num_passive,
        pool_pages=64, **kwargs
    )
    cluster.load(TpcwDataGenerator(SCALE, seed=5))
    return cluster


class TestStandalone:
    def test_workload_completes(self):
        cluster = build()
        cluster.start_browsers(6, MIXES["shopping"], SCALE, think_time_mean=1.0)
        cluster.run(until=60.0)
        assert cluster.metrics.completed > 30
        assert cluster.metrics.failed == 0

    def test_disk_time_slows_throughput_vs_big_pool(self):
        big_scale = TpcwScale(num_items=400, num_customers=1152)
        results = {}
        for pool in (8, 100000):
            cluster = SimDiskCluster(TPCW_SCHEMAS, num_active=1, pool_pages=pool)
            cluster.load(TpcwDataGenerator(big_scale, seed=5))
            cluster.warm_all_pools() if pool > 1000 else None
            cluster.start_browsers(30, MIXES["browsing"], big_scale, think_time_mean=0.05)
            cluster.run(until=30.0)
            results[pool] = cluster.metrics.completed
        assert results[100000] > results[8] * 1.5

    def test_wal_grows_with_updates(self):
        cluster = build()
        cluster.start_browsers(6, MIXES["ordering"], SCALE, think_time_mean=0.5)
        cluster.run(until=40.0)
        assert len(cluster.nodes["d0"].db.wal) > 0


class TestReplicated:
    def test_write_all_keeps_actives_identical(self):
        cluster = build(num_active=2)
        cluster.start_browsers(6, MIXES["ordering"], SCALE, think_time_mean=0.5)
        cluster.run(until=40.0)
        v0 = cluster.nodes["d0"].db.current_versions()
        v1 = cluster.nodes["d1"].db.current_versions()
        assert v0 == v1
        assert v0.total() > 0

    def test_backup_lags_between_refreshes(self):
        cluster = build(num_active=2, num_passive=1, refresh_interval=30.0)
        cluster.start_browsers(6, MIXES["ordering"], SCALE, think_time_mean=0.5)
        cluster.run(until=25.0)
        lag_before = cluster.scheduler.backup_lag("backup0")
        assert lag_before > 0
        assert cluster.nodes["backup0"].db.current_versions().total() == 0
        cluster.run(until=60.0)
        # A refresh ran and the backup applied the batch it was handed.
        assert cluster.scheduler.counters.get("casched.refresh_batches") >= 1
        assert cluster.nodes["backup0"].db.current_versions().total() > 0

    def test_failover_replays_lag_and_promotes(self):
        cluster = build(num_active=2, num_passive=1, refresh_interval=10_000.0)
        cluster.start_browsers(8, MIXES["shopping"], SCALE, think_time_mean=0.5)
        cluster.kill_node_at("d0", 30.0)
        cluster.run(until=200.0)
        timeline = cluster.timelines[0]
        assert timeline.replay_entries > 0
        assert timeline.db_update_duration() > 0
        actives = {r.node_id for r in cluster.scheduler.active_replicas()}
        assert actives == {"d1", "backup0"}
        # Service continued after failover.
        late = cluster.metrics.wips.series(end=200.0).between(150.0, 200.0)
        assert late.mean() > 0

    def test_half_capacity_during_failover(self):
        cluster = build(num_active=2, num_passive=1, refresh_interval=10_000.0)
        cluster.start_browsers(20, MIXES["shopping"], SCALE, think_time_mean=0.3)
        cluster.kill_node_at("d0", 60.0)
        cluster.run(until=240.0)
        series = cluster.metrics.wips.series(end=240.0)
        before = series.between(20.0, 60.0).mean()
        during = series.between(65.0, 95.0).mean()
        assert during < before  # capacity visibly reduced after the kill
