"""Span-based test helpers: assert on trace structure, not sleeps/counters."""

from tests.obs.asserts import (
    assert_all_closed,
    assert_no_span_overlap,
    assert_span_order,
    children_of,
    spans_for_txn,
)

__all__ = [
    "assert_all_closed",
    "assert_no_span_overlap",
    "assert_span_order",
    "children_of",
    "spans_for_txn",
]
