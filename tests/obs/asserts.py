"""Assertion helpers over :mod:`repro.obs` span logs.

Integration tests assert on the *causal structure* of a run — "the apply
span started after the reader arrived", "every retransmit nests under its
broadcast" — instead of sleeping or diffing counter totals.  These helpers
turn a tracer (or a plain list of spans) into those assertions with
failure messages that print the offending spans.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.obs import Span, Tracer


def _spans(source: Union[Tracer, Iterable[Span]]) -> List[Span]:
    spans = source.finished() if isinstance(source, Tracer) else list(source)
    return sorted(spans, key=lambda s: (s.start, s.span_id))


def spans_for_txn(
    source: Union[Tracer, Iterable[Span]], txn_id: int, node: Optional[str] = None
) -> List[Span]:
    """All finished spans of one transaction, ordered by (start, id).

    Transaction ids are allocated per engine, so two transactions on
    different nodes can share an id.  When the log holds root (``txn``)
    spans, the result is the span *tree* under the matching roots —
    disambiguate colliding ids by passing the root's ``node`` tag.  Logs
    without root spans (component-level tests) fall back to a flat
    ``txn_id`` filter.
    """
    spans = _spans(source)
    roots = [
        s
        for s in spans
        if s.parent_id == -1
        and s.name == "txn"
        and s.txn_id == txn_id
        and (node is None or s.tags.get("node") == node)
    ]
    if not roots:
        return [s for s in spans if s.txn_id == txn_id]
    by_parent: dict = {}
    for s in spans:
        by_parent.setdefault(s.parent_id, []).append(s)
    collected: List[Span] = []
    seen = set()
    stack = list(roots)
    while stack:
        span = stack.pop()
        if span.span_id in seen:
            continue
        seen.add(span.span_id)
        collected.append(span)
        stack.extend(by_parent.get(span.span_id, []))
    return sorted(collected, key=lambda s: (s.start, s.span_id))


def children_of(source: Union[Tracer, Iterable[Span]], parent: Span) -> List[Span]:
    """Finished direct children of ``parent``, ordered by (start, id)."""
    return [s for s in _spans(source) if s.parent_id == parent.span_id]


def assert_span_order(
    source: Union[Tracer, Iterable[Span]], *names: str, txn_id: Optional[int] = None
) -> List[Span]:
    """Assert ``names`` occur as a subsequence of the start-time order.

    Returns the matched spans (one per name) so callers can chain further
    assertions on their tags.  Restricts to one transaction's spans when
    ``txn_id`` is given.
    """
    spans = _spans(source)
    if txn_id is not None:
        spans = [s for s in spans if s.txn_id == txn_id]
    matched: List[Span] = []
    remaining = list(names)
    for span in spans:
        if remaining and span.name == remaining[0]:
            matched.append(span)
            remaining.pop(0)
    if remaining:
        observed = " -> ".join(s.name for s in spans)
        raise AssertionError(
            f"expected span order {' -> '.join(names)}; missing {remaining!r} "
            f"in observed sequence [{observed}]"
        )
    return matched


def assert_no_span_overlap(
    source: Union[Tracer, Iterable[Span]], name: Optional[str] = None
) -> None:
    """Assert no two (non-instant) spans in the set overlap in time.

    Use for stages that must serialize — e.g. the precommit spans of one
    master under table-granularity locking, or per-page apply spans.
    """
    spans = [s for s in _spans(source) if not s.instant]
    if name is not None:
        spans = [s for s in spans if s.name == name]
    for earlier, later in zip(spans, spans[1:]):
        if earlier.end is not None and earlier.end > later.start:
            raise AssertionError(
                f"spans overlap: {earlier!r} ends at {earlier.end:g} after "
                f"{later!r} starts at {later.start:g}"
            )


def assert_all_closed(source: Tracer) -> None:
    """Assert the tracer holds no open spans (quiescence reached)."""
    open_spans: Sequence[Span] = source.open_spans()
    if open_spans:
        listing = ", ".join(repr(s) for s in open_spans[:5])
        raise AssertionError(f"{len(open_spans)} spans still open: {listing}")
