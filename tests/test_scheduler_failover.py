"""Integration tests: peer schedulers and scheduler failover (paper §4.1)."""

import pytest

from repro.cluster.simcluster import SimDmvCluster
from repro.common.errors import NodeUnavailable
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale

SCALE = TpcwScale(num_items=80, num_customers=230)


def build(num_schedulers=2, **kwargs):
    cluster = SimDmvCluster(
        TPCW_SCHEMAS, num_slaves=2, num_schedulers=num_schedulers, **kwargs
    )
    cluster.load(TpcwDataGenerator(SCALE, seed=11))
    cluster.warm_all_caches()
    return cluster


class TestPeerSchedulers:
    def test_primary_is_lowest_alive(self):
        cluster = build()
        assert cluster.scheduler is cluster.schedulers[0].scheduler
        cluster.schedulers[0].alive = False
        assert cluster.scheduler is cluster.schedulers[1].scheduler

    def test_no_scheduler_raises(self):
        cluster = build()
        for agent in cluster.schedulers:
            agent.alive = False
        with pytest.raises(NodeUnavailable):
            _ = cluster.scheduler

    def test_version_state_replicated_to_peer(self):
        cluster = build()
        cluster.start_browsers(6, MIXES["ordering"], SCALE, think_time_mean=0.5)
        cluster.run(until=30.0)
        primary = cluster.schedulers[0].scheduler
        backup = cluster.schedulers[1].scheduler
        assert primary.latest.total() > 0
        # The backup lags by at most the in-flight replication window.
        assert backup.latest.total() >= primary.latest.total() - 5

    def test_topology_mirrored_on_backup(self):
        cluster = build()
        backup = cluster.schedulers[1].scheduler
        assert {s.node_id for s in backup.active_slaves()} == {"s0", "s1"}


class TestSchedulerFailover:
    def test_takeover_restores_service(self):
        cluster = build()
        cluster.start_browsers(8, MIXES["shopping"], SCALE, think_time_mean=0.5)
        cluster.kill_scheduler_at("sched0", 20.0)
        cluster.run(until=80.0)
        # Takeover happened and was fast (heartbeat + two RPC rounds).
        assert len(cluster.scheduler_takeovers) == 1
        detected, done = cluster.scheduler_takeovers[0]
        assert done - detected < 2.0
        # Service continued afterwards.
        late = cluster.metrics.wips.series(end=80.0).between(50.0, 80.0)
        assert late.mean() > 0
        assert cluster.scheduler is cluster.schedulers[1].scheduler

    def test_takeover_resyncs_versions_from_masters(self):
        cluster = build()
        cluster.start_browsers(8, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.kill_scheduler_at("sched0", 20.0)
        cluster.run(until=60.0)
        master = cluster.nodes["m0"]
        backup = cluster.schedulers[1].scheduler
        assert backup.latest.dominates(master.master.current_versions())

    def test_updates_flow_after_takeover(self):
        cluster = build()
        cluster.start_browsers(8, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.kill_scheduler_at("sched0", 20.0)
        cluster.run(until=30.0)
        before = cluster.schedulers[1].scheduler.latest.total()
        cluster.run(until=60.0)
        after = cluster.schedulers[1].scheduler.latest.total()
        assert after > before

    def test_backup_scheduler_death_is_invisible(self):
        cluster = build()
        cluster.start_browsers(6, MIXES["shopping"], SCALE, think_time_mean=0.5)
        cluster.kill_scheduler_at("sched1", 20.0)
        cluster.run(until=60.0)
        assert not cluster.scheduler_takeovers  # primary never changed
        assert cluster.metrics.completed > 50

    def test_scheduler_and_master_failures_combined(self):
        cluster = build()
        cluster.start_browsers(8, MIXES["shopping"], SCALE, think_time_mean=0.5)
        cluster.kill_scheduler_at("sched0", 15.0)
        cluster.kill_node_at("m0", 40.0)
        cluster.run(until=120.0)
        late = cluster.metrics.wips.series(end=120.0).between(90.0, 120.0)
        assert late.mean() > 0
        masters = [n for n in cluster.nodes.values() if n.master and n.alive]
        assert len(masters) == 1
