"""Integration tests: the simulated cluster end to end (virtual time)."""

import pytest

from repro.cluster.costs import CostConfig
from repro.cluster.simcluster import SimDmvCluster
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale

SCALE = TpcwScale(num_items=80, num_customers=230)


def build_cluster(**kwargs):
    kwargs.setdefault("num_slaves", 2)
    cluster = SimDmvCluster(TPCW_SCHEMAS, **kwargs)
    cluster.load(TpcwDataGenerator(SCALE, seed=11))
    cluster.warm_all_caches()
    return cluster


class TestSteadyState:
    def test_browsers_complete_interactions(self):
        cluster = build_cluster()
        cluster.start_browsers(8, MIXES["shopping"], SCALE, think_time_mean=1.0)
        cluster.run(until=60.0)
        assert cluster.metrics.completed > 100
        assert cluster.metrics.failed == 0

    def test_throughput_series_nonzero(self):
        cluster = build_cluster()
        cluster.start_browsers(6, MIXES["browsing"], SCALE, think_time_mean=1.0)
        cluster.run(until=80.0)
        series = cluster.metrics.wips.series(end=80.0)
        assert series.mean() > 0.5

    def test_updates_replicate_through_sim(self):
        cluster = build_cluster()
        cluster.start_browsers(6, MIXES["ordering"], SCALE, think_time_mean=0.5)
        cluster.run(until=40.0)
        assert cluster.scheduler.latest.total() > 0
        # Slaves saw the same versions the scheduler confirmed.
        for node_id in ("s0", "s1"):
            node = cluster.nodes[node_id]
            assert node.slave.received_versions.dominates(cluster.scheduler.latest)

    def test_latency_histogram_populated(self):
        cluster = build_cluster()
        cluster.start_browsers(4, MIXES["shopping"], SCALE, think_time_mean=1.0)
        cluster.run(until=30.0)
        assert len(cluster.metrics.latency) == cluster.metrics.completed
        assert cluster.metrics.latency.percentile(95) > 0

    def test_abort_rate_is_low(self):
        """Paper §6.1: version-inconsistency aborts stay under 2.5 %."""
        cluster = build_cluster(num_slaves=3)
        cluster.start_browsers(12, MIXES["shopping"], SCALE, think_time_mean=0.5)
        cluster.run(until=60.0)
        assert cluster.metrics.completed > 200
        assert cluster.metrics.abort_rate() < 0.05

    def test_more_slaves_more_throughput(self):
        # Inflate CPU costs so a single slave saturates at this tiny scale.
        heavy = CostConfig(cpu_per_statement=0.02)
        results = {}
        for n in (1, 3):
            cluster = build_cluster(num_slaves=n, cost_config=heavy)
            cluster.start_browsers(50, MIXES["browsing"], SCALE, think_time_mean=0.1)
            cluster.run(until=40.0)
            results[n] = cluster.metrics.completed
        assert results[3] > results[1] * 1.3


class TestSlaveFailover:
    def test_slave_failure_detected_and_removed(self):
        cluster = build_cluster(num_slaves=2)
        cluster.start_browsers(6, MIXES["shopping"], SCALE, think_time_mean=1.0)
        cluster.kill_node_at("s0", 20.0)
        cluster.run(until=60.0)
        assert "s0" not in [s.node_id for s in cluster.scheduler.active_slaves()]
        assert cluster.metrics.completed > 50
        # Work continued after the failure.
        late = cluster.metrics.wips.series(end=60.0).between(40.0, 60.0)
        assert late.mean() > 0

    def test_spare_promoted_when_last_active_dies(self):
        cluster = build_cluster(num_slaves=1, num_spares=1)
        cluster.start_browsers(5, MIXES["shopping"], SCALE, think_time_mean=1.0)
        cluster.kill_node_at("s0", 15.0)
        cluster.run(until=60.0)
        actives = [s.node_id for s in cluster.scheduler.active_slaves()]
        assert actives == ["spare0"]
        late = cluster.metrics.wips.series(end=60.0).between(40.0, 60.0)
        assert late.mean() > 0


class TestMasterFailover:
    def test_master_failure_promotes_slave(self):
        cluster = build_cluster(num_slaves=3)
        cluster.start_browsers(8, MIXES["shopping"], SCALE, think_time_mean=1.0)
        cluster.kill_node_at("m0", 20.0)
        cluster.run(until=90.0)
        new_master = [n for n in cluster.nodes.values() if n.master is not None and n.alive]
        assert len(new_master) == 1
        assert new_master[0].node_id == "s0"
        # Updates flow again after reconfiguration.
        assert cluster.metrics.completed > 50
        timeline = cluster.timelines[0]
        assert timeline.recovery_duration() > 0

    def test_master_failure_with_stale_spare_backfills(self):
        cluster = build_cluster(num_slaves=2, num_spares=1)
        cluster.make_stale_backup("spare0")
        cluster.start_browsers(8, MIXES["shopping"], SCALE, think_time_mean=1.0)
        cluster.kill_node_at("m0", 20.0)
        cluster.run(until=120.0)
        actives = {s.node_id for s in cluster.scheduler.active_slaves()}
        assert "spare0" in actives
        timeline = cluster.timelines[0]
        assert timeline.migration_pages > 0

    def test_effects_of_unconfirmed_commits_discarded(self):
        cluster = build_cluster(num_slaves=2)
        cluster.start_browsers(10, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.kill_node_at("m0", 15.0)
        cluster.run(until=60.0)
        # All surviving replicas agree with the scheduler's confirmed vector.
        for node in cluster.nodes.values():
            if node.alive and node.slave is not None:
                assert node.slave.received_versions.dominates(cluster.scheduler.latest) or \
                    cluster.scheduler.latest.dominates(node.slave.received_versions)


class TestReintegration:
    def test_reintegrated_node_rejoins_routing(self):
        cluster = build_cluster(num_slaves=2, checkpoint_period=5.0)
        cluster.start_browsers(6, MIXES["shopping"], SCALE, think_time_mean=0.5)
        cluster.kill_node_at("s0", 20.0)
        cluster.sim.schedule(40.0, cluster.reintegrate, "s0")
        cluster.run(until=120.0)
        assert "s0" in [s.node_id for s in cluster.scheduler.active_slaves()]
        reint = [t for t in cluster.timelines if t.migration_pages >= 0]
        assert reint

    def test_reintegration_transfers_only_changed_pages(self):
        cluster = build_cluster(num_slaves=2, checkpoint_period=1e9)
        cluster.start_browsers(6, MIXES["ordering"], SCALE, think_time_mean=0.5)
        cluster.kill_node_at("s0", 10.0)
        cluster.run(until=30.0)
        process = cluster.reintegrate("s0")
        cluster.run(until=200.0)
        assert process.triggered and process.ok
        timeline = process.value
        total_pages = cluster.nodes["s1"].engine.store.page_count()
        assert 0 < timeline.migration_pages < total_pages

    def test_cold_reintegrated_cache_warms_over_time(self):
        cluster = build_cluster(num_slaves=2)
        cluster.start_browsers(6, MIXES["shopping"], SCALE, think_time_mean=0.5)
        cluster.kill_node_at("s0", 10.0)
        cluster.sim.schedule(20.0, cluster.reintegrate, "s0")
        cluster.run(until=150.0)
        node = cluster.nodes["s0"]
        assert node.cache.resident_count() > 0


class TestPageIdShipping:
    def test_spare_cache_warmed_by_shipping(self):
        cluster = build_cluster(num_slaves=1, num_spares=1, pageid_ship_every=5.0)
        cluster.chill_cache("spare0")
        cluster.start_browsers(6, MIXES["shopping"], SCALE, think_time_mean=0.5)
        cluster.run(until=40.0)
        spare = cluster.nodes["spare0"]
        active = cluster.nodes["s0"]
        assert spare.cache.resident_count() >= active.cache.resident_count() * 0.9
