"""Unit and property tests for pages, page stores and page ops."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SchemaError
from repro.common.ids import PageId
from repro.storage import OpKind, Page, PageOp, PageStore, apply_op, encoded_size
from repro.storage.ops import apply_ops, ops_size, touched_pages


def make_page(n_rows=0, capacity=8):
    page = Page(PageId("item", 0), capacity=capacity)
    for i in range(n_rows):
        page.put(i, (i, f"row-{i}"))
    return page


class TestPage:
    def test_empty_page(self):
        page = make_page()
        assert page.live_rows == 0
        assert not page.full
        assert page.first_free_slot() == 0

    def test_put_get(self):
        page = make_page()
        page.put(3, (3, "x"))
        assert page.get(3) == (3, "x")
        assert page.live_rows == 1

    def test_overwrite_keeps_count(self):
        page = make_page(1)
        page.put(0, (0, "new"))
        assert page.live_rows == 1

    def test_delete_decrements(self):
        page = make_page(2)
        page.put(0, None)
        assert page.live_rows == 1

    def test_full_and_free_slot(self):
        page = make_page(8, capacity=8)
        assert page.full
        assert page.first_free_slot() is None
        page.put(5, None)
        assert page.first_free_slot() == 5

    def test_iter_live(self):
        page = make_page(3)
        page.put(1, None)
        assert [slot for slot, _ in page.iter_live()] == [0, 2]

    def test_snapshot_is_independent(self):
        page = make_page(2)
        page.version = 9
        snap = page.snapshot()
        page.put(0, None)
        page.version = 10
        assert snap.live_rows == 2
        assert snap.version == 9
        assert snap.get(0) == (0, "row-0")

    def test_load_from(self):
        page = make_page(2)
        page.version = 4
        other = Page(PageId("item", 0), capacity=8)
        other.load_from(page.snapshot())
        assert other.live_rows == 2
        assert other.version == 4

    def test_load_from_wrong_page_rejected(self):
        page = make_page()
        with pytest.raises(SchemaError):
            page.load_from(Page(PageId("item", 1)))

    def test_byte_size_grows_with_rows(self):
        empty = make_page(0)
        full = make_page(8, capacity=8)
        assert full.byte_size() > empty.byte_size() > 0


class TestPageStore:
    def test_allocate_dense_numbering(self):
        store = PageStore()
        pages = [store.allocate("item") for _ in range(3)]
        assert [p.page_id.number for p in pages] == [0, 1, 2]

    def test_get_missing_raises(self):
        with pytest.raises(SchemaError):
            PageStore().get(PageId("item", 0))

    def test_get_or_allocate_fills_gap(self):
        store = PageStore()
        page = store.get_or_allocate(PageId("item", 2))
        assert page.page_id.number == 2
        assert store.page_count() == 3

    def test_tables_and_pages_of(self):
        store = PageStore()
        store.allocate("b_table")
        store.allocate("a_table")
        store.allocate("a_table")
        assert store.tables() == ["a_table", "b_table"]
        assert len(store.pages_of("a_table")) == 2
        assert store.pages_of("missing") == []

    def test_version_map(self):
        store = PageStore()
        page = store.allocate("item")
        page.version = 5
        assert store.version_map() == {PageId("item", 0): 5}

    def test_all_pages_sorted_by_table(self):
        store = PageStore()
        store.allocate("z")
        store.allocate("a")
        assert [p.page_id.table for p in store.all_pages()] == ["a", "z"]

    def test_clear(self):
        store = PageStore()
        store.allocate("item")
        store.clear()
        assert store.page_count() == 0


class TestPageOps:
    def test_insert_apply(self):
        page = make_page()
        apply_op(page, PageOp(page.page_id, OpKind.INSERT, 0, (1, "a")))
        assert page.get(0) == (1, "a")

    def test_update_apply(self):
        page = make_page(1)
        apply_op(page, PageOp(page.page_id, OpKind.UPDATE, 0, (0, "changed")))
        assert page.get(0) == (0, "changed")

    def test_delete_apply(self):
        page = make_page(1)
        apply_op(page, PageOp(page.page_id, OpKind.DELETE, 0))
        assert page.get(0) is None

    def test_wrong_page_rejected(self):
        page = make_page()
        op = PageOp(PageId("item", 5), OpKind.DELETE, 0)
        with pytest.raises(SchemaError):
            apply_op(page, op)

    def test_insert_without_row_rejected(self):
        page = make_page()
        with pytest.raises(SchemaError):
            apply_op(page, PageOp(page.page_id, OpKind.INSERT, 0, None))

    def test_inverse_roundtrip_update(self):
        page = make_page(1)
        before = page.get(0)
        op = PageOp(page.page_id, OpKind.UPDATE, 0, (0, "new"))
        undo = op.inverse(before)
        apply_op(page, op)
        apply_op(page, undo)
        assert page.get(0) == before

    def test_inverse_roundtrip_insert(self):
        page = make_page()
        op = PageOp(page.page_id, OpKind.INSERT, 2, (2, "x"))
        undo = op.inverse(None)
        apply_op(page, op)
        apply_op(page, undo)
        assert page.get(2) is None

    def test_inverse_roundtrip_delete(self):
        page = make_page(1)
        before = page.get(0)
        op = PageOp(page.page_id, OpKind.DELETE, 0)
        undo = op.inverse(before)
        apply_op(page, op)
        apply_op(page, undo)
        assert page.get(0) == before

    def test_encoded_size_positive(self):
        op = PageOp(PageId("t", 0), OpKind.INSERT, 0, (1, "abc", 2.5, None))
        assert encoded_size(op) > 24
        assert ops_size([op, op]) == 2 * encoded_size(op)

    def test_touched_pages_order_and_dedup(self):
        a, b = PageId("t", 0), PageId("t", 1)
        ops = [
            PageOp(a, OpKind.DELETE, 0),
            PageOp(b, OpKind.DELETE, 0),
            PageOp(a, OpKind.DELETE, 1),
        ]
        assert touched_pages(ops) == (a, b)


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.sampled_from(["insert", "update", "delete"]),
        ),
        max_size=24,
    )
)
def test_ops_applied_in_order_are_deterministic(script):
    """Applying the same op sequence to equal pages yields equal pages."""
    pid = PageId("item", 0)
    ops = []
    for i, (slot, kind) in enumerate(script):
        if kind == "delete":
            ops.append(PageOp(pid, OpKind.DELETE, slot))
        else:
            ops.append(PageOp(pid, OpKind(kind), slot, (i, f"v{i}")))
    p1 = Page(pid, capacity=8)
    p2 = Page(pid, capacity=8)
    apply_ops(p1, ops)
    apply_ops(p2, ops)
    assert p1.slots == p2.slots
    assert p1.live_rows == p2.live_rows
    assert p1.live_rows == sum(1 for r in p1.slots if r is not None)
