"""Unit tests for the version-aware and conflict-aware schedulers."""

import pytest

from repro.common.errors import NodeUnavailable
from repro.common.versions import VersionVector
from repro.core import ConflictClassMap
from repro.scheduler import ConflictAwareScheduler, QueryLog, VersionAwareScheduler
from repro.scheduler.querylog import LoggedUpdate


def make_sched(n_slaves=3, **kwargs):
    ccm = ConflictClassMap.single_class(["item", "orders"])
    ccm.assign_masters(["m0"])
    sched = VersionAwareScheduler("sched0", ccm, **kwargs)
    for i in range(n_slaves):
        sched.add_slave(f"s{i}")
    return sched


class TestVersionAwareRouting:
    def test_updates_go_to_master(self):
        sched = make_sched()
        assert sched.route_update(["item"]) == "m0"

    def test_read_tagged_with_latest(self):
        sched = make_sched()
        sched.on_master_commit("m0", {"item": 3})
        routed = sched.route_read(["item"])
        assert routed.tag == VersionVector({"item": 3})

    def test_tag_is_a_copy(self):
        sched = make_sched()
        routed = sched.route_read(["item"])
        routed.tag.increment(["item"])
        assert sched.latest.get("item") == 0

    def test_load_balancing(self):
        sched = make_sched(n_slaves=3)
        nodes = [sched.route_read(["item"]).node_id for _ in range(3)]
        assert sorted(nodes) == ["s0", "s1", "s2"]

    def test_note_read_done_rebalances(self):
        sched = make_sched(n_slaves=2)
        first = sched.route_read(["item"]).node_id
        sched.route_read(["item"])
        sched.note_read_done(first)
        assert sched.route_read(["item"]).node_id == first

    def test_version_affinity_preferred(self):
        sched = make_sched(n_slaves=3)
        sched.on_master_commit("m0", {"item": 1})
        first = sched.route_read(["item"])
        sched.note_read_done(first.node_id)
        # Same version: scheduler prefers the same (affine) replica even
        # though others have equal load and lower ids could win otherwise.
        second = sched.route_read(["item"])
        assert second.node_id == first.node_id
        assert sched.counters.get("sched.reads_version_affinity") >= 1

    def test_new_version_breaks_affinity_preference(self):
        sched = make_sched(n_slaves=2)
        sched.on_master_commit("m0", {"item": 1})
        sched.route_read(["item"])
        sched.on_master_commit("m0", {"item": 2})
        routed = sched.route_read(["item"])
        assert routed.tag.get("item") == 2

    def test_no_slaves_raises(self):
        sched = make_sched(n_slaves=0)
        with pytest.raises(NodeUnavailable):
            sched.route_read(["item"])

    def test_spare_fraction_routes_to_spare(self):
        sched = make_sched(n_slaves=1, spare_read_fraction=1.0)
        sched.add_slave("spare0", spare=True)
        assert sched.route_read(["item"]).node_id == "spare0"

    def test_zero_spare_fraction_never_uses_spares(self):
        sched = make_sched(n_slaves=1, spare_read_fraction=0.0)
        sched.add_slave("spare0", spare=True)
        for _ in range(10):
            routed = sched.route_read(["item"])
            assert routed.node_id == "s0"
            sched.note_read_done(routed.node_id)

    def test_promote_spare(self):
        sched = make_sched(n_slaves=0)
        sched.add_slave("spare0", spare=True)
        sched.promote_spare("spare0")
        assert sched.route_read(["item"]).node_id == "spare0"

    def test_remove_node(self):
        sched = make_sched(n_slaves=2)
        sched.remove_node("s0")
        for _ in range(4):
            assert sched.route_read(["item"]).node_id == "s1"


class TestVersionAwareFailover:
    def test_master_failure_reassignment(self):
        sched = make_sched(n_slaves=2)
        moved = sched.on_master_failure("m0", "s0")
        assert moved == 1
        assert sched.route_update(["item"]) == "s0"
        # The promoted slave no longer serves reads.
        for _ in range(4):
            assert sched.route_read(["item"]).node_id == "s1"

    def test_export_import_state(self):
        sched = make_sched()
        sched.on_master_commit("m0", {"item": 5})
        peer = make_sched()
        peer.import_state(sched.export_state())
        assert peer.latest == sched.latest

    def test_commit_logs_queries(self):
        sched = make_sched()
        sched.on_master_commit(
            "m0", {"item": 1}, queries=[("UPDATE item SET i_stock = 1", ())], txn_id=7
        )
        assert len(sched.query_log) == 1
        assert sched.query_log.since(0)[0].txn_id == 7


class TestQueryLog:
    def test_cursors(self):
        log = QueryLog()
        for i in range(5):
            log.append(LoggedUpdate(i, (("q", ()),)))
        assert log.lag_of("backup") == 5
        batch = log.pending_for("backup")
        assert len(batch) == 5
        log.advance("backup", len(batch))
        assert log.lag_of("backup") == 0

    def test_set_cursor_clamped(self):
        log = QueryLog()
        log.append(LoggedUpdate(1, ()))
        log.set_cursor("c", 99)
        assert log.cursor("c") == 1

    def test_byte_size(self):
        entry = LoggedUpdate(1, (("UPDATE item SET x = ?", (42,)),))
        assert entry.byte_size() > 32


class TestConflictAware:
    def make(self):
        sched = ConflictAwareScheduler("ca0")
        sched.add_replica("d0")
        sched.add_replica("d1")
        sched.add_replica("backup", passive=True)
        return sched

    def test_reads_balance_over_actives(self):
        sched = self.make()
        nodes = {sched.route_read() for _ in range(2)}
        assert nodes == {"d0", "d1"}

    def test_passive_never_serves_reads(self):
        sched = self.make()
        for _ in range(6):
            assert sched.route_read() != "backup"

    def test_updates_write_all_actives(self):
        sched = self.make()
        assert sorted(sched.update_targets()) == ["d0", "d1"]

    def test_backup_lags_until_refresh(self):
        sched = self.make()
        for i in range(4):
            sched.log_update([("UPDATE x", ())])
        assert sched.backup_lag("backup") == 4
        assert sched.backup_lag("d0") == 0  # actives applied synchronously
        batch = sched.refresh_batch("backup")
        assert len(batch) == 4
        assert sched.backup_lag("backup") == 0

    def test_promote_backup_returns_lag(self):
        sched = self.make()
        for _ in range(3):
            sched.log_update([("UPDATE x", ())])
        lag = sched.promote_backup("backup")
        assert lag == 3
        assert "backup" in [r.node_id for r in sched.active_replicas()]

    def test_failover_after_active_death(self):
        sched = self.make()
        sched.remove_replica("d0")
        sched.promote_backup("backup")
        nodes = {sched.route_read() for _ in range(2)}
        assert nodes == {"d1", "backup"}

    def test_promote_unknown_raises(self):
        with pytest.raises(NodeUnavailable):
            self.make().promote_backup("zzz")
