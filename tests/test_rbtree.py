"""Unit and property tests for the red-black tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.rbtree import RedBlackTree


class TestBasics:
    def test_empty(self):
        tree = RedBlackTree()
        assert len(tree) == 0
        assert tree.get(1) is None
        assert 1 not in tree
        assert tree.min_item() is None
        assert tree.max_item() is None

    def test_insert_get(self):
        tree = RedBlackTree()
        tree.insert(5, "five")
        assert tree.get(5) == "five"
        assert 5 in tree
        assert len(tree) == 1

    def test_insert_replaces_payload(self):
        tree = RedBlackTree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.get(5) == "b"
        assert len(tree) == 1

    def test_setdefault(self):
        tree = RedBlackTree()
        bucket = tree.setdefault(3, list)
        bucket.append("x")
        assert tree.setdefault(3, list) == ["x"]

    def test_delete(self):
        tree = RedBlackTree()
        tree.insert(1, "a")
        assert tree.delete(1) is True
        assert tree.delete(1) is False
        assert len(tree) == 0

    def test_min_max(self):
        tree = RedBlackTree()
        for k in (5, 1, 9, 3):
            tree.insert(k, str(k))
        assert tree.min_item() == (1, "1")
        assert tree.max_item() == (9, "9")

    def test_items_sorted(self):
        tree = RedBlackTree()
        for k in (5, 1, 9, 3, 7):
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == [1, 3, 5, 7, 9]

    def test_rotations_counted(self):
        tree = RedBlackTree()
        for k in range(32):  # ascending inserts force rotations
            tree.insert(k, k)
        assert tree.rotations > 0


class TestRange:
    def setup_method(self):
        self.tree = RedBlackTree()
        for k in range(0, 100, 10):
            self.tree.insert(k, k)

    def test_closed_open_range(self):
        assert [k for k, _ in self.tree.range_items(20, 60)] == [20, 30, 40, 50]

    def test_open_low(self):
        assert [k for k, _ in self.tree.range_items(None, 25)] == [0, 10, 20]

    def test_open_high(self):
        assert [k for k, _ in self.tree.range_items(75, None)] == [80, 90]

    def test_full_range(self):
        assert len(list(self.tree.range_items())) == 10

    def test_empty_range(self):
        assert list(self.tree.range_items(41, 49)) == []

    def test_reverse(self):
        assert [k for k, _ in self.tree.range_items(20, 60, reverse=True)] == [50, 40, 30, 20]

    def test_reverse_full(self):
        keys = [k for k, _ in self.tree.range_items(reverse=True)]
        assert keys == sorted(keys, reverse=True)


@settings(max_examples=60)
@given(st.lists(st.integers(min_value=-1000, max_value=1000)))
def test_matches_dict_and_invariants(keys):
    """Tree behaves like a sorted dict and keeps RB invariants throughout."""
    tree = RedBlackTree()
    reference = {}
    for key in keys:
        tree.insert(key, key * 2)
        reference[key] = key * 2
    tree.check_invariants()
    assert len(tree) == len(reference)
    assert [k for k, _ in tree.items()] == sorted(reference)
    # Delete half the keys.
    for key in sorted(set(keys))[::2]:
        assert tree.delete(key)
        del reference[key]
        tree.check_invariants()
    assert [k for k, _ in tree.items()] == sorted(reference)
    for key in reference:
        assert tree.get(key) == reference[key]


@settings(max_examples=30)
@given(
    st.lists(st.integers(min_value=0, max_value=200), min_size=1),
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=200),
)
def test_range_matches_sorted_filter(keys, a, b):
    lo, hi = min(a, b), max(a, b)
    tree = RedBlackTree()
    for key in keys:
        tree.insert(key, None)
    expected = sorted(k for k in set(keys) if lo <= k < hi)
    assert [k for k, _ in tree.range_items(lo, hi)] == expected
    assert [k for k, _ in tree.range_items(lo, hi, reverse=True)] == expected[::-1]


def test_tuple_keys():
    tree = RedBlackTree()
    tree.insert((1, "b"), "x")
    tree.insert((1, "a"), "y")
    tree.insert((0, "z"), "z")
    assert [k for k, _ in tree.items()] == [(0, "z"), (1, "a"), (1, "b")]
