"""Unit tests for the on-disk (InnoDB stand-in) database tier."""

import pytest

from repro.disk import DiskDatabase, DiskModel, WriteAheadLog
from repro.engine import Column, LockWait, TableSchema
from repro.scheduler.querylog import LoggedUpdate

ITEM = TableSchema(
    "item",
    [Column("i_id", "int", nullable=False), Column("i_stock", "int")],
    primary_key=("i_id",),
)


def make_db(pool_pages=4, node_id="d0"):
    db = DiskDatabase(node_id, pool_pages=pool_pages)
    db.create_table(ITEM)
    db.bulk_load("item", [{"i_id": i, "i_stock": 10} for i in range(100)])
    return db


class TestDiskModel:
    def test_random_read_cost(self):
        disk = DiskModel(seek_time=0.005, transfer_rate=1e6, page_bytes=1000)
        assert disk.random_read_cost(2) == pytest.approx(2 * (0.005 + 0.001))

    def test_sequential_cost(self):
        disk = DiskModel(seek_time=0.005, transfer_rate=1e6)
        assert disk.sequential_cost(1_000_000) == pytest.approx(1.005)
        assert disk.sequential_cost(0) == 0.0

    def test_fsync_cost(self):
        assert DiskModel(fsync_time=0.004).fsync_cost(3) == pytest.approx(0.012)


class TestWal:
    def test_append_and_fsync(self):
        wal = WriteAheadLog()
        wal.append_commit(1, [], [("q", ())])
        assert len(wal) == 1
        assert wal.fsync() == 1
        assert wal.fsync() == 0

    def test_bytes_since(self):
        wal = WriteAheadLog()
        wal.append_commit(1, [])
        wal.append_commit(2, [])
        assert wal.bytes_since(1) == 48
        assert wal.total_bytes == 96

    def test_truncate(self):
        wal = WriteAheadLog()
        for i in range(4):
            wal.append_commit(i, [])
        wal.fsync()
        wal.truncate(2)
        assert len(wal) == 2
        assert wal.total_bytes == 96
        assert wal.synced_through == 2


class TestDiskDatabase:
    def test_query_roundtrip(self):
        db = make_db()
        txn = db.begin(read_only=True)
        assert db.execute(txn, "SELECT i_stock FROM item WHERE i_id = 5").scalar() == 10

    def test_commit_appends_wal_and_fsyncs(self):
        db = make_db()
        txn = db.begin()
        db.execute(txn, "UPDATE item SET i_stock = 9 WHERE i_id = 5")
        db.commit(txn)
        assert len(db.wal) == 1
        assert db.counters.get("wal.fsyncs") == 1
        assert db.wal.records_since(0)[0].queries[0][0].startswith("UPDATE")

    def test_read_only_commit_skips_wal(self):
        db = make_db()
        txn = db.begin(read_only=True)
        db.execute(txn, "SELECT i_stock FROM item WHERE i_id = 1")
        db.engine.commit(txn)
        assert len(db.wal) == 0

    def test_buffer_pool_misses_accumulate(self):
        db = make_db(pool_pages=1)  # 100 rows over 2 pages, pool of 1
        for i in (0, 99, 0, 99):
            txn = db.begin(read_only=True)
            db.execute(txn, "SELECT i_stock FROM item WHERE i_id = ?", (i,))
            db.engine.commit(txn)
        assert db.counters.get("cache.misses") >= 3

    def test_io_cost_since(self):
        db = make_db(pool_pages=1)
        snap = db.snapshot_counters()
        txn = db.begin()
        db.execute(txn, "UPDATE item SET i_stock = 1 WHERE i_id = 99")
        db.commit(txn)
        assert db.io_cost_since(snap) > 0

    def test_reader_blocks_on_writer(self):
        db = make_db()
        writer = db.begin()
        db.execute(writer, "UPDATE item SET i_stock = 1 WHERE i_id = 0")
        reader = db.begin(read_only=True)
        with pytest.raises(LockWait):
            db.execute(reader, "SELECT i_stock FROM item WHERE i_id = 0")
        db.abort(reader)
        db.commit(writer)

    def test_apply_logged_update(self):
        db = make_db()
        entry = LoggedUpdate(7, (("UPDATE item SET i_stock = ? WHERE i_id = ?", (3, 1)),))
        db.apply_logged_update(entry)
        txn = db.begin(read_only=True)
        assert db.execute(txn, "SELECT i_stock FROM item WHERE i_id = 1").scalar() == 3
        assert db.counters.get("disk.log_replays") == 1

    def test_replay_batch(self):
        db = make_db()
        entries = [
            LoggedUpdate(i, (("UPDATE item SET i_stock = ? WHERE i_id = ?", (i, i)),))
            for i in range(5)
        ]
        assert db.replay_batch(entries) == 5
        txn = db.begin(read_only=True)
        assert db.execute(txn, "SELECT i_stock FROM item WHERE i_id = 4").scalar() == 4

    def test_abort_discards_queries(self):
        db = make_db()
        txn = db.begin()
        db.execute(txn, "UPDATE item SET i_stock = 1 WHERE i_id = 0")
        db.abort(txn)
        assert len(db.wal) == 0
        ro = db.begin(read_only=True)
        assert db.execute(ro, "SELECT i_stock FROM item WHERE i_id = 0").scalar() == 10
