"""Property-based tests of partial replication's correctness claim.

The union of the partial replicas reconstructs the database: for any
random interest assignment and any random committed write schedule, every
partial replica's confirmed state equals the full-replication reference
restricted to its interest set — and *only* that.  Out-of-interest tables
never advance past the version-0 base image (no leaks), and restricted
frames keep the duplicate filter idempotent under retransmission.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster.interest import InterestSet
from repro.core import MasterReplica, SlaveReplica
from repro.engine import Column, TableSchema, TxnMode
from repro.sql import SqlExecutor

TABLES = ("alpha", "beta", "gamma")
N_ROWS = 8

SCHEMAS = [
    TableSchema(
        name,
        [Column("id", "int", nullable=False), Column("val", "int")],
        primary_key=("id",),
    )
    for name in TABLES
]


def build(interests):
    """One master, one full reference slave, one partial slave per interest."""
    master = MasterReplica("m0")
    reference = SlaveReplica("ref")
    partials = [SlaveReplica(f"p{i}") for i in range(len(interests))]
    rows = [{"id": i, "val": 0} for i in range(N_ROWS)]
    for replica in [master, reference] + partials:
        for schema in SCHEMAS:
            replica.engine.create_table(schema)
            replica.engine.bulk_load(schema.name, rows)
    return master, reference, partials


def table_rows(replica, table):
    txn = replica.engine.begin(TxnMode.READ_ONLY)
    rows = {r[0]: r[1] for _loc, r in replica.engine.table(table).scan(txn)}
    replica.engine.commit(txn)
    return rows


# Each step: one update txn touching one or two tables at one row each.
writes = st.lists(
    st.tuples(
        st.lists(
            st.sampled_from(TABLES), min_size=1, max_size=2, unique=True
        ),
        st.integers(min_value=0, max_value=N_ROWS - 1),
        st.integers(min_value=1, max_value=9),
    ),
    min_size=1,
    max_size=20,
)

interest_assignments = st.lists(
    st.sets(st.sampled_from(TABLES), min_size=1, max_size=len(TABLES)),
    min_size=1,
    max_size=3,
)


@settings(max_examples=40, deadline=None)
@given(interest_assignments, writes, st.booleans())
def test_partial_replicas_union_to_the_full_reference(interests, script, dup):
    """Confirmed state per interest == reference; nothing else moves."""
    master, reference, partials = build(interests)
    isets = [InterestSet.of(*tables) for tables in interests]
    sql = SqlExecutor(master.engine)
    for tables, row, amount in script:
        txn = master.begin_update(write_tables=list(tables))
        for table in tables:
            sql.execute(
                txn,
                f"UPDATE {table} SET val = val + ? WHERE id = ?",
                (amount, row),
            )
        ws = master.pre_commit(txn)
        master.finalize(txn)
        reference.receive(ws)
        for iset, slave in zip(isets, partials):
            restricted = iset.restrict(ws)
            if restricted is None:
                continue
            slave.receive(restricted)
            if dup:
                # A retransmission restricted again must dedup cleanly.
                again = iset.restrict(ws)
                assert again.dedup_key() == restricted.dedup_key()
                assert slave.is_duplicate(again)
    reference.apply_all_pending()
    for slave in partials:
        slave.apply_all_pending()
    for iset, slave in zip(isets, partials):
        for table in TABLES:
            if iset.covers_table(table):
                assert table_rows(slave, table) == table_rows(reference, table)
            else:
                # Out-of-interest tables stay at the version-0 base image.
                assert slave.received_versions.get(table) == 0
                assert table_rows(slave, table) == {i: 0 for i in range(N_ROWS)}
