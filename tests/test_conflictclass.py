"""Unit tests for conflict-class computation and master assignment."""

import pytest

from repro.common.errors import ConfigError
from repro.core import ConflictClassMap

TABLES = ["customer", "address", "orders", "order_line", "cc_xacts", "item", "author", "country"]


class TestClassComputation:
    def test_no_templates_every_table_own_class(self):
        ccm = ConflictClassMap(TABLES)
        assert ccm.num_classes == len(TABLES)

    def test_cowritten_tables_share_class(self):
        ccm = ConflictClassMap(TABLES, [{"orders", "order_line", "cc_xacts", "item"}])
        assert ccm.class_of("orders") == ccm.class_of("item")
        assert ccm.class_of("customer") != ccm.class_of("orders")

    def test_transitive_union(self):
        ccm = ConflictClassMap(TABLES, [{"orders", "item"}, {"item", "cc_xacts"}])
        assert ccm.class_of("orders") == ccm.class_of("cc_xacts")

    def test_single_class_fallback(self):
        ccm = ConflictClassMap.single_class(TABLES)
        assert ccm.num_classes == 1
        assert ccm.class_of_tables(TABLES) == 0

    def test_unknown_table_in_template(self):
        with pytest.raises(ConfigError):
            ConflictClassMap(["a"], [{"a", "zzz"}])

    def test_class_of_unknown_table(self):
        with pytest.raises(ConfigError):
            ConflictClassMap(["a"]).class_of("b")

    def test_class_of_tables_spanning_classes_rejected(self):
        ccm = ConflictClassMap(TABLES, [{"orders", "item"}])
        with pytest.raises(ConfigError):
            ccm.class_of_tables(["orders", "customer"])

    def test_tables_of_class(self):
        ccm = ConflictClassMap(TABLES, [{"orders", "order_line"}])
        cls = ccm.class_of("orders")
        assert set(ccm.tables_of_class(cls)) == {"orders", "order_line"}


class TestMasterAssignment:
    def test_round_robin(self):
        ccm = ConflictClassMap(["a", "b", "c"])
        ccm.assign_masters(["m0", "m1"])
        masters = [ccm.master_of_class(i) for i in range(3)]
        assert masters == ["m0", "m1", "m0"]

    def test_single_master(self):
        ccm = ConflictClassMap.single_class(TABLES)
        ccm.assign_masters(["m0"])
        assert ccm.master_for_tables(["orders", "item"]) == "m0"
        assert ccm.masters_in_use() == ["m0"]

    def test_no_masters_rejected(self):
        with pytest.raises(ConfigError):
            ConflictClassMap(["a"]).assign_masters([])

    def test_unassigned_raises(self):
        with pytest.raises(ConfigError):
            ConflictClassMap(["a"]).master_of_class(0)

    def test_reassign_master_failover(self):
        ccm = ConflictClassMap(["a", "b"])
        ccm.assign_masters(["m0", "m1"])
        moved = ccm.reassign_master("m0", "m9")
        assert moved == 1
        assert ccm.master_of_class(0) == "m9"
        assert ccm.master_of_class(1) == "m1"

    def test_conflicts_with_master(self):
        ccm = ConflictClassMap(["a", "b"])
        ccm.assign_masters(["m0", "m1"])
        assert ccm.conflicts_with_master("m0", ["a"])
        assert not ccm.conflicts_with_master("m0", ["b"])
