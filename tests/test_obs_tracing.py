"""Unit tests for repro.obs: spans, tracer, histograms, Chrome export."""

import json

import pytest

from repro.obs import (
    CORE_STAGES,
    FixedBucketHistogram,
    NULL_SPAN,
    NULL_TRACER,
    StageHistograms,
    TraceLog,
    Tracer,
    span_to_event,
    to_chrome_trace,
    write_chrome_trace,
)
from tests.obs import (
    assert_all_closed,
    assert_no_span_overlap,
    assert_span_order,
    children_of,
    spans_for_txn,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def make_tracer(**kwargs):
    clock = FakeClock()
    return Tracer(now=clock, **kwargs), clock


class TestSpanLifecycle:
    def test_span_records_start_end_and_tags(self):
        tracer, clock = make_tracer()
        span = tracer.span("execute", txn_id=7, node="m0")
        clock.t = 2.5
        span.finish(status="ok")
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5
        assert span.tags == {"node": "m0", "status": "ok"}
        assert span.txn_id == 7

    def test_child_inherits_txn_and_links_parent(self):
        tracer, _ = make_tracer()
        root = tracer.span("txn", txn_id=3)
        child = root.child("schedule", kind="read")
        assert child.txn_id == 3
        assert child.parent_id == root.span_id
        child.finish()
        root.finish()
        assert children_of(tracer, root) == [child]

    def test_finish_is_idempotent(self):
        tracer, clock = make_tracer()
        span = tracer.span("execute")
        clock.t = 1.0
        span.finish(status="ok")
        clock.t = 9.0
        span.finish(status="late")
        assert span.end == 1.0
        assert span.tags["status"] == "ok"
        assert tracer.finished_count == 1

    def test_annotate_merges_tags(self):
        tracer, _ = make_tracer()
        span = tracer.span("apply", page="p1")
        span.annotate(popped=3).annotate(popped=5, coalesced=1)
        assert span.tags == {"page": "p1", "popped": 5, "coalesced": 1}

    def test_context_manager_closes_and_flags_errors(self):
        tracer, _ = make_tracer()
        with tracer.span("schedule") as span:
            pass
        assert span.closed
        with pytest.raises(ValueError):
            with tracer.span("schedule") as failing:
                raise ValueError("boom")
        assert failing.closed
        assert failing.tags["status"] == "error"
        assert failing.tags["error"] == "ValueError"

    def test_open_spans_tracked_until_finish(self):
        tracer, _ = make_tracer()
        span = tracer.span("txn")
        assert tracer.open_spans() == [span]
        with pytest.raises(AssertionError):
            assert_all_closed(tracer)
        span.finish()
        assert tracer.open_spans() == []
        assert_all_closed(tracer)

    def test_instants_are_closed_at_birth(self):
        tracer, clock = make_tracer()
        clock.t = 4.0
        inst = tracer.instant("route", node="s0")
        assert inst.closed
        assert inst.start == inst.end == 4.0
        assert tracer.open_spans() == []
        assert tracer.instant_count == 1


class TestDisabledTracing:
    def test_disabled_tracer_hands_out_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("txn") is NULL_SPAN
        assert tracer.instant("route") is NULL_SPAN
        assert tracer.finished_count == 0

    def test_null_span_is_inert_and_chainable(self):
        span = NULL_SPAN
        assert span.child("x", a=1) is span
        assert span.annotate(b=2) is span
        assert span.finish(status="ok") is span
        assert not span.recording
        assert span.closed
        with span as s:
            assert s is span

    def test_null_tracer_shared_instance_disabled(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.span("anything") is NULL_SPAN

    def test_recording_parent_check_skips_null_parents(self):
        tracer, _ = make_tracer()
        span = tracer.span("execute", parent=NULL_SPAN)
        assert span.parent_id == -1
        span.finish()


class TestTraceLog:
    def test_ring_evicts_oldest_and_counts_drops(self):
        log = TraceLog(capacity=2)
        tracer, _ = make_tracer()
        spans = [tracer.span(f"s{i}").finish() for i in range(3)]
        for s in spans:
            log.append(s)
        assert log.dropped == 1
        assert [s.name for s in log] == ["s1", "s2"]
        assert len(log) == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_tracer_orphans_only_sound_without_drops(self):
        tracer, _ = make_tracer(capacity=2)
        root = tracer.span("txn")
        for i in range(3):
            root.child(f"c{i}").finish()
        root.finish()
        # The ring dropped c0; orphan detection is gated by callers.
        assert tracer.log.dropped > 0

    def test_orphans_empty_for_complete_tree(self):
        tracer, _ = make_tracer()
        root = tracer.span("txn")
        root.child("schedule").finish()
        root.finish()
        assert tracer.orphans() == []

    def test_reset_clears_everything(self):
        tracer, _ = make_tracer()
        tracer.span("execute").finish()
        tracer.instant("route")
        tracer.reset()
        assert tracer.finished_count == 0
        assert tracer.instant_count == 0
        assert len(tracer.log) == 0
        assert tracer.stages.total_count() == 0


class TestHistograms:
    def test_percentiles_of_known_distribution(self):
        h = FixedBucketHistogram()
        for _ in range(99):
            h.record(0.001)
        h.record(1.0)
        assert h.count == 100
        assert h.percentile(50) == pytest.approx(0.001, rel=0.35)
        assert h.percentile(99) == pytest.approx(0.001, rel=0.35)
        assert h.percentile(100) == pytest.approx(1.0, rel=0.35)

    def test_percentile_never_exceeds_max(self):
        h = FixedBucketHistogram()
        h.record(1.0)
        for p in (50, 95, 99, 100):
            assert h.percentile(p) <= 1.0

    def test_zero_and_underflow_report_zero(self):
        h = FixedBucketHistogram()
        h.record(0.0)
        assert h.percentile(50) == 0.0
        assert h.mean() == 0.0

    def test_overflow_bucket_reports_max(self):
        h = FixedBucketHistogram()
        h.record(99999.0)
        assert h.percentile(50) == 99999.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedBucketHistogram().record(-0.1)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            FixedBucketHistogram().percentile(101)

    def test_empty_histogram_summary_is_zero(self):
        s = FixedBucketHistogram().summary()
        assert s["count"] == 0 and s["p95"] == 0.0

    def test_merge_sums_counts_and_max(self):
        a, b = FixedBucketHistogram(), FixedBucketHistogram()
        a.record(0.01)
        b.record(0.1)
        a.merge(b)
        assert a.count == 2
        assert a.max_value == 0.1

    def test_merge_rejects_mismatched_buckets(self):
        with pytest.raises(ValueError):
            FixedBucketHistogram().merge(FixedBucketHistogram(bounds=[1.0, 2.0]))

    def test_stage_table_always_prints_core_stages(self):
        stages = StageHistograms()
        stages.record("execute", 0.002)
        stages.record("weird_extra", 0.5)
        table = stages.table()
        for stage in CORE_STAGES:
            assert stage in table
        assert "weird_extra" in table

    def test_stage_total_count(self):
        stages = StageHistograms()
        stages.record("a", 0.1)
        stages.record("a", 0.2)
        stages.record("b", 0.3)
        assert stages.total_count() == 3


class TestChromeExport:
    def test_span_event_shape(self):
        tracer, clock = make_tracer()
        span = tracer.span("execute", txn_id=5, node="m0")
        clock.t = 0.002
        span.finish(status="ok")
        event = span_to_event(span)
        assert event["ph"] == "X"
        assert event["ts"] == 0.0
        assert event["dur"] == pytest.approx(2000.0)
        assert event["pid"] == "m0"
        assert event["tid"] == 5
        assert event["args"]["span"] == span.span_id

    def test_instant_event_shape(self):
        tracer, _ = make_tracer()
        inst = tracer.instant("route", node="s0")
        event = span_to_event(inst)
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert "dur" not in event

    def test_long_sequences_truncated(self):
        tracer, _ = make_tracer()
        span = tracer.span("precommit", pages=list(range(100))).finish()
        args = span_to_event(span)["args"]
        assert len(args["pages"]) == 33  # 32 items + ellipsis marker
        assert "more" in args["pages"][-1]

    def test_unjsonable_tags_become_repr(self):
        tracer, _ = make_tracer()
        span = tracer.span("x", obj=object()).finish()
        doc = to_chrome_trace([span])
        json.dumps(doc)  # must not raise

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        tracer, clock = make_tracer()
        root = tracer.span("txn", txn_id=1)
        clock.t = 1.0
        root.child("schedule").finish()
        root.finish()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), tracer)
        doc = json.loads(path.read_text())
        assert count == 2 == len(doc["traceEvents"])
        assert doc["displayTimeUnit"] == "ms"

    def test_dropped_spans_reported_in_other_data(self):
        tracer, _ = make_tracer(capacity=1)
        tracer.span("a").finish()
        tracer.span("b").finish()
        doc = to_chrome_trace(tracer)
        assert doc["otherData"]["spans_dropped"] == 1


class TestAssertHelpers:
    def _tree(self):
        tracer, clock = make_tracer()
        root = tracer.span("txn", txn_id=9)
        sched = root.child("schedule")
        clock.t = 1.0
        sched.finish()
        execute = root.child("execute")
        clock.t = 2.0
        execute.finish()
        clock.t = 3.0
        root.finish()
        other = tracer.span("txn", txn_id=10)
        clock.t = 4.0
        other.finish()
        return tracer, root

    def test_spans_for_txn_filters_and_orders(self):
        tracer, _root = self._tree()
        spans = spans_for_txn(tracer, 9)
        assert [s.name for s in spans] == ["txn", "schedule", "execute"]
        assert all(s.txn_id == 9 for s in spans)

    def test_assert_span_order_matches_subsequence(self):
        tracer, _root = self._tree()
        matched = assert_span_order(tracer, "schedule", "execute", txn_id=9)
        assert [s.name for s in matched] == ["schedule", "execute"]

    def test_assert_span_order_raises_with_observed_sequence(self):
        tracer, _root = self._tree()
        with pytest.raises(AssertionError, match="missing.*broadcast"):
            assert_span_order(tracer, "schedule", "broadcast", txn_id=9)

    def test_assert_no_span_overlap_accepts_serial_spans(self):
        tracer, _root = self._tree()
        assert_no_span_overlap(tracer, name="schedule")

    def test_assert_no_span_overlap_rejects_overlap(self):
        tracer, clock = make_tracer()
        a = tracer.span("apply")
        clock.t = 1.0
        b = tracer.span("apply")
        clock.t = 2.0
        a.finish()
        b.finish()
        with pytest.raises(AssertionError, match="overlap"):
            assert_no_span_overlap(tracer, name="apply")
