"""Unit tests for the write-set replication fast path.

Covers delta-encoded UPDATE ops (wire shrinkage, application, eager index
maintenance and its rollback), wire-size memoization on the frozen
dataclasses, group-commit broadcast batching in the simulated cluster, and
the page free-slot hint.
"""

from repro.common.ids import PageId
from repro.common.versions import VersionVector
from repro.core import MasterReplica, SlaveReplica
from repro.engine import Column, IndexDef, TableSchema
from repro.sql import SqlExecutor
from repro.storage.ops import (
    ENCODE_STATS,
    OpKind,
    PageOp,
    apply_op,
    bytes_saved,
    delta_update_op,
    encoded_size,
)
from repro.storage.page import Page

ITEM = TableSchema(
    "item",
    [
        Column("i_id", "int", nullable=False),
        Column("i_title", "str"),
        Column("i_subject", "str"),
        Column("i_stock", "int"),
    ],
    primary_key=("i_id",),
    indexes=[IndexDef("ix_subject", ("i_subject", "i_id"))],
)


def build_pair(n_slaves=1):
    master = MasterReplica("m0")
    slaves = [SlaveReplica(f"s{i}") for i in range(n_slaves)]
    rows = [
        {"i_id": i, "i_title": f"title-{i:04d}-padding-padding", "i_subject": "ARTS",
         "i_stock": 10}
        for i in range(8)
    ]
    for node in [master.engine] + [s.engine for s in slaves]:
        node.create_table(ITEM)
        node.bulk_load("item", rows)
    return master, slaves


def one_update(master, slaves, sql_text, params=()):
    sql = SqlExecutor(master.engine)
    txn = master.begin_update()
    sql.execute(txn, sql_text, params)
    ws = master.pre_commit(txn)
    for slave in slaves:
        slave.receive(ws)
    master.finalize(txn)
    return ws


class TestDeltaEncoding:
    def test_update_ships_delta_not_full_images(self):
        master, slaves = build_pair()
        ws = one_update(master, slaves, "UPDATE item SET i_stock = 3 WHERE i_id = 1")
        (op,) = ws.ops
        assert op.is_delta and op.row is None and op.before is None
        stock_pos = ITEM.position("i_stock")
        assert op.delta_mask == 1 << stock_pos
        assert op.delta == (3,)
        assert op.index_before == ()  # no indexed column changed

    def test_delta_much_smaller_than_full_image(self):
        before = (1, "title-0001-padding-padding", "ARTS", 10)
        after = (1, "title-0001-padding-padding", "ARTS", 3)
        delta = delta_update_op(PageId("item", 0), 1, before, after, ((2, 0),))
        full = PageOp(PageId("item", 0), OpKind.UPDATE, 1, after, before)
        assert encoded_size(delta) < encoded_size(full) / 2
        assert bytes_saved(delta) == encoded_size(full) - encoded_size(delta)

    def test_delta_carries_index_before_columns_when_key_changes(self):
        master, slaves = build_pair()
        ws = one_update(
            master, slaves, "UPDATE item SET i_subject = 'HISTORY' WHERE i_id = 2"
        )
        (op,) = ws.ops
        positions = dict(op.index_before)
        assert positions[ITEM.position("i_subject")] == "ARTS"
        assert positions[ITEM.position("i_id")] == 2

    def test_apply_delta_reconstructs_after_image(self):
        page = Page(PageId("t", 0), 4)
        page.put(0, (7, "x", "old", 1))
        op = delta_update_op(PageId("t", 0), 0, (7, "x", "old", 1), (7, "x", "new", 5))
        apply_op(page, op)
        assert page.get(0) == (7, "x", "new", 5)

    def test_slave_index_follows_delta_update(self):
        master, slaves = build_pair()
        one_update(master, slaves, "UPDATE item SET i_subject = 'MAPS' WHERE i_id = 1")
        slave = slaves[0]
        tag = master.current_versions()
        sql = SqlExecutor(slave.engine)
        ro = slave.begin_read_only(tag)
        got = sql.execute(ro, "SELECT i_id FROM item WHERE i_subject = 'MAPS'")
        slave.engine.commit(ro)
        assert [r[0] for r in got.rows] == [1]

    def test_discard_above_reverts_delta_index_entries(self):
        master, slaves = build_pair()
        slave = slaves[0]
        before_tag = master.current_versions()
        one_update(master, slaves, "UPDATE item SET i_subject = 'MAPS' WHERE i_id = 1")
        dropped = slave.discard_above(before_tag)
        assert dropped == 1
        sql = SqlExecutor(slave.engine)
        ro = slave.begin_read_only(before_tag)
        got = sql.execute(ro, "SELECT i_id FROM item WHERE i_subject = 'ARTS' ORDER BY i_id")
        slave.engine.commit(ro)
        assert [r[0] for r in got.rows] == list(range(8))


class TestSizeMemoization:
    def test_writeset_size_computed_once_across_slaves(self):
        master, slaves = build_pair(n_slaves=3)
        sql = SqlExecutor(master.engine)
        txn = master.begin_update()
        sql.execute(txn, "UPDATE item SET i_stock = 1 WHERE i_id = 0")
        ws = master.pre_commit(txn)
        start = dict(ENCODE_STATS)
        for _ in range(3):  # one "hop" per slave, as the cluster layers do
            ws.byte_size()
        for slave in slaves:
            slave.receive(ws)
        master.finalize(txn)
        assert ENCODE_STATS["writeset_sizes"] - start["writeset_sizes"] == 1
        assert ENCODE_STATS["op_sizes"] - start["op_sizes"] == len(ws.ops)
        ws.bytes_saved()
        ws.bytes_saved()
        assert ENCODE_STATS["op_sizes"] - start["op_sizes"] == len(ws.ops)

    def test_op_size_cached(self):
        op = PageOp(PageId("t", 0), OpKind.INSERT, 0, (1, "abc", "d", 2))
        start = ENCODE_STATS["op_sizes"]
        first = encoded_size(op)
        assert encoded_size(op) == first
        assert ENCODE_STATS["op_sizes"] - start == 1


class TestGroupCommitBatching:
    def _cluster(self):
        from repro.cluster.simcluster import SimDmvCluster

        cluster = SimDmvCluster([ITEM], num_slaves=1, seed=1)
        rows = [
            {"i_id": i, "i_title": f"t{i}", "i_subject": "ARTS", "i_stock": 10}
            for i in range(8)
        ]
        for node in cluster.nodes.values():
            node.engine.bulk_load("item", rows)
        return cluster

    def _write_set(self, master, i):
        sql = SqlExecutor(master.engine)
        txn = master.begin_update()
        sql.execute(txn, "UPDATE item SET i_stock = ? WHERE i_id = ?", (i, i))
        ws = master.pre_commit(txn)
        master.finalize(txn)
        return ws

    def test_concurrent_sends_share_batches(self):
        cluster = self._cluster()
        master = cluster.nodes["m0"].master
        target = cluster.nodes["s0"]
        channel = cluster._channel("m0", target)
        write_sets = [self._write_set(master, i) for i in range(4)]
        acks = []

        def driver():
            for ws in write_sets:
                acks.append(channel.send(ws))
            yield cluster.sim.timeout(0)

        cluster.sim.spawn(driver(), name="driver")
        cluster.run(until=1.0)
        # All four sends land in the same instant, before the channel's
        # drain process wakes: one batch carries all of them.
        assert target.counters.get("net.write_sets_sent") == 4
        assert target.counters.get("net.batches") == 1
        assert target.counters.get("net.bytes_shipped") > 0
        assert target.counters.get("net.bytes_saved_delta") > 0
        assert all(ack.value for ack in acks)
        assert target.slave.pending_op_count() == 4

    def test_sends_while_in_flight_form_second_batch(self):
        cluster = self._cluster()
        master = cluster.nodes["m0"].master
        target = cluster.nodes["s0"]
        channel = cluster._channel("m0", target)
        write_sets = [self._write_set(master, i) for i in range(4)]
        acks = []

        def driver():
            acks.append(channel.send(write_sets[0]))
            # Let the first batch get onto the wire, then pile on while it
            # is still in flight: the stragglers share one follow-up batch.
            yield cluster.sim.timeout(1e-6)
            for ws in write_sets[1:]:
                acks.append(channel.send(ws))

        cluster.sim.spawn(driver(), name="driver")
        cluster.run(until=1.0)
        assert target.counters.get("net.write_sets_sent") == 4
        assert target.counters.get("net.batches") == 2
        assert all(ack.value for ack in acks)

    def test_ack_false_when_target_dead(self):
        cluster = self._cluster()
        master = cluster.nodes["m0"].master
        target = cluster.nodes["s0"]
        channel = cluster._channel("m0", target)
        ws = self._write_set(master, 1)
        target.alive = False
        acks = []

        def driver():
            acks.append(channel.send(ws))
            yield cluster.sim.timeout(0)

        cluster.sim.spawn(driver(), name="driver")
        cluster.run(until=1.0)
        assert acks[0].value is False

    def test_commit_update_still_replicates_end_to_end(self):
        cluster = self._cluster()
        node = cluster.nodes["m0"]
        sql = SqlExecutor(node.engine)
        txn = node.master.begin_update(write_tables=["item"])
        sql.execute(txn, "UPDATE item SET i_stock = 99 WHERE i_id = 3")

        def driver():
            yield cluster.sim.spawn(
                cluster.commit_update(node, txn, [("UPDATE ...", ())]), name="commit"
            )

        cluster.sim.spawn(driver(), name="driver")
        cluster.run(until=2.0)
        slave = cluster.nodes["s0"].slave
        assert slave.received_versions.get("item") == 1
        tag = VersionVector({"item": 1})
        ssql = SqlExecutor(cluster.nodes["s0"].engine)
        ro = slave.begin_read_only(tag)
        got = ssql.execute(ro, "SELECT i_stock FROM item WHERE i_id = 3")
        cluster.nodes["s0"].engine.commit(ro)
        assert got.rows == [(99,)]


class TestFreeSlotHint:
    def test_matches_linear_scan_reference(self):
        import random

        rng = random.Random(7)
        page = Page(PageId("t", 0), 16)
        for step in range(400):
            expected = next((i for i, r in enumerate(page.slots) if r is None), None)
            if not page.full:
                assert page.first_free_slot() == expected
            else:
                assert page.first_free_slot() is None
            slot = rng.randrange(16)
            if page.get(slot) is None and not page.full:
                free = page.first_free_slot()
                page.put(free, (step,))
            else:
                page.put(slot, None)

    def test_full_page_returns_none(self):
        page = Page(PageId("t", 0), 4)
        for i in range(4):
            page.put(page.first_free_slot(), (i,))
        assert page.first_free_slot() is None
        page.put(2, None)
        assert page.first_free_slot() == 2


class TestCoalescingCounters:
    def test_deep_queue_applies_once_per_slot(self):
        master, slaves = build_pair()
        slave = slaves[0]
        for i in range(50):
            one_update(master, slaves, "UPDATE item SET i_stock = ? WHERE i_id = 1", (i,))
        assert slave.pending_op_count() == 50
        slave.apply_all_pending()
        # 50 buffered single-slot updates collapse to one page write.
        assert slave.counters.get("slave.ops_applied") == 1
        assert slave.counters.get("slave.ops_coalesced") == 49
        page = next(iter(master.engine.store.all_pages()))
        mirror = slave.engine.store.get(page.page_id)
        assert mirror.slots == page.slots
        assert mirror.version == page.version
