"""Property-based equivalence of the OCC read path with 2PL.

The optimistic controller must admit exactly the serializable histories
the locking engine did.  Hypothesis generates random interleaved
schedules of read-compute-write transactions and runs them under OCC;
transactions the validator rejects are retried serially afterwards
(the cluster drivers' retry loop, collapsed).  The resulting commit
order is then replayed serially on a fresh 2PL engine: the committed
final states and version vectors must match exactly — if a stale or
dirty read had ever leaked into a committed OCC transaction, the
serial replay would diverge.
"""

from hypothesis import given, settings, strategies as st

from repro.common.errors import TransactionAborted
from repro.engine import (
    Column,
    HeapEngine,
    LockWait,
    OccReadValidation,
    TableSchema,
    TwoPhaseLocking,
    TxnMode,
)
from repro.sql import SqlExecutor

ACCOUNTS = TableSchema(
    "accounts",
    [Column("id", "int", nullable=False), Column("balance", "int")],
    primary_key=("id",),
)

N_ACCOUNTS = 8
INITIAL = 100


def build(controller):
    engine = HeapEngine(controller=controller, rows_per_page=2)
    engine.create_table(ACCOUNTS)
    engine.bulk_load(
        "accounts", [{"id": i, "balance": INITIAL} for i in range(N_ACCOUNTS)]
    )
    return engine


def state_of(engine):
    ro = engine.begin(TxnMode.READ_ONLY)
    rows = sorted(r for _l, r in engine.table("accounts").scan(ro))
    engine.commit(ro)
    return rows


class TxnScript:
    """One read-compute-write transaction: the written value depends on
    the optimistic read, so any stale read surfaces in the final state."""

    def __init__(self, read_acct, write_acct, delta):
        self.read_acct = read_acct
        self.write_acct = write_acct
        self.delta = delta

    def run(self, engine, sql):
        """Execute start-to-finish; raises if the engine rejects it."""
        txn = engine.begin()
        try:
            self.start(sql, txn)
            self.write(sql, txn)
        except (TransactionAborted, LockWait):
            engine.abort(txn)
            raise
        self.commit(engine, txn)

    def start(self, sql, txn):
        self.seen = sql.execute(
            txn, "SELECT balance FROM accounts WHERE id = ?", (self.read_acct,)
        ).scalar()

    def write(self, sql, txn):
        sql.execute(
            txn,
            "UPDATE accounts SET balance = ? WHERE id = ?",
            (self.seen + self.delta, self.write_acct),
        )

    def commit(self, engine, txn):
        engine.commit(txn)


# A schedule: up to 4 transactions, plus an interleaving pattern.  Each
# transaction contributes three schedulable steps (read, write, commit);
# the interleaving is a list of txn indices consumed round-robin.
scripts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_ACCOUNTS - 1),
        st.integers(min_value=0, max_value=N_ACCOUNTS - 1),
        st.integers(min_value=-20, max_value=20),
    ),
    min_size=1,
    max_size=4,
)
interleavings = st.lists(st.integers(min_value=0, max_value=3), max_size=24)


def run_interleaved_occ(engine, sql, txns, order):
    """Drive the schedule; rejected txns retry serially.  Returns commit order."""
    STEPS = ("start", "write", "commit")
    progress = [0] * len(txns)
    handles = [None] * len(txns)
    committed = []
    failed = []

    def step(i):
        if progress[i] >= len(STEPS):
            return
        txn = handles[i]
        if txn is None:
            txn = handles[i] = engine.begin()
        stage = STEPS[progress[i]]
        try:
            if stage == "start":
                txns[i].start(sql, txn)
            elif stage == "write":
                txns[i].write(sql, txn)
            else:
                txns[i].commit(engine, txn)
                committed.append(i)
            progress[i] += 1
        except (TransactionAborted, LockWait):
            engine.abort(txn)
            progress[i] = len(STEPS)
            failed.append(i)

    for i in order:
        if i < len(txns):
            step(i)
    # Drain: finish every in-flight transaction in index order.
    for i in range(len(txns)):
        while progress[i] < len(STEPS):
            step(i)
    # Retry loop for validator-rejected transactions, serially: each must
    # now succeed (no concurrency left to conflict with).
    for i in failed:
        txns[i].run(engine, sql)
        committed.append(i)
    return committed


@settings(max_examples=60, deadline=None)
@given(scripts, interleavings)
def test_occ_schedules_replay_serially_under_2pl(script, order):
    txns = [TxnScript(r, w, d) for r, w, d in script]
    occ = build(OccReadValidation())
    occ_sql = SqlExecutor(occ)
    commit_order = run_interleaved_occ(occ, occ_sql, txns, order)
    assert sorted(commit_order) == list(range(len(txns)))  # all retried to commit

    twopl = build(TwoPhaseLocking())
    twopl_sql = SqlExecutor(twopl)
    replay = [TxnScript(t.read_acct, t.write_acct, t.delta) for t in txns]
    for i in commit_order:
        replay[i].run(twopl, twopl_sql)

    assert state_of(occ) == state_of(twopl)
    assert occ.versions == twopl.versions
    # Every committed OCC transaction observed exactly the value the
    # equivalent serial history reads at its position.
    for occ_txn, serial_txn in zip(txns, replay):
        assert occ_txn.seen == serial_txn.seen


@settings(max_examples=40, deadline=None)
@given(scripts)
def test_serial_occ_equals_serial_2pl(script):
    """With no concurrency at all the two controllers are byte-equivalent."""
    occ = build(OccReadValidation())
    twopl = build(TwoPhaseLocking())
    occ_sql, twopl_sql = SqlExecutor(occ), SqlExecutor(twopl)
    for r, w, d in script:
        TxnScript(r, w, d).run(occ, occ_sql)
        TxnScript(r, w, d).run(twopl, twopl_sql)
    assert state_of(occ) == state_of(twopl)
    assert occ.versions == twopl.versions
    assert occ.counters.get("engine.occ_aborts") == 0


@settings(max_examples=40, deadline=None)
@given(scripts, interleavings)
def test_aborted_occ_transactions_leave_no_trace(script, order):
    """State(schedule with occ aborts, no retries) == state(commits alone)."""
    txns = [TxnScript(r, w, d) for r, w, d in script]
    occ = build(OccReadValidation())
    sql = SqlExecutor(occ)
    STEPS = ("start", "write", "commit")
    progress = [0] * len(txns)
    handles = [None] * len(txns)
    committed = []

    def step(i):
        if progress[i] >= len(STEPS):
            return
        txn = handles[i]
        if txn is None:
            txn = handles[i] = occ.begin()
        try:
            stage = STEPS[progress[i]]
            if stage == "start":
                txns[i].start(sql, txn)
            elif stage == "write":
                txns[i].write(sql, txn)
            else:
                txns[i].commit(occ, txn)
                committed.append(i)
            progress[i] += 1
        except (TransactionAborted, LockWait):
            occ.abort(txn)
            progress[i] = len(STEPS)

    for i in order:
        if i < len(txns):
            step(i)
    for i in range(len(txns)):
        while progress[i] < len(STEPS):
            step(i)

    # Replay ONLY the committed transactions serially on a fresh engine.
    clean = build(OccReadValidation())
    clean_sql = SqlExecutor(clean)
    for i in committed:
        TxnScript(txns[i].read_acct, txns[i].write_acct, txns[i].delta).run(
            clean, clean_sql
        )
    assert state_of(occ) == state_of(clean)
    assert occ.versions == clean.versions
