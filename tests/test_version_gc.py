"""Tests for version garbage collection of deleted index entries."""

import pytest

from repro.common.versions import VersionVector
from repro.core import MasterReplica, SlaveReplica
from repro.engine import Column, TableSchema
from repro.sql import SqlExecutor

ITEM = TableSchema(
    "item",
    [Column("i_id", "int", nullable=False), Column("i_stock", "int")],
    primary_key=("i_id",),
)


def build():
    master = MasterReplica("m0")
    slave = SlaveReplica("s0")
    for engine in (master.engine, slave.engine):
        engine.create_table(ITEM)
        engine.bulk_load("item", [{"i_id": i, "i_stock": 10} for i in range(30)])
    return master, slave


def delete_row(master, slave, i):
    sql = SqlExecutor(master.engine)
    txn = master.begin_update(write_tables=["item"])
    sql.execute(txn, "DELETE FROM item WHERE i_id = ?", (i,))
    ws = master.pre_commit(txn)
    slave.receive(ws)
    master.finalize(txn)


class TestFloorWith:
    def test_elementwise_min(self):
        a = VersionVector({"x": 5, "y": 2})
        b = VersionVector({"x": 3, "y": 7, "z": 1})
        a.floor_with(b)
        assert a.as_dict() == {"x": 3, "y": 2, "z": 0}

    def test_missing_entries_floor_to_zero(self):
        a = VersionVector({"x": 5})
        a.floor_with(VersionVector())
        assert a.get("x") == 0


class TestSlaveGc:
    def test_deleted_entries_collected(self):
        master, slave = build()
        for i in range(5):
            delete_row(master, slave, i)
        latest = master.current_versions()
        entries_before = slave.engine.table("item").pk_index.entry_count
        removed = slave.gc_versions(latest)
        assert removed == 5
        assert slave.engine.table("item").pk_index.entry_count == entries_before - 5
        assert slave.counters.get("slave.gc_entries") == 5

    def test_active_reader_pins_old_versions(self):
        master, slave = build()
        delete_row(master, slave, 1)          # deleted at v1
        old_reader = slave.begin_read_only(VersionVector({"item": 0}))
        delete_row(master, slave, 2)          # deleted at v2
        latest = master.current_versions()    # v2
        removed = slave.gc_versions(latest)
        # Nothing collectible: the active reader's tag (v0) floors the
        # watermark below both deletes.
        assert removed == 0
        sql = SqlExecutor(slave.engine)
        assert sql.execute(old_reader, "SELECT COUNT(*) FROM item").scalar() == 30
        slave.engine.commit(old_reader)
        assert slave.gc_versions(latest) == 2

    def test_gc_idempotent(self):
        master, slave = build()
        delete_row(master, slave, 3)
        latest = master.current_versions()
        assert slave.gc_versions(latest) == 1
        assert slave.gc_versions(latest) == 0

    def test_live_entries_survive(self):
        master, slave = build()
        delete_row(master, slave, 3)
        slave.gc_versions(master.current_versions())
        sql = SqlExecutor(slave.engine)
        txn = slave.begin_read_only(master.current_versions())
        assert sql.execute(txn, "SELECT COUNT(*) FROM item").scalar() == 29


class TestClusterGcDaemon:
    def test_daemon_bounds_entry_growth(self):
        from repro.cluster.simcluster import SimDmvCluster
        from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale

        scale = TpcwScale(num_items=60, num_customers=173)
        cluster = SimDmvCluster(TPCW_SCHEMAS, num_slaves=2, gc_period=5.0)
        cluster.load(TpcwDataGenerator(scale, seed=2))
        cluster.warm_all_caches()
        cluster.start_browsers(8, MIXES["ordering"], scale, think_time_mean=0.3)
        cluster.run(until=60.0)
        collected = sum(
            n.counters.get("slave.gc_entries") for n in cluster.nodes.values()
        )
        # The ordering mix clears cart lines constantly: GC must collect.
        assert collected > 0
