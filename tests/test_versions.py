"""Unit tests for the DBVersion version vector."""

from hypothesis import given, strategies as st

from repro.common.versions import VersionVector


class TestBasics:
    def test_absent_entries_read_zero(self):
        assert VersionVector().get("item") == 0

    def test_increment(self):
        v = VersionVector()
        v.increment(["item", "orders"])
        v.increment(["item"])
        assert v.get("item") == 2
        assert v.get("orders") == 1

    def test_set(self):
        v = VersionVector()
        v.set("item", 7)
        assert v.get("item") == 7

    def test_merge_elementwise_max(self):
        a = VersionVector({"item": 3, "orders": 1})
        b = VersionVector({"item": 2, "orders": 5, "author": 1})
        a.merge(b)
        assert a.as_dict() == {"item": 3, "orders": 5, "author": 1}

    def test_dominates(self):
        a = VersionVector({"item": 3, "orders": 5})
        b = VersionVector({"item": 3})
        assert a.dominates(b)
        assert not b.dominates(a)
        assert a.dominates(a)

    def test_dominates_treats_missing_as_zero(self):
        a = VersionVector({"item": 1})
        assert a.dominates(VersionVector())
        assert not VersionVector().dominates(a)

    def test_copy_is_independent(self):
        a = VersionVector({"item": 1})
        b = a.copy()
        b.increment(["item"])
        assert a.get("item") == 1
        assert b.get("item") == 2

    def test_equality_ignores_zero_entries(self):
        assert VersionVector({"item": 0}) == VersionVector()
        assert VersionVector({"item": 1}) != VersionVector()

    def test_hash_consistent_with_eq(self):
        assert hash(VersionVector({"item": 0})) == hash(VersionVector())
        assert hash(VersionVector({"item": 2})) == hash(VersionVector({"item": 2}))

    def test_total(self):
        assert VersionVector({"a": 2, "b": 3}).total() == 5

    def test_items_sorted(self):
        v = VersionVector({"b": 1, "a": 2})
        assert list(v.items()) == [("a", 2), ("b", 1)]


versions = st.dictionaries(
    st.sampled_from(["item", "orders", "customer", "author"]),
    st.integers(min_value=0, max_value=50),
    max_size=4,
)


@given(versions, versions)
def test_merge_is_lub(a_dict, b_dict):
    """merge(a, b) dominates both and is the least such vector."""
    a, b = VersionVector(a_dict), VersionVector(b_dict)
    merged = a.copy().merge(b)
    assert merged.dominates(a)
    assert merged.dominates(b)
    for table in set(a_dict) | set(b_dict):
        assert merged.get(table) == max(a.get(table), b.get(table))


@given(versions, versions)
def test_merge_commutative(a_dict, b_dict):
    a, b = VersionVector(a_dict), VersionVector(b_dict)
    assert a.copy().merge(b) == b.copy().merge(a)


@given(versions)
def test_merge_idempotent(a_dict):
    a = VersionVector(a_dict)
    assert a.copy().merge(a) == a
