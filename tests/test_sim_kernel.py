"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Event, Interrupt, Simulator, Timeout


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now() == 0.0

    def test_schedule_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for tag in ("x", "y", "z"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["x", "y", "z"]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, 1)
        sim.schedule(15.0, fired.append, 2)
        sim.run(until=10.0)
        assert fired == [1]
        assert sim.now() == 10.0
        sim.run()
        assert fired == [1, 2]

    def test_run_until_advances_clock_with_empty_heap(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now() == 42.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)


class TestProcesses:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        seen = []

        def proc():
            yield sim.timeout(4.0)
            seen.append(sim.now())

        sim.spawn(proc())
        sim.run()
        assert seen == [4.0]

    def test_process_return_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return 99

        p = sim.spawn(proc())
        assert sim.run_until_complete(p) == 99

    def test_wait_on_child_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(3.0)
            return "done"

        def parent():
            result = yield sim.spawn(child())
            return (result, sim.now())

        p = sim.spawn(parent())
        assert sim.run_until_complete(p) == ("done", 3.0)

    def test_wait_on_event_value(self):
        sim = Simulator()
        evt = sim.event()

        def waiter():
            value = yield evt
            return value

        def trigger():
            yield sim.timeout(2.0)
            evt.succeed("payload")

        p = sim.spawn(waiter())
        sim.spawn(trigger())
        assert sim.run_until_complete(p) == "payload"

    def test_wait_on_already_triggered_event(self):
        sim = Simulator()
        evt = sim.event()
        evt.succeed(7)

        def waiter():
            value = yield evt
            return value

        p = sim.spawn(waiter())
        assert sim.run_until_complete(p) == 7

    def test_failed_event_raises_in_waiter(self):
        sim = Simulator()
        evt = sim.event()

        def waiter():
            try:
                yield evt
            except RuntimeError as exc:
                return f"caught:{exc}"

        def failer():
            yield sim.timeout(1.0)
            evt.fail(RuntimeError("boom"))

        p = sim.spawn(waiter())
        sim.spawn(failer())
        assert sim.run_until_complete(p) == "caught:boom"

    def test_unhandled_process_exception_propagates(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("oops")

        sim.spawn(bad())
        with pytest.raises(ValueError, match="oops"):
            sim.run()

    def test_yielding_non_event_fails_process(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.spawn(bad())
        with pytest.raises(TypeError):
            sim.run()

    def test_double_trigger_rejected(self):
        sim = Simulator()
        evt = sim.event()
        evt.succeed(1)
        with pytest.raises(RuntimeError):
            evt.succeed(2)

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Timeout(sim, -0.5)


class TestInterrupt:
    def test_interrupt_delivered(self):
        sim = Simulator()
        log = []

        def proc():
            try:
                yield sim.timeout(100.0)
            except Interrupt as exc:
                log.append(("interrupted", exc.cause, sim.now()))

        p = sim.spawn(proc())

        def killer():
            yield sim.timeout(5.0)
            p.interrupt("node-failure")

        sim.spawn(killer())
        sim.run()
        assert log == [("interrupted", "node-failure", 5.0)]

    def test_interrupt_finished_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)

        p = sim.spawn(quick())
        sim.run()
        p.interrupt("late")  # must not raise
        assert p.triggered

    def test_uncaught_interrupt_cancels_silently(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(100.0)

        p = sim.spawn(proc())
        sim.schedule(1.0, p.interrupt, "kill")
        sim.run()  # must not raise
        assert p.triggered and p.dead

    def test_process_continues_after_caught_interrupt(self):
        sim = Simulator()

        def proc():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(2.0)
            return sim.now()

        p = sim.spawn(proc())
        sim.schedule(10.0, p.interrupt, None)
        assert sim.run_until_complete(p) == 12.0

    def test_alive_flag(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(5.0)

        p = sim.spawn(proc())
        sim.run(until=1.0)
        assert p.alive
        sim.run()
        assert not p.alive


class TestAnyOf:
    def test_first_wins(self):
        sim = Simulator()

        def slow():
            yield sim.timeout(10.0)
            return "slow"

        def fast():
            yield sim.timeout(2.0)
            return "fast"

        def waiter():
            event, value = yield sim.any_of([sim.spawn(slow(), "s"), sim.spawn(fast(), "f")])
            return value, sim.now()

        p = sim.spawn(waiter())
        assert sim.run_until_complete(p) == ("fast", 2.0)
