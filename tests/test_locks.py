"""Unit tests for the lock manager: modes, queues, upgrades, deadlocks."""

import pytest

from repro.common.errors import DeadlockDetected
from repro.engine.locks import LockManager, LockMode

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


class TestGranting:
    def test_immediate_grant(self):
        lm = LockManager()
        assert lm.acquire(1, "p", X).granted

    def test_shared_locks_coexist(self):
        lm = LockManager()
        assert lm.acquire(1, "p", S).granted
        assert lm.acquire(2, "p", S).granted

    def test_exclusive_blocks_shared(self):
        lm = LockManager()
        lm.acquire(1, "p", X)
        assert not lm.acquire(2, "p", S).granted

    def test_shared_blocks_exclusive(self):
        lm = LockManager()
        lm.acquire(1, "p", S)
        assert not lm.acquire(2, "p", X).granted

    def test_reentrant_same_mode(self):
        lm = LockManager()
        lm.acquire(1, "p", X)
        assert lm.acquire(1, "p", X).granted

    def test_x_holder_may_reacquire_s(self):
        lm = LockManager()
        lm.acquire(1, "p", X)
        assert lm.acquire(1, "p", S).granted

    def test_different_resources_independent(self):
        lm = LockManager()
        lm.acquire(1, "p", X)
        assert lm.acquire(2, "q", X).granted


class TestRelease:
    def test_release_grants_waiter(self):
        lm = LockManager()
        lm.acquire(1, "p", X)
        waiting = lm.acquire(2, "p", X)
        lm.release_all(1)
        assert waiting.granted

    def test_fifo_order(self):
        lm = LockManager()
        lm.acquire(1, "p", X)
        first = lm.acquire(2, "p", X)
        second = lm.acquire(3, "p", X)
        lm.release_all(1)
        assert first.granted and not second.granted

    def test_batch_shared_grant(self):
        lm = LockManager()
        lm.acquire(1, "p", X)
        r2 = lm.acquire(2, "p", S)
        r3 = lm.acquire(3, "p", S)
        r4 = lm.acquire(4, "p", X)
        lm.release_all(1)
        assert r2.granted and r3.granted and not r4.granted

    def test_shared_waits_behind_queued_exclusive(self):
        lm = LockManager()
        lm.acquire(1, "p", S)
        pending_x = lm.acquire(2, "p", X)
        late_s = lm.acquire(3, "p", S)
        assert not late_s.granted  # no X starvation
        lm.release_all(1)
        assert pending_x.granted and not late_s.granted
        lm.release_all(2)
        assert late_s.granted

    def test_release_purges_queued_requests(self):
        lm = LockManager()
        lm.acquire(1, "p", X)
        lm.acquire(2, "p", X)
        lm.release_all(2)  # 2 gives up while queued
        waiting = lm.acquire(3, "p", X)
        lm.release_all(1)
        assert waiting.granted

    def test_grant_callback(self):
        lm = LockManager()
        lm.acquire(1, "p", X)
        waiting = lm.acquire(2, "p", X)
        fired = []
        waiting.on_grant(lambda r: fired.append(r.txn_id))
        lm.release_all(1)
        assert fired == [2]

    def test_callback_on_already_granted(self):
        lm = LockManager()
        request = lm.acquire(1, "p", X)
        fired = []
        request.on_grant(lambda r: fired.append(True))
        assert fired == [True]


class TestUpgrade:
    def test_sole_holder_upgrades_immediately(self):
        lm = LockManager()
        lm.acquire(1, "p", S)
        assert lm.acquire(1, "p", X).granted
        assert lm.mode_held(1, "p") is X

    def test_upgrade_waits_for_other_sharers(self):
        lm = LockManager()
        lm.acquire(1, "p", S)
        lm.acquire(2, "p", S)
        upgrade = lm.acquire(1, "p", X)
        assert not upgrade.granted
        lm.release_all(2)
        assert upgrade.granted

    def test_dual_upgrade_deadlock(self):
        lm = LockManager()
        lm.acquire(1, "p", S)
        lm.acquire(2, "p", S)
        lm.acquire(1, "p", X)  # waits on 2
        with pytest.raises(DeadlockDetected):
            lm.acquire(2, "p", X)  # waits on 1 -> cycle
        assert lm.deadlocks == 1


class TestDeadlock:
    def test_two_resource_cycle(self):
        lm = LockManager()
        lm.acquire(1, "p", X)
        lm.acquire(2, "q", X)
        lm.acquire(1, "q", X)  # 1 waits on 2
        with pytest.raises(DeadlockDetected):
            lm.acquire(2, "p", X)  # 2 waits on 1 -> cycle

    def test_three_txn_cycle(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        lm.acquire(3, "c", X)
        lm.acquire(1, "b", X)
        lm.acquire(2, "c", X)
        with pytest.raises(DeadlockDetected):
            lm.acquire(3, "a", X)

    def test_chain_without_cycle_allowed(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        request = lm.acquire(2, "a", X)  # 2 waits on 1: fine
        assert not request.granted
        lm.release_all(1)
        assert request.granted

    def test_victim_not_enqueued(self):
        lm = LockManager()
        lm.acquire(1, "p", X)
        lm.acquire(2, "q", X)
        lm.acquire(1, "q", X)
        with pytest.raises(DeadlockDetected):
            lm.acquire(2, "p", X)
        # After the victim aborts and releases, the survivor proceeds.
        lm.release_all(2)
        assert lm.mode_held(1, "q") is X


class TestIntrospection:
    def test_held_set(self):
        lm = LockManager()
        lm.acquire(1, "p", S)
        lm.acquire(1, "q", X)
        assert lm.held(1) == {"p", "q"}
        lm.release_all(1)
        assert lm.held(1) == set()

    def test_holders_of(self):
        lm = LockManager()
        lm.acquire(1, "p", S)
        lm.acquire(2, "p", S)
        assert lm.holders_of("p") == {1: S, 2: S}

    def test_exclusively_locked(self):
        lm = LockManager()
        lm.acquire(1, "p", S)
        assert not lm.exclusively_locked("p")
        lm.acquire(2, "q", X)
        assert lm.exclusively_locked("q")

    def test_is_locked(self):
        lm = LockManager()
        assert not lm.is_locked("p")
        lm.acquire(1, "p", S)
        assert lm.is_locked("p")
        lm.release_all(1)
        assert not lm.is_locked("p")

    def test_stats(self):
        lm = LockManager()
        lm.acquire(1, "p", X)
        lm.acquire(2, "p", X)
        assert lm.grants == 1
        assert lm.waits == 1
