"""Unit tests for TPC-W schema, scale, mixes and data generation."""

import pytest

from repro.engine import HeapEngine
from repro.common.rng import RngStream
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale, tpcw_conflict_map
from repro.tpcw.mixes import UPDATE_INTERACTIONS
from repro.tpcw.schema import SUBJECTS


class TestScale:
    def test_defaults_follow_ratios(self):
        scale = TpcwScale(num_items=1000, num_customers=2880)
        assert scale.num_authors == 250
        assert scale.num_orders == 2592
        assert scale.num_addresses == 5760
        assert scale.num_countries == 92

    def test_paper_standard(self):
        scale = TpcwScale.paper_standard()
        assert scale.num_items == 100_000
        assert scale.num_customers == 288_000

    def test_paper_large(self):
        assert TpcwScale.paper_large().num_customers == 400_000


class TestSchemas:
    def test_ten_tables(self):
        assert len(TPCW_SCHEMAS) == 10

    def test_the_papers_eight_plus_cart(self):
        names = {s.name for s in TPCW_SCHEMAS}
        assert {
            "customer", "address", "orders", "order_line", "cc_xacts",
            "item", "author", "country",
        } <= names
        assert {"shopping_cart", "shopping_cart_line"} <= names

    def test_conflict_map_single(self):
        ccm = tpcw_conflict_map()
        assert ccm.num_classes == 1

    def test_conflict_map_multi(self):
        ccm = tpcw_conflict_map(multi_master=True)
        # Ordering-path tables and registration tables are disjoint classes.
        assert ccm.class_of("item") == ccm.class_of("orders")
        assert ccm.class_of("customer") == ccm.class_of("address")
        assert ccm.class_of("item") != ccm.class_of("customer")


class TestMixes:
    def test_three_mixes(self):
        assert set(MIXES) == {"browsing", "shopping", "ordering"}

    @pytest.mark.parametrize(
        "mix,target", [("browsing", 0.05), ("shopping", 0.20), ("ordering", 0.50)]
    )
    def test_update_fractions_match_paper(self, mix, target):
        """Paper §5.1: 5 %, 20 %, 50 % update transactions."""
        assert MIXES[mix].update_fraction() == pytest.approx(target, abs=0.03)

    def test_all_fourteen_interactions(self):
        for mix in MIXES.values():
            assert len(mix.weights) == 14

    def test_pick_follows_weights(self):
        rng = RngStream(1, "mix")
        picks = [MIXES["ordering"].pick(rng) for _ in range(2000)]
        update_frac = sum(1 for p in picks if p in UPDATE_INTERACTIONS) / len(picks)
        assert 0.44 < update_frac < 0.56


class TestDataGen:
    def test_populate_counts(self):
        scale = TpcwScale(num_items=50, num_customers=144)
        engine = HeapEngine()
        counts = TpcwDataGenerator(scale, seed=1).populate(engine)
        assert counts["item"] == 50
        assert counts["customer"] == 144
        assert counts["country"] == 92
        assert counts["author"] == 12
        assert counts["orders"] == 129
        assert counts["order_line"] >= counts["orders"]

    def test_deterministic(self):
        scale = TpcwScale(num_items=20, num_customers=58)
        rows1 = list(TpcwDataGenerator(scale, seed=7).items())
        rows2 = list(TpcwDataGenerator(scale, seed=7).items())
        assert rows1 == rows2

    def test_different_seed_differs(self):
        scale = TpcwScale(num_items=20, num_customers=58)
        rows1 = list(TpcwDataGenerator(scale, seed=7).items())
        rows2 = list(TpcwDataGenerator(scale, seed=8).items())
        assert rows1 != rows2

    def test_items_reference_valid_authors(self):
        scale = TpcwScale(num_items=40, num_customers=115)
        gen = TpcwDataGenerator(scale)
        for item in gen.items():
            assert 1 <= item["i_a_id"] <= scale.num_authors
            assert item["i_subject"] in SUBJECTS
            for k in range(1, 6):
                assert 1 <= item[f"i_related{k}"] <= scale.num_items

    def test_order_lines_reference_valid_orders(self):
        scale = TpcwScale(num_items=40, num_customers=115)
        gen = TpcwDataGenerator(scale)
        for line in gen.order_lines():
            assert 1 <= line["ol_o_id"] <= scale.num_orders
            assert 1 <= line["ol_i_id"] <= scale.num_items

    def test_usernames_deterministic(self):
        assert TpcwDataGenerator.uname_of(42) == "USER00000042"
