"""Property-based tests reconciling the tracing layer with the counters.

The tracer is a *parallel* accounting system: every materialisation emits
an ``apply`` span tagged with the op counts the slave also feeds into its
:class:`~repro.common.counters.Counters`.  If the two ever disagree, one
of them is lying.  Hypothesis drives randomized transfer scripts and read
orders and checks:

* **tag/counter reconciliation** — the sums of ``applied``/``coalesced``
  tags over all apply spans equal the slave's counter totals;
* **span conservation** — every finished span lands in exactly one stage
  histogram (or the instant count): no span is double-counted or lost;
* **quiescence hygiene** — after the workload drains there are no open
  spans and no orphans (children whose parent never reached the log);
* **histogram sanity** — percentiles are monotone in ``p``, bounded by
  the true extrema, and the count equals the number of records.
"""

from hypothesis import given, settings, strategies as st

from repro.common.counters import Counters
from repro.core import MasterReplica, SlaveReplica
from repro.engine import Column, TableSchema
from repro.obs import FixedBucketHistogram, Tracer
from repro.sql import SqlExecutor

ACCOUNTS = TableSchema(
    "accounts",
    [Column("id", "int", nullable=False), Column("balance", "int")],
    primary_key=("id",),
)

N_ACCOUNTS = 12
INITIAL = 100


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def tick(self, dt: float = 1.0) -> None:
        self.t += dt

    def __call__(self) -> float:
        return self.t


def build(n_slaves=1, rows_per_page=2):
    from repro.engine import HeapEngine
    from repro.engine.engine import TwoPhaseLocking

    master = MasterReplica(
        "m0",
        engine=HeapEngine(controller=TwoPhaseLocking(), rows_per_page=rows_per_page),
    )
    slaves = []
    for i in range(n_slaves):
        slave = SlaveReplica(f"s{i}", engine=HeapEngine(rows_per_page=rows_per_page))
        slaves.append(slave)
    rows = [{"id": i, "balance": INITIAL} for i in range(N_ACCOUNTS)]
    for engine in [master.engine] + [s.engine for s in slaves]:
        engine.create_table(ACCOUNTS)
        engine.bulk_load("accounts", rows)
    return master, slaves


transfers = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_ACCOUNTS - 1),
        st.integers(min_value=0, max_value=N_ACCOUNTS - 1),
        st.integers(min_value=1, max_value=20),
    ),
    min_size=1,
    max_size=25,
)


def commit_transfer(master, slaves, src, dst, amount):
    sql = SqlExecutor(master.engine)
    txn = master.begin_update(write_tables=["accounts"])
    sql.execute(txn, "UPDATE accounts SET balance = balance - ? WHERE id = ?", (amount, src))
    sql.execute(txn, "UPDATE accounts SET balance = balance + ? WHERE id = ?", (amount, dst))
    ws = master.pre_commit(txn)
    for slave in slaves:
        slave.receive(ws)
    master.finalize(txn)
    return master.current_versions()


def traced_lazy_drain(slave, tag, tracer, clock, ids):
    """Read every account at ``tag`` under a traced root, one txn per read."""
    sql = SqlExecutor(slave.engine)
    for account in ids:
        txn = slave.begin_read_only(tag)
        root = tracer.span("txn", txn_id=txn.txn_id, kind="read", node=slave.node_id)
        txn.obs_span = root
        clock.tick(0.25)
        sql.execute(txn, "SELECT balance FROM accounts WHERE id = ?", (account,))
        slave.engine.commit(txn)
        clock.tick(0.25)
        root.finish(status="committed")


@settings(max_examples=30, deadline=None)
@given(transfers, st.randoms(use_true_random=False))
def test_apply_span_tags_reconcile_with_slave_counters(script, rng):
    """sum(applied)/sum(coalesced) over apply spans == the slave's counters."""
    master, slaves = build(n_slaves=1)
    slave = slaves[0]
    clock = FakeClock()
    tracer = Tracer(now=clock)
    final = None
    for src, dst, amount in script:
        final = commit_transfer(master, slaves, src, dst, amount)
    ids = list(range(N_ACCOUNTS))
    rng.shuffle(ids)
    traced_lazy_drain(slave, final, tracer, clock, ids)
    applies = tracer.spans_named("apply")
    assert sum(s.tags["applied"] for s in applies) == slave.counters.get(
        "slave.ops_applied"
    )
    assert sum(s.tags["coalesced"] for s in applies) == slave.counters.get(
        "slave.ops_coalesced"
    )
    # Every buffered op was either applied or coalesced away: the span-side
    # popped totals account for the full buffer (queues are fully drained
    # because every page was read at the final tag).
    assert sum(s.tags["popped"] for s in applies) == slave.counters.get(
        "slave.ops_buffered"
    )
    assert not slave.pending


@settings(max_examples=30, deadline=None)
@given(transfers, st.randoms(use_true_random=False))
def test_span_conservation_and_quiescence(script, rng):
    """Stage histogram counts + instants == finished spans; nothing open."""
    master, slaves = build(n_slaves=1)
    slave = slaves[0]
    clock = FakeClock()
    tracer = Tracer(now=clock)
    final = None
    for src, dst, amount in script:
        final = commit_transfer(master, slaves, src, dst, amount)
    ids = list(range(N_ACCOUNTS))
    rng.shuffle(ids)
    traced_lazy_drain(slave, final, tracer, clock, ids)
    tracer.instant("route", node=slave.node_id)  # instants count separately
    assert tracer.stages.total_count() + tracer.instant_count == tracer.finished_count
    assert tracer.open_spans() == []
    assert tracer.log.dropped == 0
    assert tracer.orphans() == []
    # Per-stage reconciliation: each stage histogram's count equals the
    # number of finished (non-instant) spans bearing that name.
    by_name = {}
    for span in tracer.finished():
        if not span.instant:
            by_name[span.name] = by_name.get(span.name, 0) + 1
    for name in tracer.stages.stage_names():
        assert tracer.stages.get(name).count == by_name.get(name, 0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=1, max_size=60
    )
)
def test_histogram_percentiles_monotone_and_bounded(samples):
    hist = FixedBucketHistogram()
    for value in samples:
        hist.record(value)
    assert hist.count == len(samples)
    previous = 0.0
    for p in (0, 25, 50, 75, 95, 99, 100):
        quantile = hist.percentile(p)
        assert quantile >= previous or quantile == 0.0
        assert quantile <= max(samples)
        previous = quantile


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(1, 100)),
        max_size=40,
    )
)
def test_counter_delta_roundtrip_through_reset(ops):
    """delta_since + merge reconstruct totals even across a mid-window reset."""
    live = Counters()
    mirror = Counters()
    snap = live.snapshot()
    for i, (name, amount) in enumerate(ops):
        live.add(name, amount)
        if i == len(ops) // 2:
            mirror.merge(live.delta_since(snap))
            live.reset()
            snap = live.snapshot()
    mirror.merge(live.delta_since(snap))
    totals = {}
    for name, amount in ops:
        totals[name] = totals.get(name, 0) + amount
    for name, expected in totals.items():
        assert mirror.get(name) == expected
