"""Unit tests for the page-cache model and fuzzy checkpointing."""

import pytest

from repro.common.ids import PageId
from repro.storage import FuzzyCheckpointer, PageCache, PageStore, StableStore


def pid(n, table="item"):
    return PageId(table, n)


class TestPageCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PageCache(0)

    def test_miss_then_hit(self):
        cache = PageCache(4)
        assert cache.touch(pid(1)) is False
        assert cache.touch(pid(1)) is True
        assert cache.counters.get("cache.hits") == 1
        assert cache.counters.get("cache.misses") == 1

    def test_lru_eviction(self):
        cache = PageCache(2)
        cache.touch(pid(1))
        cache.touch(pid(2))
        cache.touch(pid(3))  # evicts 1
        assert not cache.resident(pid(1))
        assert cache.resident(pid(2))
        assert cache.resident(pid(3))
        assert cache.counters.get("cache.evictions") == 1

    def test_touch_refreshes_lru_position(self):
        cache = PageCache(2)
        cache.touch(pid(1))
        cache.touch(pid(2))
        cache.touch(pid(1))  # 2 is now coldest
        cache.touch(pid(3))
        assert cache.resident(pid(1))
        assert not cache.resident(pid(2))

    def test_warm_counts_new_pages_and_no_misses(self):
        cache = PageCache(4)
        added = cache.warm([pid(1), pid(2), pid(1)])
        assert added == 2
        assert cache.counters.get("cache.misses") == 0
        assert cache.resident(pid(1))

    def test_invalidate_all(self):
        cache = PageCache(4)
        cache.touch(pid(1))
        cache.invalidate_all()
        assert cache.resident_count() == 0

    def test_hottest_order(self):
        cache = PageCache(4)
        for n in (1, 2, 3):
            cache.touch(pid(n))
        assert cache.hottest(2) == [pid(3), pid(2)]

    def test_hit_ratio(self):
        cache = PageCache(4)
        assert cache.hit_ratio() == 0.0
        cache.touch(pid(1))
        cache.touch(pid(1))
        assert cache.hit_ratio() == 0.5


def build_store(n_pages=4, rows=3):
    store = PageStore(rows_per_page=8)
    for p in range(n_pages):
        page = store.allocate("item")
        for s in range(rows):
            page.put(s, (p * 100 + s, f"r{p}.{s}"))
        page.version = p + 1
    return store


class TestStableStore:
    def test_flush_and_load(self):
        store = build_store()
        stable = StableStore()
        page = store.get(pid(0))
        stable.flush_page(page)
        image = stable.load(pid(0))
        assert image.version == 1
        assert image.page.live_rows == 3

    def test_flush_is_snapshot(self):
        store = build_store()
        stable = StableStore()
        page = store.get(pid(0))
        stable.flush_page(page)
        page.put(0, None)  # mutate after flush
        assert stable.load(pid(0)).page.live_rows == 3

    def test_version_map(self):
        store = build_store(2)
        stable = StableStore()
        for page in store.all_pages():
            stable.flush_page(page)
        assert stable.version_map() == {pid(0): 1, pid(1): 2}

    def test_restore_into_fresh_store(self):
        store = build_store(3)
        stable = StableStore()
        for page in store.all_pages():
            stable.flush_page(page)
        fresh = PageStore(rows_per_page=8)
        restored = stable.restore_into(fresh)
        assert restored == 3
        assert fresh.get(pid(2)).version == 3
        assert fresh.get(pid(1)).get(0) == (100, "r1.0")


class TestFuzzyCheckpointer:
    def test_full_checkpoint_flushes_all(self):
        store = build_store(4)
        stable = StableStore()
        ckpt = FuzzyCheckpointer(store, stable)
        assert ckpt.full_checkpoint(lambda page: False) == 4
        assert len(stable) == 4

    def test_dirty_pages_skipped(self):
        store = build_store(4)
        stable = StableStore()
        ckpt = FuzzyCheckpointer(store, stable)
        dirty = {pid(1)}
        flushed = ckpt.full_checkpoint(lambda page: page.page_id in dirty)
        assert flushed == 3
        assert stable.load(pid(1)) is None

    def test_unchanged_pages_not_reflushed(self):
        store = build_store(2)
        stable = StableStore()
        ckpt = FuzzyCheckpointer(store, stable)
        ckpt.full_checkpoint(lambda page: False)
        assert ckpt.full_checkpoint(lambda page: False) == 0  # nothing changed
        store.get(pid(0)).version = 99
        assert ckpt.full_checkpoint(lambda page: False) == 1

    def test_incremental_rounds(self):
        store = build_store(4)
        stable = StableStore()
        ckpt = FuzzyCheckpointer(store, stable, pages_per_round=2)
        flushed1, _ = ckpt.checkpoint_round(lambda page: False)
        flushed2, _ = ckpt.checkpoint_round(lambda page: False)
        assert (flushed1, flushed2) == (2, 2)

    def test_empty_store(self):
        ckpt = FuzzyCheckpointer(PageStore(), StableStore())
        assert ckpt.full_checkpoint(lambda page: False) == 0


class TestFilePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        store = build_store(3)
        stable = StableStore()
        for page in store.all_pages():
            stable.flush_page(page)
        path = str(tmp_path / "checkpoint.jsonl")
        assert stable.save_to(path) == 3
        loaded = StableStore.load_from(path)
        assert len(loaded) == 3
        fresh = PageStore(rows_per_page=8)
        loaded.restore_into(fresh)
        assert fresh.get(pid(1)).get(0) == (100, "r1.0")
        assert fresh.get(pid(2)).version == 3

    def test_save_preserves_null_slots_and_types(self, tmp_path):
        store = PageStore(rows_per_page=4)
        page = store.allocate("mixed")
        page.put(0, (1, "text", 2.5, None))
        page.version = 7
        stable = StableStore()
        stable.flush_page(page)
        path = str(tmp_path / "c.jsonl")
        stable.save_to(path)
        loaded = StableStore.load_from(path)
        image = loaded.load(PageId("mixed", 0))
        assert image.page.get(0) == (1, "text", 2.5, None)
        assert image.page.get(1) is None
        assert image.version == 7

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"table": "t"}\n')
        from repro.common.errors import SchemaError

        with pytest.raises(SchemaError):
            StableStore.load_from(str(path))

    def test_atomic_overwrite(self, tmp_path):
        store = build_store(2)
        stable = StableStore()
        for page in store.all_pages():
            stable.flush_page(page)
        path = str(tmp_path / "c.jsonl")
        stable.save_to(path)
        stable.save_to(path)  # overwrite in place
        assert len(StableStore.load_from(path)) == 2
