"""Trace-driven integration tests: assert on spans, not sleeps or counters.

Each test drives the simulated cluster (scripted connections or the chaos
harness), then interrogates the span log through the ``tests/obs`` helpers:
laziness is proven by apply-span start times, retransmission handling by
parent links, abort hygiene by terminal span states — properties that
counter totals cannot express.
"""

import pytest

from repro.chaos.faults import FaultPlan, LinkFault
from repro.chaos.invariants import check_trace_hygiene
from repro.chaos.scenario import run_chaos_scenario
from repro.cluster.simcluster import SimConnection, SimDmvCluster
from repro.tpcw import MIXES, TPCW_SCHEMAS, TpcwDataGenerator, TpcwScale
from tests.obs import (
    assert_all_closed,
    assert_span_order,
    children_of,
    spans_for_txn,
)

SCALE = TpcwScale(num_items=80, num_customers=230)


def build_cluster(**kwargs):
    kwargs.setdefault("num_slaves", 1)
    kwargs.setdefault("trace", True)
    cluster = SimDmvCluster(TPCW_SCHEMAS, **kwargs)
    cluster.load(TpcwDataGenerator(SCALE, seed=11))
    cluster.warm_all_caches()
    return cluster


def scripted_update(cluster, item_id, delay=0.0, amount=1):
    """One update transaction against the item table at ``delay``."""
    conn = SimConnection(cluster)
    if delay:
        yield cluster.sim.timeout(delay)
    yield conn.begin_update(["item"])
    yield conn.query(
        "UPDATE item SET i_stock = i_stock - ? WHERE i_id = ?", (amount, item_id)
    )
    yield conn.commit()
    return conn


def scripted_read(cluster, item_id, delay=0.0, sink=None):
    """One tagged read of the item table at ``delay``."""
    conn = SimConnection(cluster)
    if delay:
        yield cluster.sim.timeout(delay)
    yield conn.begin_read(["item"])
    txn_id = conn._txn.txn_id
    yield conn.query("SELECT i_stock FROM item WHERE i_id = ?", (item_id,))
    yield conn.commit()
    if sink is not None:
        sink.append(txn_id)
    return txn_id


class TestLazyApplyTiming:
    def test_apply_spans_start_after_reader_arrival(self):
        """The write-set is broadcast eagerly at ~t=0, but the slave's apply
        span must start only once the tagged reader shows up at t=10 —
        the lazy half of Dynamic Multiversioning, proven by span timing."""
        cluster = build_cluster()
        cluster.sim.spawn(scripted_update(cluster, 1), name="upd")
        readers = []
        cluster.sim.spawn(
            scripted_read(cluster, 1, delay=10.0, sink=readers), name="rd"
        )
        cluster.run(until=30.0)
        tracer = cluster.tracer
        assert_all_closed(tracer)
        assert readers, "scripted read never completed"
        broadcasts = tracer.spans_named("broadcast")
        applies = tracer.spans_named("apply")
        assert broadcasts and applies
        # Eager propagation: broadcast happens right after the commit...
        assert max(b.end for b in broadcasts) < 10.0
        # ...but materialisation waits for the reader's arrival.
        assert min(a.start for a in applies) >= 10.0
        # The apply belongs to the reader's transaction, nested under the
        # execute span of the statement that touched the page.
        reader_spans = spans_for_txn(tracer, readers[0], node="s0")
        assert any(s.name == "apply" for s in reader_spans)
        execute = next(s for s in reader_spans if s.name == "execute")
        apply_children = [s for s in children_of(tracer, execute) if s.name == "apply"]
        assert apply_children
        assert apply_children[0].tags["popped"] >= 1

    def test_update_txn_span_order(self):
        """An update commit walks schedule -> execute -> precommit ->
        broadcast -> ack, in that causal order."""
        cluster = build_cluster()
        cluster.sim.spawn(scripted_update(cluster, 2), name="upd")
        cluster.run(until=20.0)
        tracer = cluster.tracer
        assert_all_closed(tracer)
        root = next(
            s for s in tracer.spans_named("txn") if s.tags.get("kind") == "update"
        )
        assert root.tags["status"] == "committed"
        assert root.tags["conflict_class"] >= 0
        matched = assert_span_order(
            tracer, "schedule", "execute", "precommit", "broadcast", "ack",
            txn_id=root.txn_id,
        )
        pre = next(s for s in matched if s.name == "precommit")
        # The precommit span carries the commit version vector + page ids.
        assert pre.tags["versions"].get("item", 0) >= 1
        assert pre.tags["page_count"] >= 1

    def test_read_txn_root_closed_committed(self):
        cluster = build_cluster()
        readers = []
        cluster.sim.spawn(scripted_read(cluster, 3, sink=readers), name="rd")
        cluster.run(until=10.0)
        root = spans_for_txn(cluster.tracer, readers[0], node="s0")[0]
        assert root.name == "txn"
        assert root.tags["status"] == "committed"
        assert root.tags["kind"] == "read"


class TestRetransmitNesting:
    def test_retransmit_spans_nest_under_their_broadcast(self):
        """Under a lossy link, every retransmit span is a child of the
        broadcast span whose ack never arrived — and sits inside its
        parent's time window."""
        plan = FaultPlan(
            seed=5, events=(LinkFault(at=0.0, drop_p=0.25, until=40.0),)
        )
        report = run_chaos_scenario(
            seed=5, plan=plan, duration=60.0, settle=15.0, browsers=8,
            mix_name="ordering", trace=True,
        )
        assert report.counters.get("net.retransmits", 0) > 0
        tracer = report.tracer
        assert tracer.log.dropped == 0
        broadcasts = {s.span_id: s for s in tracer.spans_named("broadcast")}
        retransmits = tracer.spans_named("retransmit")
        assert retransmits, "drop fault produced no retransmit spans"
        for retry in retransmits:
            parent = broadcasts.get(retry.parent_id)
            assert parent is not None, f"{retry!r} does not nest under a broadcast"
            assert parent.start <= retry.start
            assert retry.end <= parent.end
            assert retry.tags["attempt"] >= 1

    def test_trace_hygiene_invariant_in_report(self):
        plan = FaultPlan(
            seed=5, events=(LinkFault(at=0.0, drop_p=0.25, until=40.0),)
        )
        report = run_chaos_scenario(
            seed=5, plan=plan, duration=60.0, settle=15.0, browsers=8,
            mix_name="ordering", trace=True,
        )
        hygiene = next(r for r in report.invariants if r.name == "trace-hygiene")
        assert hygiene.ok, hygiene.detail
        assert "per-stage latency breakdown" in report.summary()


class TestAbortClosure:
    @staticmethod
    def _victim(cluster, sink):
        """An update transaction held open across the master's death."""
        from repro.common.errors import NodeUnavailable, TransactionAborted

        conn = SimConnection(cluster)
        yield conn.begin_update(["item"])
        yield conn.query(
            "UPDATE item SET i_stock = i_stock - ? WHERE i_id = ?", (1, 5)
        )
        yield cluster.sim.timeout(5.0)  # master dies during this window
        try:
            yield conn.commit()
        except (NodeUnavailable, TransactionAborted):
            conn.cleanup()
        sink.append(conn)

    def test_aborted_txn_closes_all_spans_on_master_kill(self):
        """Killing the master mid-transaction must not leak open spans: the
        victim's tree reaches a terminal close with status=aborted."""
        cluster = build_cluster(num_slaves=2)
        victims = []
        cluster.sim.spawn(self._victim(cluster, victims), name="victim")
        cluster.kill_node_at("m0", 2.0)
        cluster.run(until=60.0)
        assert victims, "victim script never finished"
        tracer = cluster.tracer
        assert_all_closed(tracer)
        aborted = [
            s for s in tracer.spans_named("txn") if s.tags.get("status") == "aborted"
        ]
        assert aborted, "master kill produced no aborted transactions"
        root = aborted[0]
        assert root.tags["kind"] == "update"
        # Every stage span under the aborted root is closed too.
        children = children_of(tracer, root)
        assert children and all(c.closed for c in children)
        result = check_trace_hygiene(cluster)
        assert result.ok, result.detail

    def test_workload_survives_master_kill_without_leaking_spans(self):
        """Organic browser traffic through a master kill + reconfiguration
        drains to zero open spans (the quiescence half of trace hygiene)."""
        cluster = build_cluster(num_slaves=2)
        cluster.start_browsers(8, MIXES["ordering"], SCALE, think_time_mean=0.3)
        cluster.kill_node_at("m0", 10.0)
        cluster.sim.schedule(40.0, cluster.stop_browsers)
        cluster.run(until=70.0)
        assert_all_closed(cluster.tracer)
        assert cluster.metrics.completed > 0
        result = check_trace_hygiene(cluster)
        assert result.ok, result.detail

    def test_hygiene_checker_reports_open_spans(self):
        cluster = build_cluster()
        cluster.tracer.span("txn", kind="leaked")
        result = check_trace_hygiene(cluster)
        assert not result.ok
        assert "still open" in result.detail


class TestTracingDeterminism:
    def test_fingerprint_identical_with_tracing_on_and_off(self):
        """The tracer never schedules events and never touches counters, so
        a traced chaos run reproduces the untraced fingerprint exactly."""
        off = run_chaos_scenario(seed=11, duration=60.0, settle=15.0, browsers=6)
        on = run_chaos_scenario(
            seed=11, duration=60.0, settle=15.0, browsers=6, trace=True
        )
        assert on.fingerprint == off.fingerprint
        assert on.completed == off.completed
        assert off.tracer is None and on.tracer is not None
        assert on.tracer.finished_count > 0
