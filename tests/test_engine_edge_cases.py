"""Edge-case tests added for failure races found during cluster bring-up."""

import pytest

from repro.common.errors import TransactionAborted
from repro.engine import Column, HeapEngine, TableSchema, TwoPhaseLocking, TxnMode
from repro.engine.txn import TxnState
from repro.sql import SqlExecutor

ITEM = TableSchema(
    "item",
    [Column("i_id", "int", nullable=False), Column("i_stock", "int")],
    primary_key=("i_id",),
)


def make_engine():
    engine = HeapEngine(controller=TwoPhaseLocking(), rows_per_page=4)
    engine.create_table(ITEM)
    engine.bulk_load("item", [{"i_id": i, "i_stock": 10} for i in range(20)])
    return engine


class TestPreparedAbort:
    def test_prepared_txn_dropped_without_revert(self):
        """A dying master's prepared txn must not corrupt index state."""
        engine = make_engine()
        sql = SqlExecutor(engine)
        txn = engine.begin(write_intent=["item"])
        sql.execute(txn, "DELETE FROM item WHERE i_id = 3")
        engine.prepare_commit(txn)
        engine.versions.increment(["item"])
        engine.stamp_commit(txn, {"item": 1})
        # Node failure: abort_all_active on a PREPARED txn.
        engine.abort(txn, reason="node-failure")
        assert txn.state is TxnState.ABORTED
        assert engine.counters.get("engine.txns_dropped_prepared") == 1
        # Locks were released; a new transaction can write the same page.
        txn2 = engine.begin(write_intent=["item"])
        sql.execute(txn2, "UPDATE item SET i_stock = 1 WHERE i_id = 2")
        engine.commit(txn2)

    def test_abort_all_active_with_mixed_states(self):
        engine = make_engine()
        sql = SqlExecutor(engine)
        active = engine.begin(write_intent=["item"])
        sql.execute(active, "UPDATE item SET i_stock = 5 WHERE i_id = 1")
        prepared = engine.begin(write_intent=["item"])
        sql.execute(prepared, "UPDATE item SET i_stock = 5 WHERE i_id = 7")
        engine.prepare_commit(prepared)
        engine.versions.increment(["item"])
        engine.stamp_commit(prepared, {"item": 1})
        assert engine.abort_all_active() == 2
        # The active txn's change was reverted; the prepared one stands
        # (its fate is decided by the cluster-level discard protocol).
        ro = engine.begin(TxnMode.READ_ONLY)
        assert sql.execute(ro, "SELECT i_stock FROM item WHERE i_id = 1").scalar() == 10


class TestInactiveTransactionRaces:
    def test_touch_after_abort_raises_cleanly(self):
        """A statement racing with its own abort stops at page access."""
        engine = make_engine()
        sql = SqlExecutor(engine)
        txn = engine.begin(TxnMode.READ_ONLY)
        engine.abort(txn, reason="reconfiguration")
        with pytest.raises(TransactionAborted) as err:
            sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 1")
        assert err.value.reason == "txn-inactive"

    def test_double_abort_releases_late_locks(self):
        """Locks acquired by a racing statement are swept by a second abort."""
        engine = make_engine()
        manager = engine.controller.manager
        txn = engine.begin(write_intent=["item"])
        page_id = engine.store.pages_of("item")[0].page_id
        from repro.engine.locks import LockMode

        manager.acquire(txn.txn_id, page_id, LockMode.EXCLUSIVE)
        engine.abort(txn)
        # Simulate the race: the statement grabbed another lock after abort.
        manager.acquire(txn.txn_id, engine.store.pages_of("item")[1].page_id, LockMode.SHARED)
        engine.abort(txn)  # defensive re-release
        assert manager.held(txn.txn_id) == set()


class TestInsertStriping:
    def test_concurrent_inserters_use_different_pages(self):
        engine = make_engine()
        t1 = engine.begin(write_intent=["item"])
        t2 = engine.begin(write_intent=["item"])
        loc1 = engine.table("item").insert_row(t1, {"i_id": 100, "i_stock": 1})
        # t2 must not block on t1's insert page.
        loc2 = engine.table("item").insert_row(t2, {"i_id": 101, "i_stock": 1})
        assert loc1[0] != loc2[0]
        engine.commit(t1)
        engine.commit(t2)

    def test_striping_bounded(self):
        engine = make_engine()
        table = engine.table("item")
        txn = engine.begin(write_intent=["item"])
        for i in range(200, 260):
            table.insert_row(txn, {"i_id": i, "i_stock": 1})
        engine.commit(txn)
        # Pages get filled rather than one page per row.
        assert engine.store.page_count() < 5 + 60


class TestWriteIntent:
    def test_read_of_intent_table_takes_exclusive(self):
        engine = make_engine()
        sql = SqlExecutor(engine)
        txn = engine.begin(write_intent=["item"])
        sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 1")
        page_id = None
        for page in engine.store.pages_of("item"):
            if engine.controller.manager.mode_held(txn.txn_id, page.page_id):
                page_id = page.page_id
                break
        from repro.engine.locks import LockMode

        assert engine.controller.manager.mode_held(txn.txn_id, page_id) is LockMode.EXCLUSIVE
        engine.commit(txn)

    def test_read_outside_intent_stays_shared(self):
        engine = make_engine()
        sql = SqlExecutor(engine)
        txn = engine.begin(write_intent=[])
        sql.execute(txn, "SELECT i_stock FROM item WHERE i_id = 1")
        from repro.engine.locks import LockMode

        modes = {
            engine.controller.manager.mode_held(txn.txn_id, p.page_id)
            for p in engine.store.pages_of("item")
        }
        assert LockMode.EXCLUSIVE not in modes
        engine.commit(txn)
