#!/usr/bin/env python3
"""Run the TPC-W bookstore on an embedded DMV cluster.

Loads a scaled-down TPC-W database onto a master + 2 slaves, then drives a
few hundred interactions of the *shopping* mix through emulated browsers,
printing the per-interaction breakdown and the resulting version vector.

Run:  python examples/tpcw_cluster.py
"""

from collections import Counter

from repro.common.rng import RngStream
from repro.cluster import SyncDmvCluster
from repro.tpcw import (
    INTERACTIONS,
    MIXES,
    TPCW_SCHEMAS,
    EmulatedBrowser,
    TpcwDataGenerator,
    TpcwScale,
    run_sync,
)
from repro.tpcw.interactions import SharedSequences


def main() -> None:
    scale = TpcwScale(num_items=200, num_customers=576)
    cluster = SyncDmvCluster(TPCW_SCHEMAS, num_slaves=2)
    counts = cluster.load(TpcwDataGenerator(scale, seed=7))
    print("loaded:", {k: v for k, v in sorted(counts.items()) if v})

    sequences = SharedSequences(scale)
    browsers = [
        EmulatedBrowser(
            browser_id=i,
            mix=MIXES["shopping"],
            scale=scale,
            sequences=sequences,
            rng=RngStream(1234, f"eb{i}"),
        )
        for i in range(8)
    ]

    histogram: Counter = Counter()
    for _round in range(40):
        for browser in browsers:
            name = browser.pick()
            conn = cluster.connect()
            summary = run_sync(browser.start(name, conn))
            histogram[summary["interaction"]] += 1

    print(f"\nran {sum(histogram.values())} interactions (shopping mix):")
    for name, count in histogram.most_common():
        print(f"  {name:25s} {count:4d}")

    versions = cluster.latest_versions()
    print("\ncluster version vector after the run:")
    for table, version in versions.items():
        print(f"  {table:20s} v{version}")

    orders = cluster.run_read("SELECT COUNT(*) FROM orders", tables=["orders"]).scalar()
    print(f"\norders in the database: {orders} "
          f"(initial load: {scale.num_orders})")


if __name__ == "__main__":
    main()
