#!/usr/bin/env python3
"""Quickstart: an embedded Dynamic Multiversioning cluster in 60 lines.

Builds a master + 3 slaves + an on-disk persistence backend, defines a tiny
schema, runs update and read-only transactions through the version-aware
scheduler, and demonstrates that every replica serves consistent snapshots.

Run:  python examples/quickstart.py
"""

from repro.cluster import SyncDmvCluster
from repro.engine import Column, IndexDef, TableSchema

ACCOUNTS = TableSchema(
    "accounts",
    [
        Column("id", "int", nullable=False),
        Column("owner", "str"),
        Column("balance", "float"),
    ],
    primary_key=("id",),
    indexes=[IndexDef("ix_owner", ("owner",))],
)


def main() -> None:
    # One master, three read slaves, one on-disk replica for persistence.
    cluster = SyncDmvCluster([ACCOUNTS], num_slaves=3, num_disk_backends=1)
    cluster.bulk_load(
        "accounts",
        [{"id": i, "owner": f"user{i % 4}", "balance": 100.0} for i in range(64)],
    )

    # Update transactions execute on the master, which broadcasts per-page
    # write-sets to every slave before acknowledging the commit.
    cluster.run_update(
        [
            ("UPDATE accounts SET balance = balance - 25 WHERE id = ?", (1,)),
            ("UPDATE accounts SET balance = balance + 25 WHERE id = ?", (2,)),
        ],
        tables=["accounts"],
    )
    print("committed a transfer; cluster version:", cluster.latest_versions().as_dict())

    # Read-only transactions are tagged with the latest version vector and
    # load-balanced across slaves; each slave materialises exactly the
    # snapshot the tag names, lazily, page by page.
    total = cluster.run_read(
        "SELECT SUM(balance) FROM accounts", tables=["accounts"]
    ).scalar()
    print("total balance (from a slave snapshot):", total)

    rs = cluster.run_read(
        "SELECT id, balance FROM accounts WHERE owner = ? ORDER BY id LIMIT 5",
        ("user1",),
        tables=["accounts"],
    )
    print("user1's accounts:", rs.rows)

    # The persistence tier applied the same queries asynchronously.
    disk = cluster.disk_backends[0]
    txn = disk.begin(read_only=True)
    persisted = disk.execute(txn, "SELECT balance FROM accounts WHERE id = 1").scalar()
    disk.engine.commit(txn)
    print("on-disk backend sees id=1 balance:", persisted)

    # Failover: kill the master; a slave is promoted and updates continue.
    new_master = cluster.kill_master("m0")
    print("master killed; promoted:", new_master)
    cluster.run_update(
        [("UPDATE accounts SET balance = 0 WHERE id = ?", (3,))], tables=["accounts"]
    )
    print(
        "post-failover read:",
        cluster.run_read(
            "SELECT balance FROM accounts WHERE id = 3", tables=["accounts"]
        ).scalar(),
    )


if __name__ == "__main__":
    main()
