#!/usr/bin/env python3
"""Failover drill: kill nodes in the simulated cluster and watch recovery.

Runs the shopping mix on a simulated cluster (master + 3 slaves + 1 warm
spare), kills an active slave and then the master, and prints the
20-second-bucketed throughput series together with the reconfiguration
timelines — a miniature version of the paper's Section 6.2 experiments.

Run:  python examples/failover_drill.py
"""

from repro.bench.calibration import BENCH_COST, BENCH_ROWS_PER_PAGE, BENCH_SCALE
from repro.bench.harness import cached_rows
from repro.cluster.simcluster import SimDmvCluster
from repro.tpcw import MIXES, TPCW_SCHEMAS


def main() -> None:
    cluster = SimDmvCluster(
        TPCW_SCHEMAS,
        num_slaves=3,
        num_spares=1,
        cost_config=BENCH_COST,
        rows_per_page=BENCH_ROWS_PER_PAGE,
        checkpoint_period=30.0,
    )
    for table, rows in cached_rows(BENCH_SCALE):
        for node in cluster.nodes.values():
            node.engine.bulk_load(table, rows)
    for node in cluster.nodes.values():
        node.sql.invalidate_plans()
        node.checkpoint()
    cluster.warm_all_caches()

    cluster.start_browsers(80, MIXES["shopping"], BENCH_SCALE, think_time_mean=1.0)
    print("drill: slave s1 dies at t=60s, master m0 dies at t=150s")
    cluster.kill_node_at("s1", 60.0)
    cluster.kill_node_at("m0", 150.0)
    cluster.run(until=300.0)

    print("\nthroughput (web interactions per second, 20 s buckets):")
    series = cluster.metrics.wips.series(end=300.0)
    peak = max(series.values) or 1.0
    for t, value in zip(series.times, series.values):
        bar = "#" * int(40 * value / peak)
        print(f"  t={t:6.1f}s {value:7.2f} |{bar}")

    print("\nreconfiguration timelines:")
    for timeline in cluster.timelines:
        print(
            f"  failure@{timeline.failure_time:7.1f}s  detected +"
            f"{timeline.detection_time - timeline.failure_time:4.1f}s  "
            f"recovery {timeline.recovery_duration():5.1f}s  "
            f"migration {timeline.migration_duration():5.1f}s "
            f"({timeline.migration_pages} pages)"
        )

    print("\ninteractions completed:", cluster.metrics.completed)
    print("retried after aborts/failures:", cluster.metrics.retried)
    print("active topology:", sorted(s.node_id for s in cluster.scheduler.active_slaves()),
          "master:", sorted(n.node_id for n in cluster.nodes.values()
                            if n.master is not None and n.alive))


if __name__ == "__main__":
    main()
