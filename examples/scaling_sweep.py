#!/usr/bin/env python3
"""Scaling sweep: peak throughput vs number of in-memory slaves.

A compact version of the paper's Figure 3 for one mix: measures peak WIPS
for 1..8 slaves and the stand-alone on-disk baseline, printing the scaling
curve and the improvement factors.

Run:  python examples/scaling_sweep.py [mix]          (default: shopping)
"""

import sys

from repro.bench.harness import run_dmv_throughput, run_innodb_throughput
from repro.bench.report import format_retries


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "shopping"
    print(f"mix: {mix}\n")
    innodb = max(
        run_innodb_throughput(mix, clients, duration=40.0).wips for clients in (10, 25)
    )
    print(f"stand-alone on-disk baseline: {innodb:6.1f} WIPS\n")
    print(f"{'slaves':>7} {'clients':>8} {'WIPS':>8} {'factor':>8} {'p95 (s)':>9}")
    for n in (1, 2, 4, 8):
        run = run_dmv_throughput(mix, n, clients=55 * n, duration=40.0)
        factor = run.wips / innodb if innodb else float("nan")
        print(f"{n:>7} {run.clients:>8} {run.wips:>8.1f} {'x%.1f' % factor:>8} "
              f"{run.latency_p95:>9.2f}  {format_retries(run.retries_by_reason)}")


if __name__ == "__main__":
    main()
