"""Open-loop traffic engine: seeded arrival processes + scenario DSL.

The closed-loop TPC-W browser pool self-throttles — every in-flight
request delays the next one — so it can never produce the arrival bursts,
hot-key skew or retry storms that overload real clusters.  This package
injects requests at *scheduled virtual-clock times independent of
completions* (open loop), composed from seeded rate shapes (constant,
diurnal, flash crowd) per tenant, and drives them through the simulated
cluster with client-side retry budgets and circuit breaking.

Entry points:

* :mod:`repro.traffic.arrivals` — rate shapes and arrival processes.
* :mod:`repro.traffic.scenario` — the scenario DSL (tenants + shapes +
  an optional chaos :class:`~repro.chaos.faults.FaultPlan`).
* :mod:`repro.traffic.engine` — the open-loop injector.
* ``python -m repro.traffic`` — run a named scenario from the CLI.
"""

from repro.traffic.arrivals import (
    BurstRate,
    CompositeRate,
    ConstantRate,
    DiurnalRate,
    RateShape,
    iter_arrivals,
)
from repro.traffic.budget import CircuitBreaker, RetryBudget
from repro.traffic.engine import OpenLoopEngine, TenantStats, TrafficStats
from repro.traffic.scenario import (
    TenantSpec,
    TrafficScenario,
    diurnal_scenario,
    flash_crowd_scenario,
    multi_tenant_scenario,
    overload_defense_config,
)

__all__ = [
    "BurstRate",
    "CircuitBreaker",
    "CompositeRate",
    "ConstantRate",
    "DiurnalRate",
    "OpenLoopEngine",
    "RateShape",
    "RetryBudget",
    "TenantSpec",
    "TenantStats",
    "TrafficScenario",
    "TrafficStats",
    "diurnal_scenario",
    "flash_crowd_scenario",
    "iter_arrivals",
    "multi_tenant_scenario",
    "overload_defense_config",
]
