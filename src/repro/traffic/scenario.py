"""The traffic scenario DSL: tenants x rate shapes x chaos fault plans.

A :class:`TrafficScenario` is declarative data: a tuple of
:class:`TenantSpec` (each a named workload with its own rate shape,
arrival process, TPC-W mix, key skew, deadline and SLO) plus an optional
chaos :class:`~repro.chaos.faults.FaultPlan`, so "flash crowd on a hot
conflict class while a slave is demoted" is one literal::

    TrafficScenario(
        name="crowd-while-demoted",
        duration=200.0,
        tenants=(
            TenantSpec(
                "web",
                shape=ConstantRate(12.0) + BurstRate(extra=60.0, start=60.0, duration=30.0),
                mix="ordering",
                key_skew=1.1,
            ),
            TenantSpec("batch", shape=ConstantRate(2.0), mix="shopping", process="uniform"),
        ),
        faults=FaultPlan(seed=7, events=(Slowdown(at=40.0, node_id="s2", factor=12.0),)),
    )

The builders below are the canonical examples the README quickstart,
the chaos ``--plan overload`` wiring and the overload bench share.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.chaos.faults import FaultPlan, LinkFault
from repro.cluster.costs import CostConfig
from repro.traffic.arrivals import (
    BurstRate,
    ConstantRate,
    DiurnalRate,
    RateShape,
)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's offered load and service expectations."""

    name: str
    shape: RateShape
    #: TPC-W mix name (see :data:`repro.tpcw.mixes.MIXES`).
    mix: str = "ordering"
    #: Arrival process: ``poisson`` (thinned non-homogeneous) or
    #: ``uniform`` (deterministic pacing along the rate curve).
    process: str = "poisson"
    #: Zipf exponent over the tenant's session pool: > 0 concentrates
    #: requests on a few hot sessions (hot carts -> hot conflict classes);
    #: 0 picks sessions uniformly.
    key_skew: float = 0.0
    #: Concurrent session contexts the tenant's requests draw from.
    sessions: int = 32
    #: Per-request deadline (seconds after scheduled arrival); 0 defers to
    #: ``CostConfig.request_deadline`` (so one config swap toggles the
    #: defense for a whole scenario).
    deadline: float = 0.0
    #: Latency SLO threshold for per-tenant attainment accounting.
    slo_latency: float = 1.0
    #: Per-request retry ceiling (the budget may cut retries off earlier).
    max_attempts: int = 8


@dataclass(frozen=True)
class TrafficScenario:
    """A composed load shape: tenants + duration + optional fault plan."""

    name: str
    duration: float
    tenants: Tuple[TenantSpec, ...]
    #: Chaos fault plan to run alongside the load (None = clean fabric).
    faults: Optional[FaultPlan] = None
    #: Injection stops this many seconds before ``duration`` so in-flight
    #: requests and retransmissions drain before the invariant audit.
    settle: float = 25.0
    #: Burst-recovery invariant: goodput must return to within this
    #: fraction of the pre-burst level...
    recovery_epsilon: float = 0.25
    #: ...within this many seconds after the last burst ends.
    recovery_window: float = 40.0
    #: Goodput sampling window (seconds) for the recovery measurement.
    goodput_window: float = 5.0
    #: Shed-rate fairness: a non-bursting tenant's shed ratio may not
    #: exceed ``max(fairness_floor, fairness_ratio * worst aggressor)``.
    fairness_ratio: float = 0.5
    fairness_floor: float = 0.10

    @property
    def inject_until(self) -> float:
        return max(0.0, self.duration - self.settle)

    def bursts(self) -> List[Tuple[float, float]]:
        """All tenants' deliberate surge windows, sorted by start."""
        out: List[Tuple[float, float]] = []
        for tenant in self.tenants:
            out.extend(tenant.shape.bursts())
        return sorted(out)

    def bursting_tenants(self) -> List[str]:
        return [t.name for t in self.tenants if t.shape.bursts()]

    def describe(self) -> str:
        parts = [
            f"{t.name}: {t.process} {t.shape.peak():g}/s peak, mix={t.mix}"
            + (f", zipf={t.key_skew:g}" if t.key_skew else "")
            for t in self.tenants
        ]
        return f"traffic scenario {self.name!r} ({'; '.join(parts)})"


def overload_defense_config(
    base: Optional[CostConfig] = None, **overrides
) -> CostConfig:
    """The canonical defenses-ON configuration for overload scenarios.

    Layered on the write scale-out server shape (bounded update MPL +
    epoch commit) it adds the full client/scheduler defense stack:
    per-tenant token buckets, queue-delay watermark shedding, request
    deadlines, retry budgets and circuit breaking.  The OFF arm of the
    metastability demo uses :func:`overload_base_config` — identical
    except for the defense knobs — so the comparison isolates them.
    """
    if base is None:
        base = overload_base_config()
    values = dict(
        admission_rate=30.0,
        admission_burst=90.0,
        admission_queue_watermark=0.6,
        request_deadline=1.5,
        retry_budget_rate=1.5,
        retry_budget_burst=8.0,
        breaker_failure_threshold=0.5,
    )
    values.update(overrides)
    return dataclasses.replace(base, **values)


def overload_base_config(**overrides) -> CostConfig:
    """Server shape shared by both arms of the overload comparison.

    Bounded update MPL + epoch commit, on a deliberately *slow* cost
    model (~30x the default CPU costs): the flash-crowd peak must exceed
    the cluster's service capacity for overload behaviour to exist at
    all — at the default costs the simulated cluster absorbs hundreds of
    requests per second without queueing and both arms look identical.
    """
    values = dict(
        update_mpl=4,
        epoch_max_txns=4,
        epoch_ms=5.0,
        cpu_per_statement=0.01,
        cpu_per_row_read=0.0005,
        cpu_per_page_touch=0.0002,
        cpu_per_row_write=0.002,
        cpu_per_index_rotation=0.004,
        cpu_per_op_precommit=0.001,
    )
    values.update(overrides)
    return CostConfig(**values)


def _lossy_fabric(seed: int, duration: float) -> FaultPlan:
    """Mild loss/duplication fabric-wide, cleared before quiescence."""
    return FaultPlan(
        seed=seed,
        events=(
            LinkFault(at=0.0, drop_p=0.02, dup_p=0.005, until=round(duration * 0.75, 3)),
        ),
    )


def flash_crowd_scenario(
    duration: float = 200.0,
    seed: int = 0,
    base_rate: float = 12.0,
    burst_extra: float = 120.0,
    burst_start_frac: float = 0.3,
    burst_frac: float = 0.15,
    faults: Optional[FaultPlan] = None,
    deadline: float = 0.0,
) -> TrafficScenario:
    """The metastability demo: a Zipf-hot web tenant flash-crowds while a
    uniform batch tenant keeps its steady trickle.

    With defenses OFF the burst's retry amplification keeps the cluster
    saturated long after injection returns to the base rate; with the
    admission controller + deadlines + retry budgets ON, excess arrivals
    are shed cheaply at the door and goodput recovers within the
    burst-recovery window.
    """
    burst_start = round(duration * burst_start_frac, 3)
    burst_len = round(duration * burst_frac, 3)
    if faults is None:
        # Default to the mild lossy fabric (same shape as the chaos
        # ``overload`` plan): the demo isolates overload behaviour, so no
        # crash/partition unless the caller asks for one.
        faults = _lossy_fabric(seed, duration)
    return TrafficScenario(
        name="flash-crowd",
        duration=duration,
        tenants=(
            TenantSpec(
                "web",
                shape=ConstantRate(base_rate)
                + BurstRate(extra=burst_extra, start=burst_start, duration=burst_len),
                mix="ordering",
                key_skew=1.1,
                deadline=deadline,
                slo_latency=1.0,
            ),
            TenantSpec(
                "batch",
                shape=ConstantRate(2.0),
                mix="shopping",
                process="uniform",
                deadline=deadline,
                slo_latency=2.0,
            ),
        ),
        faults=faults,
    )


def diurnal_scenario(
    duration: float = 240.0,
    seed: int = 0,
    base_rate: float = 10.0,
    amplitude: float = 0.6,
) -> TrafficScenario:
    """A day/night curve: load swings ±60 % around the base over 2 cycles."""
    return TrafficScenario(
        name="diurnal",
        duration=duration,
        tenants=(
            TenantSpec(
                "web",
                shape=DiurnalRate(base_rate, amplitude=amplitude, period=duration / 2.0),
                mix="shopping",
            ),
        ),
        faults=_lossy_fabric(seed, duration),
    )


def multi_tenant_scenario(
    duration: float = 200.0,
    seed: int = 0,
) -> TrafficScenario:
    """Three tenants with distinct mixes, processes and skew: the tenant
    isolation question (does one tenant's burst starve the others?)."""
    burst_start = round(duration * 0.35, 3)
    return TrafficScenario(
        name="multi-tenant",
        duration=duration,
        tenants=(
            TenantSpec(
                "storefront",
                shape=ConstantRate(8.0)
                + BurstRate(extra=40.0, start=burst_start, duration=round(duration * 0.1, 3)),
                mix="ordering",
                key_skew=0.9,
            ),
            TenantSpec("browse", shape=ConstantRate(6.0), mix="browsing"),
            TenantSpec(
                "reporting",
                shape=ConstantRate(1.5),
                mix="shopping",
                process="uniform",
                slo_latency=3.0,
            ),
        ),
        faults=_lossy_fabric(seed, duration),
    )


SCENARIOS = {
    "flash-crowd": flash_crowd_scenario,
    "diurnal": diurnal_scenario,
    "multi-tenant": multi_tenant_scenario,
}
