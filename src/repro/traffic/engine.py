"""The open-loop injector: scheduled arrivals driven through the cluster.

The closed-loop browser pool (:meth:`SimDmvCluster.start_browsers`)
self-throttles: a slow cluster slows its own offered load, which hides
overload behaviour *and* mis-measures latency (coordinated omission — a
stalled client fails to issue the requests that would have observed the
stall).  The :class:`OpenLoopEngine` fixes both: each tenant's arrival
times come from a seeded arrival process that never looks at completions,
and every latency sample is measured **from the scheduled arrival time**,
so queueing delay a closed-loop client would silently absorb shows up in
the histogram.

Determinism and fingerprint safety: the engine owns its own
``RngStream(seed, "traffic")`` with per-tenant children — it never draws
from ``cluster.rng`` — so constructing or running it cannot perturb the
seeded legacy runs, and two runs of the same (scenario, seed) produce
identical schedules, identical retries and identical counters.

Request outcome accounting (the per-tenant SLO invariant audits the
identity ``injected == completed + failed + shed + in_flight``):

* **completed** — the interaction committed; latency from scheduled
  arrival recorded against the tenant SLO.
* **failed** — terminal server-side outcome: deadline exceeded or the
  per-request attempt ceiling hit.
* **shed** — load intentionally refused cheaply: admission rejects at the
  scheduler, circuit-breaker short-circuits, or a drained retry budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.rng import RngStream
from repro.sim.stats import Histogram, WindowedRate, pretty_table
from repro.tpcw.interactions import SharedSequences
from repro.tpcw.mixes import MIXES
from repro.tpcw.session import EmulatedBrowser
from repro.traffic.arrivals import iter_arrivals
from repro.traffic.budget import CircuitBreaker, RetryBudget
from repro.traffic.scenario import TenantSpec, TrafficScenario

#: Client-visible abort reasons that terminate a request instead of
#: queueing a retry: the deadline has passed (retrying doomed work is the
#: metastability amplifier) and admission rejects (retrying immediately
#: would defeat the shed).
_TERMINAL_FAIL_REASONS = frozenset(["deadline"])
_SHED_REASONS = frozenset(["admission-reject"])


@dataclass
class TenantStats:
    """Per-tenant open-loop accounting (feeds the SLO/fairness invariants)."""

    name: str
    slo_latency: float
    injected: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    in_flight: int = 0
    retried: int = 0
    slo_ok: int = 0
    latency: Histogram = field(default_factory=lambda: Histogram("latency"))
    goodput: WindowedRate = field(default_factory=lambda: WindowedRate(window=5.0, name="goodput"))
    shed_by_cause: Dict[str, int] = field(default_factory=dict)

    def note_shed(self, cause: str) -> None:
        self.shed += 1
        self.shed_by_cause[cause] = self.shed_by_cause.get(cause, 0) + 1

    def shed_ratio(self) -> float:
        return self.shed / self.injected if self.injected else 0.0

    def slo_attainment(self) -> float:
        return self.slo_ok / self.completed if self.completed else 0.0

    def accounted(self) -> int:
        return self.completed + self.failed + self.shed + self.in_flight


class TrafficStats:
    """Whole-run view: per-tenant stats + global goodput + burst recovery."""

    def __init__(self, scenario: TrafficScenario) -> None:
        self.scenario = scenario
        self.tenants: Dict[str, TenantStats] = {
            spec.name: TenantStats(
                name=spec.name,
                slo_latency=spec.slo_latency,
                goodput=WindowedRate(window=scenario.goodput_window, name=spec.name),
            )
            for spec in scenario.tenants
        }
        self.goodput = WindowedRate(window=scenario.goodput_window, name="goodput")
        self.end_time = scenario.duration

    # -- burst recovery ----------------------------------------------------

    def burst_recovery(self) -> Optional[Tuple[float, Optional[float], float]]:
        """Measure SLO-goodput recovery after the scenario's last burst.

        Returns ``(pre_burst_rate, recovered_at, degraded_duration)`` or
        ``None`` when the scenario has no burst windows.  Recovery means
        two consecutive goodput buckets at or above
        ``(1 - recovery_epsilon) * pre_burst_rate``; ``recovered_at`` is
        None (and ``degraded_duration`` runs to the end of the run) when
        goodput never gets back — the metastable signature.
        """
        bursts = self.scenario.bursts()
        if not bursts:
            return None
        burst_start = min(start for start, _end in bursts)
        burst_end = max(end for _start, end in bursts)
        window = self.scenario.goodput_window
        series = self.goodput.series(0.0, self.end_time)
        pre = series.between(max(0.0, burst_start - 6 * window), burst_start - window)
        pre_rate = pre.mean()
        if pre_rate <= 0:
            return (0.0, burst_end, 0.0)
        threshold = (1.0 - self.scenario.recovery_epsilon) * pre_rate
        # Measure only while injection is live: after ``inject_until`` the
        # offered load stops, so near-zero goodput there is drain, not
        # degradation.
        measure_end = min(self.end_time, self.scenario.inject_until)
        post = series.between(burst_end, measure_end)
        streak = 0
        for t, value in zip(post.times, post.values):
            streak = streak + 1 if value >= threshold else 0
            if streak >= 2:
                recovered_at = max(burst_end, t - 1.5 * window)
                return (pre_rate, recovered_at, max(0.0, recovered_at - burst_end))
        return (pre_rate, None, max(0.0, measure_end - burst_end))

    # -- reporting ---------------------------------------------------------

    def totals(self) -> TenantStats:
        total = TenantStats(name="TOTAL", slo_latency=0.0)
        for stats in self.tenants.values():
            total.injected += stats.injected
            total.completed += stats.completed
            total.failed += stats.failed
            total.shed += stats.shed
            total.in_flight += stats.in_flight
            total.retried += stats.retried
            total.slo_ok += stats.slo_ok
            total.latency.merge(stats.latency)
        return total

    def table(self) -> str:
        headers = [
            "tenant", "injected", "completed", "failed", "shed",
            "retried", "slo%", "p50", "p99", "shed%",
        ]
        rows = []
        for stats in list(self.tenants.values()) + [self.totals()]:
            rows.append([
                stats.name,
                stats.injected,
                stats.completed,
                stats.failed,
                stats.shed,
                stats.retried,
                f"{100.0 * stats.slo_attainment():.1f}",
                f"{stats.latency.percentile(50):.3f}",
                f"{stats.latency.percentile(99):.3f}",
                f"{100.0 * stats.shed_ratio():.1f}",
            ])
        lines = [pretty_table(headers, rows)]
        recovery = self.burst_recovery()
        if recovery is not None:
            pre_rate, recovered_at, degraded = recovery
            if recovered_at is None:
                lines.append(
                    f"burst recovery: NEVER (pre-burst {pre_rate:.2f}/s, "
                    f"degraded {degraded:.1f}s to end of run)"
                )
            else:
                lines.append(
                    f"burst recovery: {degraded:.1f}s after burst end "
                    f"(pre-burst {pre_rate:.2f}/s)"
                )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        recovery = self.burst_recovery()
        out: Dict[str, object] = {
            "scenario": self.scenario.name,
            "tenants": {
                name: {
                    "injected": stats.injected,
                    "completed": stats.completed,
                    "failed": stats.failed,
                    "shed": stats.shed,
                    "retried": stats.retried,
                    "slo_attainment": stats.slo_attainment(),
                    "shed_ratio": stats.shed_ratio(),
                    "shed_by_cause": dict(stats.shed_by_cause),
                    "latency": stats.latency.summary(),
                }
                for name, stats in self.tenants.items()
            },
        }
        if recovery is not None:
            pre_rate, recovered_at, degraded = recovery
            out["burst_recovery"] = {
                "pre_burst_rate": pre_rate,
                "recovered_at": recovered_at,
                "degraded_duration": degraded,
                "recovered": recovered_at is not None,
            }
        return out


class _Tenant:
    """Runtime state for one tenant: rng, session pool, defenses, stats."""

    def __init__(
        self,
        spec: TenantSpec,
        engine: "OpenLoopEngine",
        rng: RngStream,
        stats: TenantStats,
    ) -> None:
        cluster = engine.cluster
        cfg = cluster.cost.config
        self.spec = spec
        self.rng = rng
        self.arrival_rng = rng.child("arrivals")
        self.stats = stats
        self.sessions: List[EmulatedBrowser] = [
            EmulatedBrowser(
                browser_id=i,
                mix=MIXES[spec.mix],
                scale=engine.scale,
                sequences=engine.sequences,
                rng=rng.child(f"s{i}"),
                now=cluster.sim.now,
            )
            for i in range(spec.sessions)
        ]
        self.deadline = spec.deadline if spec.deadline > 0 else cfg.request_deadline
        self.budget = (
            RetryBudget(cfg.retry_budget_rate, cfg.retry_budget_burst)
            if cfg.retry_budget_rate > 0
            else None
        )
        self.breaker = (
            CircuitBreaker(
                cfg.breaker_failure_threshold,
                window=cfg.breaker_window,
                cooldown=cfg.breaker_cooldown,
            )
            if cfg.breaker_failure_threshold > 0
            else None
        )

    def pick_session(self) -> EmulatedBrowser:
        if self.spec.key_skew > 0:
            return self.sessions[self.rng.zipf_index(len(self.sessions), self.spec.key_skew)]
        return self.sessions[self.rng.randint(0, len(self.sessions) - 1)]


class OpenLoopEngine:
    """Injects a :class:`TrafficScenario` into a ``SimDmvCluster``.

    One injector process per tenant walks the tenant's seeded arrival
    schedule and spawns an independent request process per arrival —
    arrivals never wait for completions.  Construction performs no RNG
    draws from the cluster's streams and schedules nothing until
    :meth:`start`.
    """

    def __init__(
        self,
        cluster,
        scenario: TrafficScenario,
        seed: int = 0,
        scale=None,
        sequences: Optional[SharedSequences] = None,
    ) -> None:
        from repro.tpcw.schema import TpcwScale

        self.cluster = cluster
        self.scenario = scenario
        self.scale = scale if scale is not None else TpcwScale(num_items=80, num_customers=230)
        self.sequences = sequences if sequences is not None else SharedSequences(self.scale)
        self.rng = RngStream(seed, "traffic")
        self.stats = TrafficStats(scenario)
        self.tenants: List[_Tenant] = [
            _Tenant(spec, self, self.rng.child(spec.name), self.stats.tenants[spec.name])
            for spec in scenario.tenants
        ]
        self._inject_until = scenario.inject_until

    def start(self, inject_until: Optional[float] = None) -> None:
        """Spawn one injector process per tenant (call before ``sim.run``)."""
        if inject_until is not None:
            self._inject_until = inject_until
        self.cluster.traffic_stats = self.stats
        for tenant in self.tenants:
            self.cluster.sim.spawn(
                self._injector(tenant), name=f"traffic-{tenant.spec.name}"
            )

    # -- processes ---------------------------------------------------------

    def _injector(self, tenant: _Tenant):
        sim = self.cluster.sim
        spec = tenant.spec
        for at in iter_arrivals(spec.process, tenant.arrival_rng, spec.shape, self._inject_until):
            now = sim.now()
            if at > now:
                yield sim.timeout(at - now)
            sim.spawn(
                self._request(tenant, at), name=f"req-{spec.name}"
            )

    def _request(self, tenant: _Tenant, scheduled_at: float):
        from repro.cluster.simcluster import SimConnection
        from repro.common.errors import NodeUnavailable, TransactionAborted

        cluster = self.cluster
        sim = cluster.sim
        cfg = cluster.cost.config
        stats = tenant.stats
        spec = tenant.spec
        stats.injected += 1
        cluster.counters.add("traffic.requests_injected")
        now = sim.now()
        if tenant.breaker is not None and not tenant.breaker.allow(now):
            stats.note_shed("breaker")
            cluster.counters.add("traffic.breaker_short_circuits")
            return
        session = tenant.pick_session()
        name = session.pick()
        deadline = scheduled_at + tenant.deadline if tenant.deadline > 0 else None
        attempts = 0
        stats.in_flight += 1
        try:
            while True:
                now = sim.now()
                if deadline is not None and now >= deadline:
                    # Doomed before we even dialled: cancel client-side.
                    self._fail(tenant, now)
                    return
                conn = SimConnection(cluster)
                conn.tenant = spec.name
                conn.deadline = deadline
                gen = session.start(name, conn)
                try:
                    yield from cluster._drive(gen, conn)
                    done = sim.now()
                    latency = done - scheduled_at
                    stats.completed += 1
                    stats.latency.record(latency)
                    if latency <= spec.slo_latency:
                        # Goodput counts only completions within the SLO: a
                        # request finishing a minute late is throughput, not
                        # good service, and counting it would let a
                        # backlog-draining cluster look "recovered".
                        stats.slo_ok += 1
                        stats.goodput.mark(done)
                        self.stats.goodput.mark(done)
                    # Cluster-level metrics measure from scheduled arrival
                    # too: the open-loop latency is the honest one.
                    cluster.metrics.record_completion(done, latency)
                    if tenant.breaker is not None:
                        tenant.breaker.record(True, done)
                    return
                except (TransactionAborted, NodeUnavailable) as exc:
                    gen.close()
                    conn.cleanup()
                    now = sim.now()
                    reason = getattr(exc, "reason", "node-failure")
                    cluster.metrics.record_retry(reason)
                    stats.retried += 1
                    attempts += 1
                    if reason in _SHED_REASONS:
                        # An admission reject is the server shedding on
                        # purpose, not failing: feeding it to the breaker
                        # would amplify a healthy shed into a client-side
                        # blackout (the breaker latches open, sheds every
                        # arrival, and never sees the success that would
                        # close it).
                        stats.note_shed(reason)
                        return
                    if reason in _TERMINAL_FAIL_REASONS or (
                        deadline is not None and now >= deadline
                    ):
                        self._fail(tenant, now)
                        return
                    if attempts >= spec.max_attempts:
                        self._fail(tenant, now)
                        return
                    if tenant.budget is not None and not tenant.budget.try_spend(now):
                        stats.note_shed("retry-budget")
                        cluster.counters.add("traffic.retry_budget_exhausted")
                        return
                    yield sim.timeout(
                        session.retry_backoff(
                            attempts, cfg.browser_backoff_base, cfg.browser_backoff_cap
                        )
                    )
        finally:
            stats.in_flight -= 1

    def _fail(self, tenant: _Tenant, now: float) -> None:
        tenant.stats.failed += 1
        self.cluster.metrics.failed += 1
        if tenant.breaker is not None:
            tenant.breaker.record(False, now)
