"""CLI entry point: ``PYTHONPATH=src python -m repro.traffic``.

Runs one named traffic scenario (open-loop, seeded) against a simulated
cluster, with the overload defense stack on or off, and prints the chaos
report plus the per-tenant traffic table.  Exit status follows the
invariants only when defenses are on: with ``--defenses off`` the run is
*expected* to violate burst recovery (that is the metastability demo),
so invariant failures are reported but not fatal.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.chaos.scenario import run_chaos_scenario
from repro.traffic.scenario import (
    SCENARIOS,
    overload_base_config,
    overload_defense_config,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.traffic",
        description="Run one seeded open-loop traffic scenario.",
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="flash-crowd",
        help="named traffic scenario (see repro.traffic.scenario.SCENARIOS)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="virtual seconds (default: the scenario's own duration)",
    )
    parser.add_argument(
        "--defenses",
        choices=("on", "off"),
        default="on",
        help="'on' = admission control + deadlines + retry budgets + "
        "breaker; 'off' = same server shape, no defenses (the "
        "metastability demo arm; invariant failures become warnings)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the traffic stats as JSON to PATH ('-' = stdout)",
    )
    parser.add_argument(
        "--expect-fingerprint",
        default=None,
        help="fail unless the metrics fingerprint matches (reproducibility gate)",
    )
    args = parser.parse_args(argv)

    builder = SCENARIOS[args.scenario]
    kwargs = {"seed": args.seed}
    if args.duration is not None:
        kwargs["duration"] = args.duration
    scenario = builder(**kwargs)
    defenses_on = args.defenses == "on"
    cost_config = overload_defense_config() if defenses_on else overload_base_config()

    report = run_chaos_scenario(
        seed=args.seed,
        cost_config=cost_config,
        traffic=scenario,
    )
    print(scenario.describe() + f" [defenses {args.defenses}]")
    print(report.summary())

    if args.json and report.traffic is not None:
        payload = report.traffic.to_json()
        payload["defenses"] = args.defenses
        payload["seed"] = args.seed
        payload["fingerprint"] = report.fingerprint
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print(f"traffic stats -> {args.json}")

    ok = True
    if args.expect_fingerprint and report.fingerprint != args.expect_fingerprint:
        print(
            f"FAIL: fingerprint {report.fingerprint} != expected {args.expect_fingerprint}"
        )
        ok = False
    if defenses_on and not report.ok():
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
