"""Client-side overload defenses: retry budgets and circuit breaking.

Both are pure state machines on the virtual clock — no events, no RNG —
so constructing them never perturbs a seeded run; they only exist at all
when the corresponding :class:`~repro.cluster.costs.CostConfig` knobs are
non-zero.

A :class:`RetryBudget` is a token bucket spent one token per *retry*
(first attempts are free): when a burst of rejections empties it, further
failed requests give up immediately instead of amplifying the original
burst into a retry storm — the classic metastable-failure ingredient.

A :class:`CircuitBreaker` watches the rolling window of request outcomes
and, past a failure-fraction threshold, sheds new requests client-side
(without touching the cluster) until a cooldown passes and a half-open
probe succeeds.
"""

from __future__ import annotations

from collections import deque
from typing import Deque


class RetryBudget:
    """Token bucket limiting the *rate* of retries a client may issue."""

    def __init__(self, rate: float, burst: float = 0.0, now: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("retry budget rate must be positive")
        self.rate = rate
        self.burst = burst if burst > 0 else rate
        self._tokens = self.burst
        self._last = now
        self.spent = 0
        self.exhausted = 0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    def tokens(self, now: float) -> float:
        self._refill(now)
        return self._tokens

    def try_spend(self, now: float) -> bool:
        """Spend one retry token; False means the budget is exhausted."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.spent += 1
            return True
        self.exhausted += 1
        return False


class CircuitBreaker:
    """Rolling-window failure-fraction breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: float,
        window: int = 20,
        cooldown: float = 5.0,
    ) -> None:
        if not 0 < failure_threshold <= 1:
            raise ValueError("failure threshold must be in (0, 1]")
        self.failure_threshold = failure_threshold
        self.window = max(2, window)
        self.cooldown = cooldown
        self._outcomes: Deque[bool] = deque(maxlen=self.window)
        self.state = "closed"  # closed | open | half-open
        self._opened_at = 0.0
        self.opens = 0
        self.short_circuits = 0

    def allow(self, now: float) -> bool:
        """May a new request be sent right now?

        While open, everything is shed until ``cooldown`` elapses; then
        exactly one probe is let through (half-open) and its outcome
        decides whether the breaker closes or re-opens.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if now - self._opened_at >= self.cooldown:
                self.state = "half-open"
                return True
            self.short_circuits += 1
            return False
        # half-open: one probe is already in flight; shed the rest.
        self.short_circuits += 1
        return False

    def record(self, ok: bool, now: float) -> None:
        """Feed one terminal request outcome into the rolling window."""
        if self.state == "half-open":
            if ok:
                self.state = "closed"
                self._outcomes.clear()
            else:
                self.state = "open"
                self._opened_at = now
            return
        self._outcomes.append(ok)
        if self.state == "closed" and len(self._outcomes) >= self.window:
            failures = sum(1 for outcome in self._outcomes if not outcome)
            if failures / len(self._outcomes) >= self.failure_threshold:
                self.state = "open"
                self._opened_at = now
                self.opens += 1
