"""Seeded arrival processes and composable rate shapes.

A :class:`RateShape` is a deterministic intensity function ``rate(t)``
(requests/second of virtual time).  Shapes compose with ``+`` — a flash
crowd is just ``ConstantRate(base) + BurstRate(...)`` — and each shape
reports its ``peak`` (for Lewis–Shedler thinning) and any ``bursts``
windows (for the burst-recovery invariant).

Two arrival processes turn a shape into scheduled arrival times:

* ``poisson`` — a non-homogeneous Poisson process via thinning: candidate
  arrivals are drawn at the peak rate from the tenant's own
  :class:`~repro.common.rng.RngStream` and accepted with probability
  ``rate(t)/peak``.  Deterministic given the stream.
* ``uniform`` — deterministic pacing that tracks the rate curve exactly:
  the next arrival lands ``1/rate(t)`` after the previous one.

Both are pure generators over the virtual clock: the schedule depends
only on (seed, shape), never on completions — that independence is what
makes the load open-loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.common.rng import RngStream


class RateShape:
    """Base class: a deterministic arrival-intensity function of time."""

    def rate(self, t: float) -> float:
        raise NotImplementedError

    def peak(self) -> float:
        """Upper bound on ``rate(t)`` (the thinning envelope)."""
        raise NotImplementedError

    def bursts(self) -> List[Tuple[float, float]]:
        """``(start, end)`` windows where the shape deliberately surges."""
        return []

    def __add__(self, other: "RateShape") -> "CompositeRate":
        mine = list(self.shapes) if isinstance(self, CompositeRate) else [self]
        theirs = list(other.shapes) if isinstance(other, CompositeRate) else [other]
        return CompositeRate(tuple(mine + theirs))


@dataclass(frozen=True)
class ConstantRate(RateShape):
    """Steady offered load of ``per_second`` requests/second."""

    per_second: float

    def rate(self, t: float) -> float:
        return self.per_second

    def peak(self) -> float:
        return self.per_second


@dataclass(frozen=True)
class DiurnalRate(RateShape):
    """Sinusoidal day/night curve: ``base * (1 + amplitude*sin(2πt/period))``.

    ``amplitude`` is a fraction in [0, 1]; the trough never goes negative.
    """

    base: float
    amplitude: float = 0.5
    period: float = 120.0
    phase: float = 0.0

    def rate(self, t: float) -> float:
        amp = min(1.0, max(0.0, self.amplitude))
        return max(
            0.0,
            self.base * (1.0 + amp * math.sin(2.0 * math.pi * (t - self.phase) / self.period)),
        )

    def peak(self) -> float:
        return self.base * (1.0 + min(1.0, max(0.0, self.amplitude)))


@dataclass(frozen=True)
class BurstRate(RateShape):
    """A flash crowd: ``extra`` additional requests/second inside a window."""

    extra: float
    start: float
    duration: float

    def rate(self, t: float) -> float:
        return self.extra if self.start <= t < self.start + self.duration else 0.0

    def peak(self) -> float:
        return self.extra

    def bursts(self) -> List[Tuple[float, float]]:
        return [(self.start, self.start + self.duration)]


@dataclass(frozen=True)
class CompositeRate(RateShape):
    """Sum of component shapes (what ``shape_a + shape_b`` builds)."""

    shapes: Tuple[RateShape, ...]

    def rate(self, t: float) -> float:
        return sum(shape.rate(t) for shape in self.shapes)

    def peak(self) -> float:
        return sum(shape.peak() for shape in self.shapes)

    def bursts(self) -> List[Tuple[float, float]]:
        out: List[Tuple[float, float]] = []
        for shape in self.shapes:
            out.extend(shape.bursts())
        return sorted(out)


def poisson_arrivals(rng: RngStream, shape: RateShape, until: float) -> Iterator[float]:
    """Non-homogeneous Poisson arrivals by Lewis–Shedler thinning."""
    peak = shape.peak()
    if peak <= 0:
        return
    t = 0.0
    while True:
        t += rng.expovariate(1.0 / peak)
        if t >= until:
            return
        if rng.random() < shape.rate(t) / peak:
            yield t


def uniform_arrivals(rng: RngStream, shape: RateShape, until: float) -> Iterator[float]:
    """Deterministically paced arrivals tracking the rate curve exactly.

    ``rng`` is accepted for interface symmetry but never drawn from: a
    uniform tenant's schedule is a pure function of its shape.
    """
    t = 0.0
    idle_step = 0.25  # probe forward through zero-rate stretches
    while t < until:
        r = shape.rate(t)
        if r <= 0:
            t += idle_step
            continue
        yield t
        t += 1.0 / r


ARRIVAL_PROCESSES = {
    "poisson": poisson_arrivals,
    "uniform": uniform_arrivals,
}


def iter_arrivals(
    process: str, rng: RngStream, shape: RateShape, until: float
) -> Iterator[float]:
    """Arrival times in [0, until) for one tenant's configured process."""
    try:
        fn = ARRIVAL_PROCESSES[process]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {process!r} (expected one of "
            f"{sorted(ARRIVAL_PROCESSES)})"
        ) from None
    return fn(rng, shape, until)
