"""A compact SQL subset: lexer, parser, planner and executor.

Covers what the TPC-W interactions need — multi-table joins, aggregates
with GROUP BY, ORDER BY ... DESC, LIMIT/OFFSET, LIKE, IN lists, arithmetic
in projections and SET clauses, and ``?`` parameters — over the
:mod:`repro.engine` table engine.  Statements are parsed once and cached.
"""

from repro.sql.ast_nodes import Statement
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_statement
from repro.sql.executor import ResultSet, SqlExecutor, parse_cached

__all__ = [
    "tokenize",
    "parse_statement",
    "parse_cached",
    "Statement",
    "SqlExecutor",
    "ResultSet",
]
