"""Statement compilation and execution over the heap engine.

:class:`SqlExecutor` parses + plans each distinct SQL string once (cached),
then executes the compiled plan against a transaction.  Expressions compile
to closures ``fn(env, ctx)``; ``env`` maps table bindings to row tuples,
``ctx`` carries parameters and the clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import SqlError
from repro.engine.engine import HeapEngine
from repro.engine.indexes import prefix_bounds
from repro.engine.table import Table
from repro.engine.txn import Transaction
from repro.sql.ast_nodes import (
    AGGREGATE_FUNCS,
    Between,
    BinOp,
    ColumnRef,
    Delete,
    Expr,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    Literal,
    OrderItem,
    Param,
    Select,
    SelectItem,
    Statement,
    UnaryOp,
    Update,
    is_aggregate,
)
from repro.sql.functions import like_match, like_range, sql_arith, sql_compare
from repro.sql.parser import parse_statement
from repro.sql.planner import (
    Binding,
    FullScanAccess,
    IndexAccess,
    PkEqAccess,
    Resolver,
    assign_filters,
    order_tables,
    split_conjuncts,
)

Env = Dict[str, tuple]
EvalFn = Callable[[Env, "ExecContext"], object]


@dataclass
class ExecContext:
    """Per-execution state available to compiled expressions."""

    params: Sequence[object]
    now: Callable[[], float]


@dataclass
class ResultSet:
    """Columns + row tuples returned by a statement.

    DML statements return an empty column list and ``rowcount`` reflecting
    the number of rows inserted/updated/deleted.
    """

    columns: List[str]
    rows: List[tuple]
    rowcount: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> object:
        """First column of the first row (or None if empty)."""
        return self.rows[0][0] if self.rows else None

    def dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


# -- expression compilation --------------------------------------------------------
def _truthy(value: object) -> bool:
    """SQL three-valued logic collapsed for filtering: NULL is not true."""
    return value is True


def compile_expr(expr: Expr, resolver: Resolver) -> EvalFn:
    """Compile a non-aggregate expression to a closure."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda env, ctx: value
    if isinstance(expr, Param):
        index = expr.index
        def param_fn(env, ctx):
            try:
                return ctx.params[index]
            except IndexError:
                raise SqlError(f"missing parameter {index}") from None
        return param_fn
    if isinstance(expr, ColumnRef):
        binding, position = resolver.resolve(expr)
        return lambda env, ctx: env[binding][position]
    if isinstance(expr, BinOp):
        left = compile_expr(expr.left, resolver)
        right = compile_expr(expr.right, resolver)
        op = expr.op
        if op == "and":
            def and_fn(env, ctx):
                l = left(env, ctx)
                if l is False:
                    return False
                r = right(env, ctx)
                if r is False:
                    return False
                if l is None or r is None:
                    return None
                return True
            return and_fn
        if op == "or":
            def or_fn(env, ctx):
                l = left(env, ctx)
                if l is True:
                    return True
                r = right(env, ctx)
                if r is True:
                    return True
                if l is None or r is None:
                    return None
                return False
            return or_fn
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda env, ctx: sql_compare(op, left(env, ctx), right(env, ctx))
        return lambda env, ctx: sql_arith(op, left(env, ctx), right(env, ctx))
    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, resolver)
        if expr.op == "-":
            def neg_fn(env, ctx):
                value = operand(env, ctx)
                return None if value is None else -value
            return neg_fn
        if expr.op == "not":
            def not_fn(env, ctx):
                value = operand(env, ctx)
                return None if value is None else (not value)
            return not_fn
        raise SqlError(f"unknown unary operator {expr.op}")
    if isinstance(expr, Like):
        value_fn = compile_expr(expr.expr, resolver)
        pattern_fn = compile_expr(expr.pattern, resolver)
        negated = expr.negated
        def like_fn(env, ctx):
            result = like_match(value_fn(env, ctx), pattern_fn(env, ctx))
            if result is None:
                return None
            return (not result) if negated else result
        return like_fn
    if isinstance(expr, InList):
        value_fn = compile_expr(expr.expr, resolver)
        item_fns = [compile_expr(item, resolver) for item in expr.items]
        negated = expr.negated
        def in_fn(env, ctx):
            value = value_fn(env, ctx)
            if value is None:
                return None
            found = any(value == fn(env, ctx) for fn in item_fns)
            return (not found) if negated else found
        return in_fn
    if isinstance(expr, Between):
        value_fn = compile_expr(expr.expr, resolver)
        low_fn = compile_expr(expr.low, resolver)
        high_fn = compile_expr(expr.high, resolver)
        negated = expr.negated
        def between_fn(env, ctx):
            value = value_fn(env, ctx)
            low, high = low_fn(env, ctx), high_fn(env, ctx)
            if value is None or low is None or high is None:
                return None
            result = low <= value <= high
            return (not result) if negated else result
        return between_fn
    if isinstance(expr, IsNull):
        value_fn = compile_expr(expr.expr, resolver)
        negated = expr.negated
        return lambda env, ctx: (value_fn(env, ctx) is not None) if negated else (
            value_fn(env, ctx) is None
        )
    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCS:
            raise SqlError(f"aggregate {expr.name} not allowed here")
        if expr.name == "now":
            return lambda env, ctx: ctx.now()
        raise SqlError(f"unknown function {expr.name}")
    raise SqlError(f"cannot compile expression {expr!r}")


# -- aggregate machinery --------------------------------------------------------------
@dataclass
class _AggSpec:
    node: FuncCall
    arg_fn: Optional[EvalFn]  # None for COUNT(*)

    def compute(self, envs: List[Env], ctx: ExecContext) -> object:
        name = self.node.name
        if self.node.star:
            return len(envs)
        values = [self.arg_fn(env, ctx) for env in envs]
        values = [v for v in values if v is not None]
        if self.node.distinct:
            values = list(dict.fromkeys(values))
        if name == "count":
            return len(values)
        if not values:
            return None
        if name == "sum":
            return sum(values)
        if name == "avg":
            return sum(values) / len(values)
        if name == "min":
            return min(values)
        if name == "max":
            return max(values)
        raise SqlError(f"unknown aggregate {name}")


def _collect_aggregates(expr: Expr, out: List[FuncCall]) -> None:
    if isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCS:
        if not any(existing is expr for existing in out):
            out.append(expr)
        return
    if isinstance(expr, BinOp):
        _collect_aggregates(expr.left, out)
        _collect_aggregates(expr.right, out)
    elif isinstance(expr, UnaryOp):
        _collect_aggregates(expr.operand, out)


def compile_agg_expr(expr: Expr, resolver: Resolver, agg_slots: Dict[int, int]) -> EvalFn:
    """Compile an expression that may reference aggregate results.

    Aggregate sub-nodes read slot values from ``env['__agg__']``; plain
    column refs read the group's representative row.
    """
    if isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCS:
        slot = agg_slots[id(expr)]
        return lambda env, ctx: env["__agg__"][slot]
    if isinstance(expr, BinOp) and is_aggregate(expr):
        left = compile_agg_expr(expr.left, resolver, agg_slots)
        right = compile_agg_expr(expr.right, resolver, agg_slots)
        op = expr.op
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda env, ctx: sql_compare(op, left(env, ctx), right(env, ctx))
        return lambda env, ctx: sql_arith(op, left(env, ctx), right(env, ctx))
    if isinstance(expr, UnaryOp) and is_aggregate(expr):
        operand = compile_agg_expr(expr.operand, resolver, agg_slots)
        return lambda env, ctx: (lambda v: None if v is None else -v)(operand(env, ctx))
    return compile_expr(expr, resolver)


# -- compiled plans --------------------------------------------------------------------
@dataclass
class _TableStep:
    binding: str
    table_name: str
    access: object
    filter_fns: List[EvalFn]
    # Compiled access inputs:
    key_fns: Optional[List[EvalFn]] = None
    eq_fns: Optional[List[EvalFn]] = None
    low: Optional[Tuple[EvalFn, bool]] = None
    high: Optional[Tuple[EvalFn, bool]] = None
    like_fn: Optional[EvalFn] = None
    in_fns: Optional[List[EvalFn]] = None
    index_name: Optional[str] = None


@dataclass
class _OrderKey:
    fn: EvalFn
    descending: bool


class _CompiledSelect:
    def __init__(self, engine: HeapEngine, stmt: Select) -> None:
        bindings = []
        for ref in stmt.tables:
            table = engine.table(ref.table)
            bindings.append(Binding(ref, table.schema))
        self.resolver = Resolver(bindings)
        conjuncts = split_conjuncts(stmt.where)
        row_counts = {b.ref.table: engine.table(b.ref.table).row_count for b in bindings}
        ordered = order_tables(bindings, conjuncts, self.resolver, row_counts)
        per_step_filters = assign_filters(ordered, conjuncts, self.resolver)
        self.steps: List[_TableStep] = []
        for (binding, access), filters in zip(ordered, per_step_filters):
            step = _TableStep(
                binding=binding.name,
                table_name=binding.ref.table,
                access=access,
                filter_fns=[compile_expr(f, self.resolver) for f in filters],
            )
            if isinstance(access, PkEqAccess):
                step.key_fns = [compile_expr(e, self.resolver) for e in access.key_exprs]
            elif isinstance(access, IndexAccess):
                step.index_name = access.index_name
                step.eq_fns = [compile_expr(e, self.resolver) for e in access.eq_exprs]
                if access.low is not None:
                    step.low = (compile_expr(access.low[0], self.resolver), access.low[1])
                if access.high is not None:
                    step.high = (compile_expr(access.high[0], self.resolver), access.high[1])
                if access.like_pattern is not None:
                    step.like_fn = compile_expr(access.like_pattern, self.resolver)
                if access.in_exprs is not None:
                    step.in_fns = [compile_expr(e, self.resolver) for e in access.in_exprs]
            self.steps.append(step)

        # Projections.
        if stmt.star:
            items: List[SelectItem] = []
            self.columns: List[str] = []
            for binding in bindings:
                for col in binding.schema.columns:
                    items.append(
                        SelectItem(ColumnRef(binding.name, col.name), col.name)
                    )
                    self.columns.append(col.name)
            stmt = Select(
                items, stmt.tables, None, stmt.group_by, stmt.having,
                stmt.order_by, stmt.limit, stmt.offset, stmt.distinct, False,
            )
            self.select_items = items
        else:
            self.select_items = stmt.items
            self.columns = [self._column_name(item) for item in stmt.items]

        self.is_aggregate = bool(stmt.group_by) or stmt.having is not None or any(
            is_aggregate(item.expr) for item in self.select_items
        ) or any(is_aggregate(o.expr) for o in stmt.order_by)

        if self.is_aggregate:
            agg_nodes: List[FuncCall] = []
            for item in self.select_items:
                _collect_aggregates(item.expr, agg_nodes)
            for order in stmt.order_by:
                _collect_aggregates(order.expr, agg_nodes)
            if stmt.having is not None:
                _collect_aggregates(stmt.having, agg_nodes)
            self.agg_specs = [
                _AggSpec(node, compile_expr(node.args[0], self.resolver) if node.args else None)
                for node in agg_nodes
            ]
            agg_slots = {id(node): i for i, node in enumerate(agg_nodes)}
            self.group_fns = [compile_expr(e, self.resolver) for e in stmt.group_by]
            self.output_fns = [
                compile_agg_expr(item.expr, self.resolver, agg_slots)
                for item in self.select_items
            ]
            self.having_fn = (
                compile_agg_expr(stmt.having, self.resolver, agg_slots)
                if stmt.having is not None
                else None
            )
            order_compile = lambda e: compile_agg_expr(e, self.resolver, agg_slots)
        else:
            self.agg_specs = []
            self.group_fns = []
            self.having_fn = None
            self.output_fns = [compile_expr(item.expr, self.resolver) for item in self.select_items]
            order_compile = lambda e: compile_expr(e, self.resolver)

        # ORDER BY: resolve select-alias references to output positions.
        alias_pos = {
            item.alias: i for i, item in enumerate(self.select_items) if item.alias
        }
        self.order_keys: List[_OrderKey] = []
        self.order_output_positions: List[Tuple[Optional[int], _OrderKey]] = []
        for order in stmt.order_by:
            position = None
            if isinstance(order.expr, ColumnRef) and order.expr.table is None:
                position = alias_pos.get(order.expr.column)
                if position is None:
                    # Also match bare select items (ORDER BY same column).
                    for i, item in enumerate(self.select_items):
                        if item.expr == order.expr:
                            position = i
                            break
            key = _OrderKey(
                order_compile(order.expr) if position is None else None,
                order.descending,
            )
            self.order_output_positions.append((position, key))
        self.distinct = stmt.distinct
        self.limit_fn = compile_expr(stmt.limit, self.resolver) if stmt.limit else None
        self.offset_fn = compile_expr(stmt.offset, self.resolver) if stmt.offset else None
        self.minmax = self._minmax_shortcut(engine, stmt)

    def _minmax_shortcut(self, engine: HeapEngine, stmt: Select):
        """Detect ``SELECT MAX(col) FROM t`` answerable from an index edge.

        Returns ``(table, index_name, column_position, reverse)`` or None.
        """
        if (
            len(self.steps) != 1
            or stmt.group_by
            or stmt.where is not None
            or len(self.select_items) != 1
        ):
            return None
        expr = self.select_items[0].expr
        if not (
            isinstance(expr, FuncCall)
            and expr.name in ("min", "max")
            and len(expr.args) == 1
            and isinstance(expr.args[0], ColumnRef)
            and not expr.distinct
        ):
            return None
        step = self.steps[0]
        if step.filter_fns or not isinstance(step.access, FullScanAccess):
            return None
        table = engine.table(step.table_name)
        column = expr.args[0].column
        if not table.schema.has_column(column):
            return None
        for index in table.schema.indexes:
            if index.columns[0] == column:
                return (step.table_name, index.name, table.schema.position(column),
                        expr.name == "max")
        return None

    @staticmethod
    def _column_name(item: SelectItem) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            return item.expr.column
        if isinstance(item.expr, FuncCall):
            return item.expr.name
        return "expr"

    # -- runtime -----------------------------------------------------------------
    def _iter_step(
        self, engine: HeapEngine, txn: Transaction, step: _TableStep, env: Env, ctx: ExecContext
    ) -> Iterator[tuple]:
        table = engine.table(step.table_name)
        access = step.access
        if isinstance(access, PkEqAccess):
            key = tuple(fn(env, ctx) for fn in step.key_fns)
            for loc in table.pk_lookup(txn, key):
                row = table.fetch(txn, loc)
                if row is not None:
                    yield row
            return
        if isinstance(access, IndexAccess):
            eq_vals = tuple(fn(env, ctx) for fn in step.eq_fns)
            if step.in_fns is not None:
                # IN-list: a union of point prefixes.  Dedup the evaluated
                # values — repeated list members must not emit a row twice.
                in_vals = dict.fromkeys(fn(env, ctx) for fn in step.in_fns)
                for value in in_vals:
                    lo_enc, hi_enc = prefix_bounds(eq_vals + (value,))
                    for loc in table.index_range_encoded(txn, step.index_name, lo_enc, hi_enc):
                        row = table.fetch(txn, loc)
                        if row is not None:
                            yield row
                return
            low = high = None
            if step.low is not None:
                low = (step.low[0](env, ctx), step.low[1])
            if step.high is not None:
                high = (step.high[0](env, ctx), step.high[1])
            if step.like_fn is not None:
                bounds = like_range(step.like_fn(env, ctx))
                if bounds is not None:
                    low, high = (bounds[0], True), (bounds[1], True)
            lo_enc, hi_enc = prefix_bounds(eq_vals, low, high)
            for loc in table.index_range_encoded(txn, step.index_name, lo_enc, hi_enc):
                row = table.fetch(txn, loc)
                if row is not None:
                    yield row
            return
        for _loc, row in table.scan(txn):
            yield row

    def _join(
        self, engine: HeapEngine, txn: Transaction, ctx: ExecContext
    ) -> Iterator[Env]:
        def recurse(step_index: int, env: Env) -> Iterator[Env]:
            if step_index == len(self.steps):
                yield dict(env)
                return
            step = self.steps[step_index]
            for row in self._iter_step(engine, txn, step, env, ctx):
                env[step.binding] = row
                if all(_truthy(fn(env, ctx)) for fn in step.filter_fns):
                    yield from recurse(step_index + 1, env)
            env.pop(step.binding, None)

        yield from recurse(0, {})

    def run(self, engine: HeapEngine, txn: Transaction, ctx: ExecContext) -> ResultSet:
        if self.minmax is not None:
            table_name, index_name, position, reverse = self.minmax
            table = engine.table(table_name)
            for loc in table.index_range_encoded(txn, index_name, None, None, reverse=reverse):
                row = table.fetch(txn, loc)
                if row is not None and row[position] is not None:
                    return ResultSet(self.columns, [(row[position],)], rowcount=1)
            return ResultSet(self.columns, [(None,)], rowcount=1)
        envs = self._join(engine, txn, ctx)
        if self.is_aggregate:
            outputs = self._run_aggregate(envs, ctx)
        else:
            outputs = []
            for env in envs:
                row = tuple(fn(env, ctx) for fn in self.output_fns)
                keys = tuple(
                    None if pos is not None else key.fn(env, ctx)
                    for pos, key in self.order_output_positions
                )
                outputs.append((row, keys))
        if self.distinct:
            seen = set()
            deduped = []
            for row, keys in outputs:
                if row not in seen:
                    seen.add(row)
                    deduped.append((row, keys))
            outputs = deduped
        outputs = self._sort(outputs)
        rows = [row for row, _keys in outputs]
        rows = self._apply_limit(rows, ctx)
        return ResultSet(self.columns, rows, rowcount=len(rows))

    def _run_aggregate(self, envs: Iterator[Env], ctx: ExecContext) -> List[tuple]:
        groups: Dict[tuple, List[Env]] = {}
        for env in envs:
            key = tuple(_hashable(fn(env, ctx)) for fn in self.group_fns)
            groups.setdefault(key, []).append(env)
        if not groups and not self.group_fns:
            groups[()] = []  # global aggregate over empty input
        outputs = []
        for key, group_envs in groups.items():
            agg_values = [spec.compute(group_envs, ctx) for spec in self.agg_specs]
            rep = dict(group_envs[0]) if group_envs else {}
            rep["__agg__"] = agg_values
            if self.having_fn is not None and not _truthy(self.having_fn(rep, ctx)):
                continue
            row = tuple(fn(rep, ctx) for fn in self.output_fns)
            keys = tuple(
                None if pos is not None else k.fn(rep, ctx)
                for pos, k in self.order_output_positions
            )
            outputs.append((row, keys))
        return outputs

    def _sort(self, outputs: List[Tuple[tuple, tuple]]) -> List[Tuple[tuple, tuple]]:
        if not self.order_output_positions:
            return outputs
        # Stable multi-key sort: apply keys right-to-left.
        for key_index in range(len(self.order_output_positions) - 1, -1, -1):
            position, key = self.order_output_positions[key_index]

            def sort_key(item, position=position, key_index=key_index):
                row, keys = item
                value = row[position] if position is not None else keys[key_index]
                return (value is None, value)  # NULLs last ascending

            outputs.sort(key=sort_key, reverse=key.descending)
        return outputs

    def _apply_limit(self, rows: List[tuple], ctx: ExecContext) -> List[tuple]:
        offset = int(self.offset_fn({}, ctx)) if self.offset_fn else 0
        if offset:
            rows = rows[offset:]
        if self.limit_fn is not None:
            rows = rows[: int(self.limit_fn({}, ctx))]
        return rows


def _hashable(value: object) -> object:
    return value


class _CompiledInsert:
    def __init__(self, engine: HeapEngine, stmt: Insert) -> None:
        table = engine.table(stmt.table)
        self.table_name = stmt.table
        for col in stmt.columns:
            table.schema.position(col)  # validate
        self.columns = stmt.columns
        resolver = Resolver([])
        self.row_fns = [
            [compile_expr(e, resolver) for e in row] for row in stmt.rows
        ]

    def run(self, engine: HeapEngine, txn: Transaction, ctx: ExecContext) -> ResultSet:
        table = engine.table(self.table_name)
        count = 0
        for row_fn in self.row_fns:
            values = {col: fn({}, ctx) for col, fn in zip(self.columns, row_fn)}
            table.insert_row(txn, values)
            count += 1
        return ResultSet([], [], rowcount=count)


class _CompiledDml:
    """Shared row-selection machinery for UPDATE and DELETE."""

    def __init__(self, engine: HeapEngine, table_name: str, where: Optional[Expr]) -> None:
        table = engine.table(table_name)
        ref_binding = Binding(
            ref=_table_ref(table_name), schema=table.schema
        )
        self.resolver = Resolver([ref_binding])
        conjuncts = split_conjuncts(where)
        ordered = order_tables([ref_binding], conjuncts, self.resolver, {table_name: table.row_count})
        filters = assign_filters(ordered, conjuncts, self.resolver)
        (binding, access), step_filters = ordered[0], filters[0]
        step = _TableStep(
            binding=binding.name,
            table_name=table_name,
            access=access,
            filter_fns=[compile_expr(f, self.resolver) for f in step_filters],
        )
        if isinstance(access, PkEqAccess):
            step.key_fns = [compile_expr(e, self.resolver) for e in access.key_exprs]
        elif isinstance(access, IndexAccess):
            step.index_name = access.index_name
            step.eq_fns = [compile_expr(e, self.resolver) for e in access.eq_exprs]
            if access.low is not None:
                step.low = (compile_expr(access.low[0], self.resolver), access.low[1])
            if access.high is not None:
                step.high = (compile_expr(access.high[0], self.resolver), access.high[1])
            if access.like_pattern is not None:
                step.like_fn = compile_expr(access.like_pattern, self.resolver)
        self.step = step
        self.binding = binding.name
        self.table_name = table_name

    def matching_locs(
        self, engine: HeapEngine, txn: Transaction, ctx: ExecContext
    ) -> List[Tuple[object, tuple]]:
        """Materialise (loc, row) matches before mutating anything.

        Rows are fetched with the write lock held from the start
        (lock-for-update), preventing S->X upgrade deadlocks between
        concurrent DML statements.
        """
        table = engine.table(self.table_name)
        matches: List[Tuple[object, tuple]] = []
        env: Env = {}
        access = self.step.access
        if isinstance(access, PkEqAccess):
            key = tuple(fn(env, ctx) for fn in self.step.key_fns)
            candidates = [
                (loc, table.fetch_for_update(txn, loc)) for loc in table.pk_lookup(txn, key)
            ]
        elif isinstance(access, IndexAccess):
            eq_vals = tuple(fn(env, ctx) for fn in self.step.eq_fns)
            if self.step.in_fns is not None:
                candidates = []
                in_vals = dict.fromkeys(fn(env, ctx) for fn in self.step.in_fns)
                for value in in_vals:
                    lo_enc, hi_enc = prefix_bounds(eq_vals + (value,))
                    candidates.extend(
                        (loc, table.fetch_for_update(txn, loc))
                        for loc in list(
                            table.index_range_encoded(txn, self.step.index_name, lo_enc, hi_enc)
                        )
                    )
                for loc, row in candidates:
                    if row is None:
                        continue
                    env = {self.binding: row}
                    if all(_truthy(fn(env, ctx)) for fn in self.step.filter_fns):
                        matches.append((loc, row))
                return matches
            low = high = None
            if self.step.low is not None:
                low = (self.step.low[0](env, ctx), self.step.low[1])
            if self.step.high is not None:
                high = (self.step.high[0](env, ctx), self.step.high[1])
            if self.step.like_fn is not None:
                bounds = like_range(self.step.like_fn(env, ctx))
                if bounds is not None:
                    low, high = (bounds[0], True), (bounds[1], True)
            lo_enc, hi_enc = prefix_bounds(eq_vals, low, high)
            candidates = [
                (loc, table.fetch_for_update(txn, loc))
                for loc in list(table.index_range_encoded(txn, self.step.index_name, lo_enc, hi_enc))
            ]
        else:
            candidates = list(table.scan(txn))
        for loc, row in candidates:
            if row is None:
                continue
            env = {self.binding: row}
            if all(_truthy(fn(env, ctx)) for fn in self.step.filter_fns):
                matches.append((loc, row))
        return matches


class _CompiledUpdate(_CompiledDml):
    def __init__(self, engine: HeapEngine, stmt: Update) -> None:
        super().__init__(engine, stmt.table, stmt.where)
        self.assign_fns = [
            (column, compile_expr(expr, self.resolver)) for column, expr in stmt.assignments
        ]

    def run(self, engine: HeapEngine, txn: Transaction, ctx: ExecContext) -> ResultSet:
        table = engine.table(self.table_name)
        matches = self.matching_locs(engine, txn, ctx)
        for loc, row in matches:
            env = {self.binding: row}
            changes = {column: fn(env, ctx) for column, fn in self.assign_fns}
            table.update_row(txn, loc, changes)
        return ResultSet([], [], rowcount=len(matches))


class _CompiledDelete(_CompiledDml):
    def __init__(self, engine: HeapEngine, stmt: Delete) -> None:
        super().__init__(engine, stmt.table, stmt.where)

    def run(self, engine: HeapEngine, txn: Transaction, ctx: ExecContext) -> ResultSet:
        table = engine.table(self.table_name)
        matches = self.matching_locs(engine, txn, ctx)
        for loc, _row in matches:
            table.delete_row(txn, loc)
        return ResultSet([], [], rowcount=len(matches))


def _table_ref(name: str):
    from repro.sql.ast_nodes import TableRef

    return TableRef(name, None)


#: Process-wide parsed-statement cache, keyed by statement identity (the
#: exact SQL text).  AST nodes are frozen dataclasses, so one parse is
#: safely shared by every executor in the cluster — each node compiles its
#: own plan (plans bind engine-specific resolvers and row-count
#: heuristics), but the lex/parse work happens once per distinct statement
#: instead of once per node.
_PARSE_CACHE: Dict[str, Statement] = {}
_PARSE_CACHE_MAX = 4096


def parse_cached(sql: str) -> Statement:
    """Parse ``sql`` through the shared statement cache."""
    stmt = _PARSE_CACHE.get(sql)
    if stmt is None:
        if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
            # Workloads use a fixed statement set; an overflow means
            # generated one-off SQL, where caching has no value anyway.
            _PARSE_CACHE.clear()
        stmt = _PARSE_CACHE[sql] = parse_statement(sql)
    return stmt


class SqlExecutor:
    """Parse/plan-once, execute-many SQL front end for one engine."""

    def __init__(self, engine: HeapEngine, now: Optional[Callable[[], float]] = None) -> None:
        self.engine = engine
        self.now = now if now is not None else (lambda: 0.0)
        self._plans: Dict[str, object] = {}
        #: Plain attribute, not a Counters entry: always maintained (the
        #: micro-benchmarks read it), while the ``engine.plan_cache_hits``
        #: counter is emitted only under the OCC controller so legacy-mode
        #: counter fingerprints stay bit-for-bit stable.
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    def execute(
        self, txn: Transaction, sql: str, params: Sequence[object] = ()
    ) -> ResultSet:
        """Execute one statement inside ``txn``."""
        plan = self._plans.get(sql)
        if plan is None:
            self.plan_cache_misses += 1
            plan = self._compile(sql)
            self._plans[sql] = plan
        else:
            self.plan_cache_hits += 1
            engine = self.engine
            if engine.controller.emits_occ_counters:
                engine.counters.add("engine.plan_cache_hits")
        ctx = ExecContext(params, self.now)
        return plan.run(self.engine, txn, ctx)

    def _compile(self, sql: str):
        stmt = parse_cached(sql)
        return compile_statement(self.engine, stmt)

    def invalidate_plans(self) -> None:
        """Drop cached plans (row-count heuristics change after bulk loads)."""
        self._plans.clear()


def compile_statement(engine: HeapEngine, stmt: Statement):
    if isinstance(stmt, Select):
        return _CompiledSelect(engine, stmt)
    if isinstance(stmt, Insert):
        return _CompiledInsert(engine, stmt)
    if isinstance(stmt, Update):
        return _CompiledUpdate(engine, stmt)
    if isinstance(stmt, Delete):
        return _CompiledDelete(engine, stmt)
    raise SqlError(f"unsupported statement {type(stmt).__name__}")
