"""Query planning: join ordering, access-path selection, predicate pushdown.

The planner compiles a parsed statement against a concrete engine's schemas
into a :class:`SelectPlan` (or DML plan).  Strategy:

* split WHERE into conjuncts,
* greedily order join tables — at each step pick the table with the
  cheapest access path given the bindings produced so far (PK equality ≫
  index prefix ≫ index range ≫ full scan),
* per table, consume equality/range/LIKE-prefix conjuncts into the access
  path and attach the remaining conjuncts as filters at the earliest step
  where all their column references are bound.

Expressions are compiled to Python closures ``fn(env, ctx)`` where ``env``
maps table bindings to row tuples and ``ctx`` supplies parameters and the
clock; see :mod:`repro.sql.executor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SchemaError, SqlError
from repro.engine.schema import TableSchema
from repro.sql.ast_nodes import (
    Between,
    BinOp,
    ColumnRef,
    Expr,
    Like,
    Select,
    TableRef,
    column_refs,
)

EvalFn = Callable[["dict", "object"], object]  # (env, ctx) -> value


# -- conjunct analysis ----------------------------------------------------------
def split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten a WHERE tree into AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


@dataclass
class Binding:
    """One table occurrence in the FROM list, resolved against the engine."""

    ref: TableRef
    schema: TableSchema

    @property
    def name(self) -> str:
        return self.ref.binding


class Resolver:
    """Resolves column references to (binding, position) pairs."""

    def __init__(self, bindings: Sequence[Binding]) -> None:
        self.bindings = list(bindings)
        self._by_name = {b.name: b for b in self.bindings}
        if len(self._by_name) != len(self.bindings):
            raise SqlError("duplicate table binding in FROM list")

    def resolve(self, ref: ColumnRef) -> Tuple[str, int]:
        if ref.table is not None:
            binding = self._by_name.get(ref.table)
            if binding is None:
                raise SqlError(f"unknown table or alias {ref.table!r}")
            return binding.name, binding.schema.position(ref.column)
        matches = [b for b in self.bindings if b.schema.has_column(ref.column)]
        if not matches:
            raise SqlError(f"unknown column {ref.column!r}")
        if len(matches) > 1:
            raise SqlError(f"ambiguous column {ref.column!r}")
        return matches[0].name, matches[0].schema.position(ref.column)

    def binding_of(self, ref: ColumnRef) -> str:
        return self.resolve(ref)[0]


def refs_bound(expr: Expr, resolver: Resolver, bound: set) -> bool:
    """Are all column references of ``expr`` available in ``bound`` bindings?"""
    try:
        return all(resolver.binding_of(r) in bound for r in column_refs(expr))
    except SqlError:
        return False


# -- access paths ----------------------------------------------------------------
@dataclass
class PkEqAccess:
    """Primary-key point lookup; key component expressions in PK order."""

    key_exprs: List[Expr]
    consumed: List[Expr] = field(default_factory=list)
    cost: float = 1.0


@dataclass
class IndexAccess:
    """Tree-index access: equality prefix + optional range/LIKE/IN component.

    ``low``/``high`` are ``(expr, inclusive)`` on the first non-equality
    component; ``like_pattern`` enables a runtime-computed prefix range;
    ``in_exprs`` turns an IN-list on that component into a union of point
    lookups.
    """

    index_name: str
    eq_exprs: List[Expr]
    low: Optional[Tuple[Expr, bool]] = None
    high: Optional[Tuple[Expr, bool]] = None
    like_pattern: Optional[Expr] = None
    in_exprs: Optional[List[Expr]] = None
    consumed: List[Expr] = field(default_factory=list)
    cost: float = 10.0


@dataclass
class FullScanAccess:
    cost: float = 10_000.0
    consumed: List[Expr] = field(default_factory=list)


Access = object  # PkEqAccess | IndexAccess | FullScanAccess


def _eq_candidates(
    binding: Binding, conjuncts: Sequence[Expr], resolver: Resolver, bound: set
) -> Dict[str, Tuple[Expr, Expr]]:
    """column-name -> (value expr, conjunct) usable as equality for this table."""
    out: Dict[str, Tuple[Expr, Expr]] = {}
    for conj in conjuncts:
        if not isinstance(conj, BinOp) or conj.op != "=":
            continue
        for col_side, val_side in ((conj.left, conj.right), (conj.right, conj.left)):
            if not isinstance(col_side, ColumnRef):
                continue
            try:
                owner = resolver.binding_of(col_side)
            except SqlError:
                continue
            if owner != binding.name:
                continue
            if refs_bound(val_side, resolver, bound):
                out.setdefault(col_side.column, (val_side, conj))
                break
    return out


_RANGE_OPS = {">": ("low", False), ">=": ("low", True), "<": ("high", False), "<=": ("high", True)}


def _range_candidates(
    binding: Binding, conjuncts: Sequence[Expr], resolver: Resolver, bound: set
) -> Dict[str, List[Tuple[str, bool, Expr, Expr]]]:
    """column-name -> [(side, inclusive, value expr, conjunct)]"""
    out: Dict[str, List[Tuple[str, bool, Expr, Expr]]] = {}
    for conj in conjuncts:
        if isinstance(conj, Between) and not conj.negated:
            if isinstance(conj.expr, ColumnRef):
                try:
                    owner = resolver.binding_of(conj.expr)
                except SqlError:
                    continue
                if owner == binding.name and refs_bound(conj.low, resolver, bound) and refs_bound(
                    conj.high, resolver, bound
                ):
                    out.setdefault(conj.expr.column, []).append(("low", True, conj.low, conj))
                    out.setdefault(conj.expr.column, []).append(("high", True, conj.high, conj))
            continue
        if not isinstance(conj, BinOp) or conj.op not in _RANGE_OPS:
            continue
        side, inclusive = _RANGE_OPS[conj.op]
        col_side, val_side = conj.left, conj.right
        if not isinstance(col_side, ColumnRef):
            # value <op> column: flip the side.
            col_side, val_side = conj.right, conj.left
            if not isinstance(col_side, ColumnRef):
                continue
            side = {"low": "high", "high": "low"}[side]
        try:
            owner = resolver.binding_of(col_side)
        except SqlError:
            continue
        if owner != binding.name or not refs_bound(val_side, resolver, bound):
            continue
        out.setdefault(col_side.column, []).append((side, inclusive, val_side, conj))
    return out


def _in_candidates(
    binding: Binding, conjuncts: Sequence[Expr], resolver: Resolver, bound: set
) -> Dict[str, Tuple[List[Expr], Expr]]:
    """column-name -> (value exprs, conjunct) for usable IN lists."""
    from repro.sql.ast_nodes import InList

    out: Dict[str, Tuple[List[Expr], Expr]] = {}
    for conj in conjuncts:
        if not isinstance(conj, InList) or conj.negated:
            continue
        if not isinstance(conj.expr, ColumnRef):
            continue
        try:
            owner = resolver.binding_of(conj.expr)
        except SqlError:
            continue
        if owner != binding.name:
            continue
        if all(refs_bound(item, resolver, bound) for item in conj.items):
            out.setdefault(conj.expr.column, (list(conj.items), conj))
    return out


def _like_candidates(
    binding: Binding, conjuncts: Sequence[Expr], resolver: Resolver, bound: set
) -> Dict[str, Tuple[Expr, Expr]]:
    out: Dict[str, Tuple[Expr, Expr]] = {}
    for conj in conjuncts:
        if not isinstance(conj, Like) or conj.negated:
            continue
        if not isinstance(conj.expr, ColumnRef):
            continue
        try:
            owner = resolver.binding_of(conj.expr)
        except SqlError:
            continue
        if owner == binding.name and refs_bound(conj.pattern, resolver, bound):
            out.setdefault(conj.expr.column, (conj.pattern, conj))
    return out


def choose_access(
    binding: Binding,
    conjuncts: Sequence[Expr],
    resolver: Resolver,
    bound: set,
    row_count: int,
) -> Access:
    """Pick the cheapest access path for one table given bound bindings."""
    schema = binding.schema
    eqs = _eq_candidates(binding, conjuncts, resolver, bound)
    ranges = _range_candidates(binding, conjuncts, resolver, bound)
    likes = _like_candidates(binding, conjuncts, resolver, bound)
    ins = _in_candidates(binding, conjuncts, resolver, bound)

    best: Access = FullScanAccess(cost=1000.0 + row_count)

    # Primary key point lookup.
    if all(col in eqs for col in schema.primary_key):
        consumed = [eqs[col][1] for col in schema.primary_key]
        return PkEqAccess([eqs[col][0] for col in schema.primary_key], consumed)

    # Secondary tree indexes: longest equality prefix, then range/LIKE.
    for index in schema.indexes:
        eq_exprs: List[Expr] = []
        consumed: List[Expr] = []
        prefix_len = 0
        for col in index.columns:
            if col in eqs:
                eq_exprs.append(eqs[col][0])
                consumed.append(eqs[col][1])
                prefix_len += 1
            else:
                break
        low = high = like_pattern = in_exprs = None
        next_col = index.columns[prefix_len] if prefix_len < len(index.columns) else None
        if next_col is not None:
            if next_col in ins:
                in_exprs, in_conj = ins[next_col]
                consumed.append(in_conj)
            elif next_col in ranges:
                for side, inclusive, val, conj in ranges[next_col]:
                    if side == "low" and low is None:
                        low = (val, inclusive)
                        consumed.append(conj)
                    elif side == "high" and high is None:
                        high = (val, inclusive)
                        consumed.append(conj)
            elif next_col in likes:
                like_pattern = likes[next_col][0]
                # LIKE stays a residual filter too (range is a superset),
                # so it is not added to ``consumed``.
        if prefix_len == 0 and low is None and high is None and like_pattern is None \
                and in_exprs is None:
            continue
        cost = 8.0 - prefix_len if prefix_len else 60.0
        if low is not None or high is not None or like_pattern is not None or in_exprs:
            cost -= 1.0
        if cost < best.cost:
            best = IndexAccess(
                index.name, eq_exprs, low, high, like_pattern, in_exprs, consumed, cost
            )

    return best


def order_tables(
    bindings: Sequence[Binding],
    conjuncts: Sequence[Expr],
    resolver: Resolver,
    row_counts: Dict[str, int],
) -> List[Tuple[Binding, Access]]:
    """Greedy join ordering by cheapest-next-access."""
    remaining = list(bindings)
    bound: set = set()
    ordered: List[Tuple[Binding, Access]] = []
    while remaining:
        scored = []
        for position, binding in enumerate(remaining):
            access = choose_access(
                binding, conjuncts, resolver, bound, row_counts.get(binding.ref.table, 0)
            )
            scored.append((access.cost, position, binding, access))
        scored.sort(key=lambda s: (s[0], s[1]))
        _cost, _pos, chosen, access = scored[0]
        ordered.append((chosen, access))
        bound.add(chosen.name)
        remaining.remove(chosen)
    return ordered


def assign_filters(
    steps: List[Tuple[Binding, Access]],
    conjuncts: Sequence[Expr],
    resolver: Resolver,
) -> List[List[Expr]]:
    """Attach each unconsumed conjunct to its earliest evaluable step."""
    consumed_ids = {id(c) for _b, access in steps for c in access.consumed}
    per_step: List[List[Expr]] = [[] for _ in steps]
    bound: set = set()
    leftovers = [c for c in conjuncts if id(c) not in consumed_ids]
    for i, (binding, _access) in enumerate(steps):
        bound.add(binding.name)
        still = []
        for conj in leftovers:
            if refs_bound(conj, resolver, bound):
                per_step[i].append(conj)
            else:
                still.append(conj)
        leftovers = still
    if leftovers:
        raise SqlError("WHERE clause references columns not bound by any table")
    return per_step
