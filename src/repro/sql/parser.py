"""Recursive-descent parser for the SQL subset.

Grammar sketch (lowercase = keyword)::

    statement   := select | insert | update | delete
    select      := SELECT [DISTINCT] (star | item (, item)*) FROM tables
                   [WHERE expr] [GROUP BY expr (, expr)*]
                   [ORDER BY order (, order)*] [LIMIT expr [OFFSET expr]]
    tables      := tableref (, tableref | [INNER] JOIN tableref ON expr)*
    insert      := INSERT INTO name (cols) VALUES (exprs) (, (exprs))*
    update      := UPDATE name SET col = expr (, col = expr)* [WHERE expr]
    delete      := DELETE FROM name [WHERE expr]

Explicit JOIN ... ON is folded into the table list plus a WHERE conjunct —
the planner works on conjunctive predicates uniformly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import SqlError
from repro.sql.ast_nodes import (
    Between,
    BinOp,
    ColumnRef,
    Delete,
    Expr,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    Literal,
    OrderItem,
    Param,
    Select,
    SelectItem,
    Statement,
    TableRef,
    UnaryOp,
    Update,
)
from repro.sql.lexer import Token, tokenize

AGG_KEYWORDS = ("count", "sum", "avg", "min", "max")


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self.param_count = 0

    # -- token plumbing --------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "end":
            self.pos += 1
        return token

    def accept_kw(self, word: str) -> bool:
        if self.peek().is_kw(word):
            self.next()
            return True
        return False

    def expect_kw(self, word: str) -> None:
        if not self.accept_kw(word):
            self.error(f"expected {word.upper()}")

    def accept_punct(self, char: str) -> bool:
        token = self.peek()
        if token.kind == "punct" and token.value == char:
            self.next()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            self.error(f"expected {char!r}")

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            self.error("expected identifier")
        self.next()
        return token.value

    def error(self, message: str) -> None:
        token = self.peek()
        raise SqlError(f"{message} at position {token.position} (near {token.value!r}) in: {self.sql}")

    # -- statements ---------------------------------------------------------------
    def parse(self) -> Statement:
        token = self.peek()
        if token.is_kw("select"):
            stmt = self.parse_select()
        elif token.is_kw("insert"):
            stmt = self.parse_insert()
        elif token.is_kw("update"):
            stmt = self.parse_update()
        elif token.is_kw("delete"):
            stmt = self.parse_delete()
        else:
            self.error("expected SELECT, INSERT, UPDATE or DELETE")
        self.accept_punct(";")
        if self.peek().kind != "end":
            self.error("trailing tokens after statement")
        return stmt

    def parse_select(self) -> Select:
        self.expect_kw("select")
        distinct = self.accept_kw("distinct")
        star = False
        items: List[SelectItem] = []
        if self.peek().kind == "op" and self.peek().value == "*":
            self.next()
            star = True
        else:
            items.append(self.parse_select_item())
            while self.accept_punct(","):
                items.append(self.parse_select_item())
        self.expect_kw("from")
        tables, join_conds = self.parse_tables()
        where = self.parse_expr() if self.accept_kw("where") else None
        for cond in join_conds:
            where = cond if where is None else BinOp("and", where, cond)
        group_by: List[Expr] = []
        having = None
        if self.accept_kw("group"):
            self.expect_kw("by")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())
            if self.accept_kw("having"):
                having = self.parse_expr()
        order_by: List[OrderItem] = []
        if self.accept_kw("order"):
            self.expect_kw("by")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())
        limit = offset = None
        if self.accept_kw("limit"):
            limit = self.parse_expr()
            if self.accept_kw("offset"):
                offset = self.parse_expr()
        return Select(
            items, tables, where, group_by, having, order_by, limit, offset, distinct, star
        )

    def parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_kw("as"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.expect_ident()
        return SelectItem(expr, alias)

    def parse_tables(self) -> Tuple[List[TableRef], List[Expr]]:
        tables = [self.parse_table_ref()]
        join_conds: List[Expr] = []
        while True:
            if self.accept_punct(","):
                tables.append(self.parse_table_ref())
            elif self.peek().is_kw("inner") or self.peek().is_kw("join"):
                self.accept_kw("inner")
                self.expect_kw("join")
                tables.append(self.parse_table_ref())
                self.expect_kw("on")
                join_conds.append(self.parse_expr())
            else:
                return tables, join_conds

    def parse_table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_kw("as"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.expect_ident()
        return TableRef(name, alias)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_kw("desc"):
            descending = True
        else:
            self.accept_kw("asc")
        return OrderItem(expr, descending)

    def parse_insert(self) -> Insert:
        self.expect_kw("insert")
        self.expect_kw("into")
        table = self.expect_ident()
        self.expect_punct("(")
        columns = [self.expect_ident()]
        while self.accept_punct(","):
            columns.append(self.expect_ident())
        self.expect_punct(")")
        self.expect_kw("values")
        rows = [self.parse_value_row(len(columns))]
        while self.accept_punct(","):
            rows.append(self.parse_value_row(len(columns)))
        return Insert(table, columns, rows)

    def parse_value_row(self, expected: int) -> List[Expr]:
        self.expect_punct("(")
        values = [self.parse_expr()]
        while self.accept_punct(","):
            values.append(self.parse_expr())
        self.expect_punct(")")
        if len(values) != expected:
            self.error(f"VALUES row has {len(values)} values, expected {expected}")
        return values

    def parse_update(self) -> Update:
        self.expect_kw("update")
        table = self.expect_ident()
        self.expect_kw("set")
        assignments = [self.parse_assignment()]
        while self.accept_punct(","):
            assignments.append(self.parse_assignment())
        where = self.parse_expr() if self.accept_kw("where") else None
        return Update(table, assignments, where)

    def parse_assignment(self) -> Tuple[str, Expr]:
        column = self.expect_ident()
        token = self.peek()
        if token.kind != "op" or token.value != "=":
            self.error("expected = in SET clause")
        self.next()
        return column, self.parse_expr()

    def parse_delete(self) -> Delete:
        self.expect_kw("delete")
        self.expect_kw("from")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_kw("where") else None
        return Delete(table, where)

    # -- expressions (precedence climbing) -----------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_kw("or"):
            left = BinOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_kw("and"):
            left = BinOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_kw("not"):
            return UnaryOp("not", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        negated = False
        if token.is_kw("not"):
            follow = self.peek(1)
            if follow.is_kw("like") or follow.is_kw("in") or follow.is_kw("between"):
                self.next()
                negated = True
                token = self.peek()
        if token.is_kw("like"):
            self.next()
            return Like(left, self.parse_additive(), negated)
        if token.is_kw("in"):
            self.next()
            self.expect_punct("(")
            items = [self.parse_expr()]
            while self.accept_punct(","):
                items.append(self.parse_expr())
            self.expect_punct(")")
            return InList(left, tuple(items), negated)
        if token.is_kw("between"):
            self.next()
            low = self.parse_additive()
            self.expect_kw("and")
            return Between(left, low, self.parse_additive(), negated)
        if token.is_kw("is"):
            self.next()
            neg = self.accept_kw("not")
            self.expect_kw("null")
            return IsNull(left, neg)
        if token.kind == "op" and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            op = "<>" if token.value == "!=" else token.value
            self.next()
            return BinOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self.next()
                left = BinOp(token.value, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("*", "/", "%"):
                self.next()
                left = BinOp(token.value, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.kind == "op" and token.value == "-":
            self.next()
            return UnaryOp("-", self.parse_unary())
        if token.kind == "op" and token.value == "+":
            self.next()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            self.next()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.kind == "string":
            self.next()
            return Literal(token.value)
        if token.is_kw("null"):
            self.next()
            return Literal(None)
        if token.kind == "punct" and token.value == "?":
            self.next()
            param = Param(self.param_count)
            self.param_count += 1
            return param
        if token.kind == "punct" and token.value == "(":
            self.next()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.kind == "keyword" and token.value in AGG_KEYWORDS:
            return self.parse_function(token.value)
        if token.kind == "ident":
            follow = self.peek(1)
            if follow.kind == "punct" and follow.value == "(":
                return self.parse_function(token.value.lower())
            return self.parse_column_ref()
        self.error("expected expression")
        raise AssertionError  # unreachable; error() always raises

    def parse_function(self, name: str) -> Expr:
        self.next()  # function name token
        self.expect_punct("(")
        if name == "count" and self.peek().kind == "op" and self.peek().value == "*":
            self.next()
            self.expect_punct(")")
            return FuncCall("count", (), star=True)
        distinct = self.accept_kw("distinct")
        args: List[Expr] = []
        if not self.accept_punct(")"):
            args.append(self.parse_expr())
            while self.accept_punct(","):
                args.append(self.parse_expr())
            self.expect_punct(")")
        return FuncCall(name, tuple(args), distinct=distinct)

    def parse_column_ref(self) -> ColumnRef:
        first = self.expect_ident()
        if self.accept_punct("."):
            return ColumnRef(first, self.expect_ident())
        return ColumnRef(None, first)


def parse_statement(sql: str) -> Statement:
    """Parse one SQL statement into its AST."""
    return _Parser(sql).parse()
