"""SQL tokenizer.

Produces a flat list of :class:`Token`; the parser walks it with one-token
lookahead.  Keywords are case-insensitive; identifiers preserve case but
compare lowercased.  String literals use single quotes with ``''`` as the
escape for a quote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.errors import SqlError

KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "insert", "into", "values",
    "update", "set", "delete", "group", "by", "having", "order", "asc", "desc", "limit",
    "offset", "join", "inner", "on", "as", "like", "in", "between", "is",
    "null", "distinct", "count", "sum", "avg", "min", "max",
}

# Multi-character operators first so maximal munch works.
OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%")
PUNCTUATION = ("(", ")", ",", ".", "?", ";")


@dataclass(frozen=True)
class Token:
    kind: str  # keyword | ident | number | string | op | punct | end
    value: str
    position: int

    def is_kw(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise SqlError(f"unterminated string literal at {i}")
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token("string", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # Guard against "1.e" style or identifier dots like "a.b".
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("number", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise SqlError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("end", "", n))
    return tokens
