"""Abstract syntax tree node types for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- expressions ----------------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    value: object  # int | float | str | None


@dataclass(frozen=True)
class Param:
    """A ``?`` placeholder, numbered left to right from zero."""

    index: int


@dataclass(frozen=True)
class ColumnRef:
    table: Optional[str]  # alias or table name, None if unqualified
    column: str


@dataclass(frozen=True)
class BinOp:
    op: str  # = <> < <= > >= + - * / % and or
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # - not
    operand: "Expr"


@dataclass(frozen=True)
class FuncCall:
    name: str  # count sum avg min max (aggregates) or scalar functions
    args: Tuple["Expr", ...]
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class Like:
    expr: "Expr"
    pattern: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    expr: "Expr"
    items: Tuple["Expr", ...]
    negated: bool = False


@dataclass(frozen=True)
class Between:
    expr: "Expr"
    low: "Expr"
    high: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class IsNull:
    expr: "Expr"
    negated: bool = False


Expr = Union[Literal, Param, ColumnRef, BinOp, UnaryOp, FuncCall, Like, InList, Between, IsNull]

AGGREGATE_FUNCS = {"count", "sum", "avg", "min", "max"}


def is_aggregate(expr: Expr) -> bool:
    """Does the expression tree contain an aggregate function call?"""
    if isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCS:
        return True
    if isinstance(expr, BinOp):
        return is_aggregate(expr.left) or is_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return is_aggregate(expr.operand)
    return False


def column_refs(expr: Expr) -> List[ColumnRef]:
    """All column references in an expression tree."""
    out: List[ColumnRef] = []

    def walk(node: Expr) -> None:
        if isinstance(node, ColumnRef):
            out.append(node)
        elif isinstance(node, BinOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, Like):
            walk(node.expr)
            walk(node.pattern)
        elif isinstance(node, InList):
            walk(node.expr)
            for item in node.items:
                walk(item)
        elif isinstance(node, Between):
            walk(node.expr)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, IsNull):
            walk(node.expr)

    walk(expr)
    return out


# -- statements ---------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    table: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class Select:
    items: List[SelectItem]  # empty means SELECT *
    tables: List[TableRef] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    distinct: bool = False
    star: bool = False


@dataclass
class Insert:
    table: str
    columns: List[str]
    rows: List[List[Expr]]


@dataclass
class Update:
    table: str
    assignments: List[Tuple[str, Expr]]
    where: Optional[Expr] = None


@dataclass
class Delete:
    table: str
    where: Optional[Expr] = None


Statement = Union[Select, Insert, Update, Delete]
