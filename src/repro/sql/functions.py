"""Scalar SQL runtime helpers: LIKE matching and built-in functions."""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Optional, Tuple

from repro.common.errors import SqlError


@lru_cache(maxsize=1024)
def _like_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern (% and _) to an anchored regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out), re.IGNORECASE | re.DOTALL)


def like_match(value: object, pattern: object) -> Optional[bool]:
    """SQL LIKE with NULL propagation (returns None on NULL operands)."""
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise SqlError("LIKE requires string operands")
    return _like_regex(pattern).fullmatch(value) is not None


def like_prefix(pattern: object) -> Optional[str]:
    """Literal prefix of a LIKE pattern before the first wildcard, if any."""
    if not isinstance(pattern, str):
        return None
    for i, ch in enumerate(pattern):
        if ch in ("%", "_"):
            return pattern[:i] or None
    return pattern or None


def like_range(pattern: object) -> Optional[Tuple[str, str]]:
    """Index range [lo, hi] covering all strings matching the pattern prefix."""
    prefix = like_prefix(pattern)
    if prefix is None:
        return None
    return prefix, prefix + "￿"


def sql_arith(op: str, left: object, right: object) -> object:
    """Arithmetic with SQL NULL propagation."""
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # SQL-ish: avoid crashing workloads on divide-by-zero
        result = left / right
        return result
    if op == "%":
        if right == 0:
            return None
        return left % right
    raise SqlError(f"unknown arithmetic operator {op}")


def sql_compare(op: str, left: object, right: object) -> Optional[bool]:
    """Three-valued comparison: NULL operands yield NULL (None)."""
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SqlError(f"unknown comparison operator {op}")
