"""Cost model: translating instrumented work into virtual service time.

The engine counts what a statement *did* (rows read, pages touched, index
rotations, cache misses, WAL fsyncs); the cost model converts those counter
deltas into CPU seconds and I/O seconds that the simulated node then holds
its resources for.  Outcomes (who wins, where saturation sets in) emerge
from the structure — disk time dominates the on-disk tier, page-fault time
dominates cold caches, rotation/lock time loads the master — rather than
from per-experiment tuning.

The defaults describe one 2-core ~2 GHz node of the paper's era, scaled so
that simulated runs stay tractable; see ``repro/bench/calibration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.disk.diskmodel import DiskModel


@dataclass(frozen=True)
class CostConfig:
    """All service-time knobs, in (virtual) seconds."""

    # -- CPU costs (per unit of instrumented work) -------------------------------
    cpu_per_statement: float = 0.0003   # parse/plan/dispatch overhead
    cpu_per_row_read: float = 0.00002
    cpu_per_page_touch: float = 0.00001
    cpu_per_row_write: float = 0.00008
    cpu_per_index_rotation: float = 0.00020  # RB-tree rebalancing (paper §6.1)
    cpu_per_lock_wait: float = 0.00005
    # -- replication costs ----------------------------------------------------------
    cpu_per_op_receive: float = 0.00002   # enqueue + eager index maintenance
    cpu_per_op_apply: float = 0.00002     # lazy page application
    cpu_per_op_precommit: float = 0.00003  # write-set encode on the master
    # -- memory hierarchy ---------------------------------------------------------------
    page_fault_cost: float = 0.004  # mmap page-in on an in-memory node
    # -- network ----------------------------------------------------------------------------
    net_latency: float = 0.0002          # one-way LAN latency
    net_bandwidth: float = 100e6         # bytes/second
    #: Per-write-set framing overhead inside a batched replication message.
    net_frame_bytes: int = 24
    #: Size of the (piggybacked) per-batch acknowledgement frame.
    net_ack_bytes: int = 64
    # -- lossy-network recovery (chaos layer) ------------------------------------------------
    #: First master-side ack timeout; doubles per retransmission attempt.
    #: Must exceed a healthy batch round trip or clean links would spuriously
    #: retransmit.
    ack_timeout_base: float = 0.1
    #: Ceiling on the exponential ack-timeout/backoff growth.
    retransmit_backoff_cap: float = 2.0
    #: Send attempts per write-set before the unreachable slave is suspected
    #: failed and evicted (fail-stop suspicion).
    retransmit_limit: int = 10
    #: Graceful degradation: how long an update transaction may queue while
    #: its conflict class's master is being reconfigured before it is
    #: rejected with a deadline error.
    update_queue_deadline: float = 15.0
    #: Backpressure: maximum updates parked on the reconfiguration waiter
    #: queue per master before further arrivals are shed with a retryable
    #: ``queue-shed`` rejection (0 = unbounded, today's behaviour).
    update_queue_limit: int = 0
    # -- straggler tolerance (laggard demotion; active when ack_policy != "all") ------
    #: Unacked write-sets queued on one master->slave channel before the
    #: target is considered a laggard (backlog high watermark, entries).
    laggard_backlog_entries: int = 64
    #: Unacked bytes queued on one channel before laggard demotion (backlog
    #: high watermark, bytes).
    laggard_backlog_bytes: int = 1 << 20
    #: A slave's ack-latency EWMA must exceed the cluster-wide EWMA by this
    #: factor to count as an outlier sample.
    laggard_ack_factor: float = 4.0
    #: Consecutive outlier samples before a slave is demoted (sustained
    #: outlier, not one slow ack).
    laggard_sustain: int = 8
    #: Slave-side buffer cap: pending (buffered, unapplied) ops on one
    #: replica before it is demoted to catch-up mode (0 = unbounded).
    slave_buffer_max_ops: int = 0
    #: Health-probe period of the laggard monitor (also paces rejoin).
    laggard_probe_interval: float = 1.0
    #: Op count of one synthetic health probe (sized like a small batch).
    laggard_probe_ops: int = 8
    #: Consecutive healthy probes before a demoted node is re-integrated.
    rejoin_probes: int = 3
    #: A probe is healthy when its service time is below this multiple of
    #: the undegraded probe cost.
    rejoin_health_factor: float = 2.0
    #: Browser retry backoff: first delay and ceiling of the per-browser
    #: jittered exponential backoff.
    browser_backoff_base: float = 0.05
    browser_backoff_cap: float = 5.0
    # -- node shape --------------------------------------------------------------------------
    cores_per_node: int = 2
    # -- concurrency control ----------------------------------------------------------------
    #: Master read/validation path: ``"occ"`` (timestamp-ordered optimistic
    #: read validation, the default) or ``"2pl"`` (legacy shared-mode page
    #: locks, which reproduces the pre-OCC counter fingerprints bit-for-bit).
    read_concurrency: str = "occ"
    # -- write-path scale-out (epoch commit + dynamic conflict classes) -----------------------
    #: Commits admitted into one commit epoch before it seals.  1 (the
    #: default) is the legacy per-transaction commit path, reproduced
    #: bit-for-bit; >1 enables epoch-batched version-vector advancement:
    #: N commits share one vector advance, one WAL force and one broadcast
    #: barrier.
    epoch_max_txns: int = 1
    #: Epoch timer in milliseconds: an open epoch seals after this long even
    #: if not full.  0 with ``epoch_max_txns > 1`` seals each epoch as soon
    #: as its first member reaches the barrier (batching only same-instant
    #: arrivals).
    epoch_ms: float = 0.0
    #: Per-master update admission limit (multiprogramming level).  Bounds
    #: the number of update transactions concurrently *executing* on one
    #: master, which collapses OCC validation aborts under write overload.
    #: 0 = unbounded (legacy).
    update_mpl: int = 0
    #: Enable load-driven split/merge/re-home of conflict classes across
    #: masters.  Off by default: the rebalancer daemon moves counters and
    #: sim events, so legacy seeded fingerprints require it disabled.
    dynamic_classes: bool = False
    #: Rebalancer sampling period (seconds of virtual time); 0 disables the
    #: daemon even when ``dynamic_classes`` is set.
    rebalance_interval: float = 0.0
    #: A class is only worth moving when its write-rate EWMA exceeds this
    #: many commits/second — below it, imbalance is noise.
    rebalance_min_rate: float = 2.0
    #: Re-home triggers when the hottest master's EWMA load exceeds the
    #: coolest master's by this factor.
    rebalance_imbalance: float = 2.0
    #: Minimum virtual seconds between re-homes (anti-thrash hysteresis).
    rebalance_cooldown: float = 10.0
    #: EWMA smoothing factor for per-class write rates (same machinery as
    #: the straggler detector's ack-latency EWMAs).
    class_rate_alpha: float = 0.2
    #: A re-home drain barrier that cannot quiesce the moving class within
    #: this long aborts the handoff and leaves ownership untouched.
    rehome_drain_timeout: float = 5.0
    #: Fixed coordination overhead of one class re-home (ownership flip
    #: broadcast + scheduler table update).  The historical model priced
    #: class->master assignment as free because it could never change;
    #: re-homing makes handoffs a real, configurable cost so ablation
    #: numbers stay honest.
    rehome_handoff_overhead: float = 0.02
    #: Per-table CPU cost of adopting a re-homed table on the destination
    #: master (version-counter adoption + ownership-set update).
    cpu_per_rehome_table: float = 0.0005
    # -- reconfiguration --------------------------------------------------------------------------
    #: Fixed coordination overhead of master-failure recovery (abort round,
    #: election, topology broadcast) — the paper measures ~6 s total.
    recovery_overhead: float = 2.0
    # -- disk (on-disk tier) ---------------------------------------------------------------------
    disk: DiskModel = field(default_factory=DiskModel)
    #: Disk I/Os charged per page *written* on the on-disk tier (dirty-page
    #: write-back competing with reads for the spindle).
    disk_writeback_factor: float = 1.0
    # -- durability (in-memory tier) --------------------------------------------------------------
    #: When True every in-memory node appends write-sets to a local
    #: content-carrying WAL and forces it before acking, enabling
    #: restart-from-own-disk recovery and the storage-fault model.  Off by
    #: default: the durable path moves extra counters and sim events, so
    #: legacy seeded fingerprints require it disabled.
    durable_wal: bool = False
    #: Service time of one WAL group force on the in-memory tier
    #: (battery-backed/NVMe log device, not the cold-tier spindle model).
    wal_fsync_time: float = 0.0005
    # -- overload robustness (admission control, deadlines, retry budgets) --------------------
    # All default-off: the admission controller, deadline propagation and
    # client retry budgets move counters when active, so legacy seeded
    # fingerprints require every knob at its zero value.
    #: Per-tenant admission token-bucket refill rate (requests/second at
    #: the scheduler entry).  0 disables per-tenant rate limiting.
    admission_rate: float = 0.0
    #: Token-bucket capacity (burst allowance).  0 means "same as
    #: ``admission_rate``" when rate limiting is on.
    admission_burst: float = 0.0
    #: Queue-delay watermark (seconds of scheduler/admission queueing,
    #: EWMA-smoothed) above which new arrivals are shed, cheapest-to-retry
    #: first: reads shed at the watermark, updates only above
    #: ``watermark * admission_shed_update_factor``.  0 disables.
    admission_queue_watermark: float = 0.0
    #: Updates are shed only when the queue-delay EWMA exceeds the
    #: watermark by this factor (reads are cheaper to retry: any fresh
    #: replica can serve the retry, so they shed first).
    admission_shed_update_factor: float = 2.0
    #: EWMA smoothing factor for the admission queue-delay estimate.
    admission_delay_alpha: float = 0.2
    #: Half-life (seconds) of the queue-delay signal with no fresh
    #: observations.  Without decay the watermark latches: a congested
    #: EWMA sheds everything at the door, no update is ever admitted to
    #: observe the (now idle) queue, and shedding never stops.
    admission_delay_halflife: float = 5.0
    #: Default request deadline stamped at arrival (seconds); propagated
    #: through routing -> execute -> commit so doomed work is cancelled at
    #: every stage instead of completed late.  0 = no deadlines.
    request_deadline: float = 0.0
    #: Client-side retry budget: retry tokens refilled per second (shared
    #: per tenant in the open-loop engine, pool-wide for the closed-loop
    #: browsers).  0 = unlimited retries (legacy).
    retry_budget_rate: float = 0.0
    #: Retry-budget bucket capacity.  0 means "same as
    #: ``retry_budget_rate``" when the budget is on.
    retry_budget_burst: float = 0.0
    #: Client circuit breaker: failure fraction over the rolling outcome
    #: window that opens the breaker (requests are then shed client-side
    #: without touching the cluster).  0 disables the breaker.
    breaker_failure_threshold: float = 0.0
    #: Rolling outcome-window size (last N request outcomes) the breaker
    #: judges, and the minimum volume before it may open.
    breaker_window: int = 20
    #: Seconds an open breaker waits before letting one half-open probe
    #: through; a successful probe closes it, a failed one re-opens it.
    breaker_cooldown: float = 5.0

    def net_delay(self, nbytes: int) -> float:
        return self.net_latency + nbytes / self.net_bandwidth

    def batch_bytes(self, payload_bytes: int, messages: int) -> int:
        """Wire size of ``messages`` write-sets framed into one batch."""
        return payload_bytes + self.net_frame_bytes * messages

    def batch_delay(self, payload_bytes: int, messages: int) -> float:
        """Group-commit batching: one latency charge, bandwidth per byte."""
        return self.net_delay(self.batch_bytes(payload_bytes, messages))

    def rtt(self, nbytes: int = 256) -> float:
        """Request/response round trip through the scheduler."""
        return 2 * self.net_delay(nbytes)


class CostModel:
    """Computes service times from counter deltas."""

    def __init__(self, config: CostConfig) -> None:
        self.config = config

    def statement_cpu(self, delta: Mapping[str, float]) -> float:
        """CPU seconds for one executed statement."""
        c = self.config
        return (
            c.cpu_per_statement
            + c.cpu_per_row_read * delta.get("engine.rows_read", 0)
            + c.cpu_per_page_touch * delta.get("engine.pages_read", 0)
            + c.cpu_per_page_touch * delta.get("engine.pages_written", 0)
            + c.cpu_per_row_write
            * (
                delta.get("engine.rows_inserted", 0)
                + delta.get("engine.rows_updated", 0)
                + delta.get("engine.rows_deleted", 0)
            )
            + c.cpu_per_index_rotation * delta.get("index.rotations", 0)
            + c.cpu_per_lock_wait * delta.get("locks.waits", 0)
            + c.cpu_per_op_apply * delta.get("slave.ops_applied", 0)
        )

    def fault_time(self, delta: Mapping[str, float]) -> float:
        """Page-in time for an in-memory node's cache misses."""
        return self.config.page_fault_cost * delta.get("cache.misses", 0)

    def disk_time(self, delta: Mapping[str, float]) -> float:
        """Disk seconds for an on-disk node: misses, write-back, log forces."""
        disk = self.config.disk
        ios = delta.get("cache.misses", 0) + self.config.disk_writeback_factor * delta.get(
            "engine.pages_written", 0
        )
        return disk.random_read_cost(int(ios)) + disk.fsync_cost(
            int(delta.get("wal.fsyncs", 0))
        )

    def receive_cpu(self, op_count: int) -> float:
        return self.config.cpu_per_op_receive * op_count

    def precommit_cpu(self, op_count: int) -> float:
        return self.config.cpu_per_op_precommit * op_count

    def apply_cpu(self, op_count: int) -> float:
        return self.config.cpu_per_op_apply * op_count

    def sequential_disk(self, nbytes: int) -> float:
        return self.config.disk.sequential_cost(nbytes)

    def rehome_cost(self, table_count: int, pending_ops: int = 0) -> float:
        """Service time of one conflict-class re-home handoff.

        Fixed coordination overhead plus per-table adoption work on the
        destination master plus application of any still-buffered ops for
        the moved tables.  With the static assignment path (no re-homes)
        this is never charged, so historical cost totals are unchanged.
        """
        c = self.config
        return (
            c.rehome_handoff_overhead
            + c.cpu_per_rehome_table * table_count
            + self.apply_cpu(pending_ops)
        )
