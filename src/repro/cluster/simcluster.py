"""The simulated DMV cluster and the on-disk baseline cluster.

Assembles scheduler + nodes + clients under the event kernel and provides
the failure-injection and reconfiguration machinery the failover
experiments exercise.  Timing of every phase (cleanup, data migration,
cache warm-up) is recorded so Figure 6's breakdown can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.network import NetworkModel
from repro.common.counters import Counters
from repro.common.errors import ConfigError, NodeUnavailable, TransactionAborted
from repro.common.rng import RngStream
from repro.common.versions import VersionVector
from repro.cluster.costs import CostConfig, CostModel
from repro.cluster.interest import InterestRegistry, InterestSet
from repro.cluster.simnodes import DiskDbNode, InMemoryDbNode, SimNode
from repro.cluster.straggler import ClassWriteRates, LaggardDetector
from repro.core.conflictclass import ConflictClassMap
from repro.core.dual import DualController
from repro.engine.schema import TableSchema
from repro.engine.txn import TxnMode
from repro.sim.resources import Resource
from repro.failover.recovery import (
    cleanup_after_master_failure,
    elect_new_master,
    ghost_wal_records,
    promote_slave_to_master,
)
from repro.failover.reintegration import (
    integrate_stale_node,
    recover_from_local_disk,
    restore_from_checkpoint,
)
from repro.obs import NULL_SPAN, Tracer
from repro.storage.page import Page
from repro.scheduler.admission import AdmissionController
from repro.scheduler.conflictaware import ConflictAwareScheduler
from repro.scheduler.versionaware import VersionAwareScheduler
from repro.sim.kernel import Simulator
from repro.sim.stats import Histogram, TimeSeries, WindowedRate
from repro.tpcw.connection import Connection
from repro.tpcw.interactions import INTERACTIONS, SharedSequences
from repro.tpcw.mixes import Mix
from repro.tpcw.schema import TpcwScale
from repro.tpcw.session import EmulatedBrowser
from repro.traffic.budget import RetryBudget


@dataclass
class Metrics:
    """Client-perceived measurements of one experiment run."""

    wips: WindowedRate = field(default_factory=lambda: WindowedRate(window=20.0, name="wips"))
    latency: Histogram = field(default_factory=lambda: Histogram("latency"))
    latency_series: TimeSeries = field(default_factory=lambda: TimeSeries("latency"))
    #: Commit-path latency of replicated update commits (pre-commit through
    #: ack barrier) — the distribution a straggler slave distorts under
    #: all-slave acks and a quorum protects.
    commit_latency: Histogram = field(default_factory=lambda: Histogram("commit"))
    completed: int = 0
    retried: int = 0
    failed: int = 0
    aborts_by_reason: Dict[str, int] = field(default_factory=dict)

    def record_completion(self, time: float, latency: float) -> None:
        self.completed += 1
        self.wips.mark(time)
        self.latency.record(latency)
        self.latency_series.record(time, latency)

    def record_retry(self, reason: str) -> None:
        self.retried += 1
        self.aborts_by_reason[reason] = self.aborts_by_reason.get(reason, 0) + 1

    def abort_rate(self) -> float:
        total = self.completed + self.retried
        return self.retried / total if total else 0.0


class SimConnection(Connection):
    """Connection whose effects are kernel events (driven by browsers)."""

    def __init__(self, cluster: "SimDmvCluster") -> None:
        self.cluster = cluster
        #: Tenant label for per-tenant admission control (open-loop traffic
        #: sets it; the closed-loop browsers keep the default).
        self.tenant = "default"
        #: Absolute virtual-clock deadline stamped at arrival, or None.
        #: Propagated through routing, execution and commit: each stage
        #: cancels doomed work instead of finishing it.
        self.deadline: Optional[float] = None
        self._node: Optional[InMemoryDbNode] = None
        self._txn = None
        self._is_update = False
        self._queries: List[Tuple[str, Tuple]] = []
        #: Update-admission slot held while an update executes
        #: (``update_mpl > 0`` only); ownership moves to ``commit_update``
        #: at commit, otherwise :meth:`cleanup` releases it.
        self._mpl_slot: Optional[Resource] = None
        #: Root span of the current transaction attempt.  Ownership moves
        #: to :meth:`SimDmvCluster.commit_update` for update commits; any
        #: span still held here is closed as aborted by :meth:`cleanup`.
        self._root = NULL_SPAN

    def _deadline_expired(self) -> bool:
        return self.deadline is not None and self.cluster.sim.now() >= self.deadline

    def begin_read(self, tables: Sequence[str]):
        # Admission + deadline gates run before any span or routing state
        # exists, so a rejection leaves the connection untouched.
        self.cluster.admission_check("read", self.tenant)
        if self._deadline_expired():
            raise self.cluster.deadline_cancel("read-begin")
        root = self._root = self.cluster.tracer.span(
            "txn", kind="read", tables=",".join(tables)
        )
        with root.child("schedule", kind="read") as sched:
            routed = self.cluster.scheduler.route_read(list(tables))
            sched.annotate(node=routed.node_id, status="routed")
        node = self.cluster.node(routed.node_id)
        self._node = node
        self._is_update = False
        if node.slave is not None:
            self._txn = node.slave.begin_read_only(routed.tag)
        else:
            # Coverage fallback routed this read to a pure master (partial
            # replication, no fresh covering slave): the master's engine
            # is current by construction, so no version tag is needed.
            self._txn = node.master.begin_read_only()
        if root.recording:
            self._txn.obs_span = root
            # The txn id exists only now; stamp it on the already-closed
            # schedule span too so the whole tree shares it.
            root.txn_id = sched.txn_id = self._txn.txn_id
            root.annotate(node=node.node_id, tag=routed.tag.as_dict())
        return self.cluster.sim.timeout(self.cluster.cost.config.rtt())

    def begin_update(self, tables: Sequence[str]):
        self._is_update = True
        self._queries = []
        self._root = self.cluster.tracer.span(
            "txn", kind="update", tables=",".join(tables)
        )
        return self.cluster.sim.spawn(self._begin_update(list(tables)), name="begin-update")

    def _begin_update(self, tables: List[str]):
        root = self._root
        sched = root.child("schedule", kind="update")
        try:
            node, self._mpl_slot = yield from self.cluster.admit_update(
                tables, tenant=self.tenant, deadline=self.deadline
            )
        except BaseException as exc:
            sched.finish(status="error", error=type(exc).__name__)
            raise
        sched.finish(node=node.node_id, status="routed")
        self._node = node
        self._txn = node.master.begin_update(write_tables=tables)
        if root.recording:
            self._txn.obs_span = root
            root.txn_id = sched.txn_id = self._txn.txn_id
            root.annotate(
                node=node.node_id,
                conflict_class=self.cluster.conflict_map.class_of(tables[0])
                if tables
                else -1,
            )
        yield self.cluster.sim.timeout(self.cluster.cost.config.rtt())

    def query(self, sql: str, params: Sequence = ()):
        node, txn = self._node, self._txn
        if txn is None:
            raise RuntimeError("no open transaction")
        if not node.alive or not txn.active:
            # The node died between statements; its engine already rolled
            # the transaction back.
            self._node = self._txn = None
            raise NodeUnavailable(f"node {node.node_id} failed mid-transaction")
        if self._deadline_expired():
            # Doomed mid-transaction: stop executing statements for it.
            # State stays attached so ``cleanup`` rolls the txn back.
            raise self.cluster.deadline_cancel("execute")
        if self._is_update and not sql.lstrip().lower().startswith("select"):
            self._queries.append((sql, tuple(params)))
        cfg = self.cluster.cost.config

        def effect():
            yield self.cluster.sim.timeout(cfg.rtt())
            result = yield node.job(node.exec_statement(txn, sql, params), "stmt")
            return result

        return self.cluster.sim.spawn(effect(), name="query")

    def commit(self):
        node, txn = self._node, self._txn
        if txn is None:
            raise RuntimeError("no open transaction")
        self._node = self._txn = None
        if not node.alive or not txn.active:
            self._release_mpl_slot()
            if not self._is_update:
                self.cluster.scheduler.note_read_done(node.node_id)
            raise NodeUnavailable(f"node {node.node_id} failed before commit")
        if not self._is_update:
            node.engine.commit(txn)
            self.cluster.scheduler.note_read_done(node.node_id)
            root, self._root = self._root, NULL_SPAN
            root.finish(status="committed")
            return self.cluster.sim.timeout(self.cluster.cost.config.rtt())
        queries, self._queries = self._queries, []
        # Root-span ownership moves to commit_update, which closes it when
        # the replication pipeline resolves (committed or aborted).  So
        # does the admission slot: commit_update holds it through the
        # replication pipeline and releases it on any exit path.
        self._root = NULL_SPAN
        slot, self._mpl_slot = self._mpl_slot, None
        return self.cluster.sim.spawn(
            self.cluster.commit_update(
                node, txn, queries, mpl_slot=slot, deadline=self.deadline
            ),
            name="commit",
        )

    def abort(self):
        self.cleanup()
        return self.cluster.sim.timeout(self.cluster.cost.config.rtt())

    def _release_mpl_slot(self) -> None:
        slot, self._mpl_slot = self._mpl_slot, None
        if slot is not None:
            slot.release()

    def cleanup(self) -> None:
        """Roll back whatever is still open (safe to call repeatedly)."""
        self._release_mpl_slot()
        node, txn = self._node, self._txn
        self._node = self._txn = None
        root, self._root = self._root, NULL_SPAN
        root.finish(status="aborted")
        if txn is None or node is None:
            return
        if node.alive:
            node.engine.abort(txn)
        if not self._is_update:
            self.cluster.scheduler.note_read_done(node.node_id)


@dataclass
class FailoverTimeline:
    """Timestamps/durations of one reconfiguration (Figure 6 breakdown)."""

    failure_time: float = 0.0
    detection_time: float = 0.0
    recovery_done: float = 0.0       # cleanup + master promotion
    migration_done: float = 0.0      # data migration (DB update)
    migration_pages: int = 0
    migration_bytes: int = 0

    def recovery_duration(self) -> float:
        return max(0.0, self.recovery_done - self.detection_time)

    def migration_duration(self) -> float:
        return max(0.0, self.migration_done - max(self.recovery_done, self.detection_time))


@dataclass
class SchedulerAgent:
    """One peer scheduler: tiny replicable state + liveness (paper §4.1)."""

    agent_id: str
    scheduler: VersionAwareScheduler
    alive: bool = True
    ready: bool = True  # False while a takeover is resynchronising


class PendingSend:
    """One write-set in flight on a replication channel (ack + attempt count)."""

    __slots__ = ("write_set", "ack", "attempts", "span", "retry_span", "enqueued_at")

    def __init__(self, write_set, ack, span=NULL_SPAN, enqueued_at=0.0) -> None:
        self.write_set = write_set
        self.ack = ack
        self.attempts = 0
        #: ``broadcast`` span covering first transmission through ack (or
        #: final failure); retransmission attempts nest under it.
        self.span = span
        self.retry_span = NULL_SPAN
        #: Virtual enqueue time — the laggard detector's ack-latency samples
        #: measure enqueue-to-ack, which is what a committing master waits.
        self.enqueued_at = enqueued_at


class ReplicationChannel:
    """Outbound master->slave link with group-commit broadcast batching.

    Pre-commit broadcasts issued while a transfer to the same slave is in
    flight are framed into ONE batched network message: the batch pays one
    ``net_latency`` (plus bandwidth for every byte) instead of a latency
    charge per write-set, and the per-write-set acks come back piggybacked
    on a single ack frame.  Under a loaded master this is classic group
    commit — the deeper the commit concurrency, the bigger the batches.

    When the chaos layer makes the link lossy, the channel adds the
    reliability sub-protocol: a per-write-set ack timeout with bounded
    exponential-backoff retransmission (lost data frames AND lost ack
    frames both trigger it), and fail-stop suspicion of the target after
    ``retransmit_limit`` attempts.  Slaves deduplicate by write-set
    identity, so retransmission is idempotent.  On a clean link none of
    this machinery runs and the timing is identical to the fast path.
    """

    def __init__(
        self, cluster: "SimDmvCluster", source_id: str, target: "InMemoryDbNode"
    ) -> None:
        self.cluster = cluster
        self.source_id = source_id
        self.target = target
        self._outbox: List[PendingSend] = []
        self._busy = False
        #: Every send not yet acked or failed, in enqueue (= version) order.
        #: The drain loop moves frames out of ``_outbox`` while they are in
        #: transit or waiting out a retransmission backoff, so this is the
        #: only complete view of what the target may still be missing —
        #: reintegration's in-flight catch-up reads it.
        self._unacked: List[PendingSend] = []

    def send(self, write_set, parent_span=NULL_SPAN):
        """Queue one write-set; returns the event its ack will trigger.

        ``parent_span`` (the committing transaction's root span) makes the
        per-target ``broadcast`` span a child of the transaction, so the
        trace shows which commit paid for which network traffic.
        """
        span = parent_span.child(
            "broadcast",
            node=self.source_id,
            target=self.target.node_id,
            seq=write_set.seq,
            bytes=write_set.byte_size(),
        )
        pending = PendingSend(
            write_set, self.cluster.sim.event(), span,
            enqueued_at=self.cluster.sim.now(),
        )
        self._outbox.append(pending)
        self._unacked.append(pending)
        ops = len(write_set.ops)
        if ops > self.cluster._max_ws_ops:
            self.cluster._max_ws_ops = ops
        if self.cluster.straggler_active:
            # Backlog watermark: an outbox this deep means the target is not
            # keeping up with the broadcast rate — demote it rather than let
            # the unacked queue (and every commit's ack wait) grow unbounded.
            entries = len(self._outbox)
            nbytes = sum(p.write_set.byte_size() for p in self._outbox)
            if self.cluster.laggard.backlog_verdict(entries, nbytes):
                self.cluster.demote_slave(self.target.node_id, reason="backlog")
        self._kick()
        return pending.ack

    def unacked_write_sets(self):
        """Write-sets sent but not yet acked (nor failed), oldest first.

        Covers the outbox, the batch currently in transit, and frames
        waiting out a retransmission backoff.  Acked/failed entries are
        pruned lazily here rather than in :meth:`_finish` so the hot ack
        path stays allocation-free.
        """
        self._unacked = [p for p in self._unacked if not p.ack.triggered]
        return [p.write_set for p in self._unacked]

    def _kick(self) -> None:
        if not self._busy:
            self._busy = True
            self.cluster.sim.spawn(
                self._drain(), name=f"repl:{self.source_id}->{self.target.node_id}"
            )

    @staticmethod
    def _finish(pending: PendingSend, ok: bool) -> None:
        if not pending.ack.triggered:
            pending.ack.succeed(ok)
        pending.retry_span.finish(status="acked" if ok else "failed")
        pending.span.finish(status="acked" if ok else "failed",
                            attempts=pending.attempts + 1)

    def _drop(self, pending: PendingSend, counters) -> None:
        counters.add("net.drops")
        counters.add("net.bytes_dropped", pending.write_set.byte_size())

    def _drain(self):
        cluster = self.cluster
        cfg = cluster.cost.config
        sim = cluster.sim
        target = self.target
        counters = target.counters
        try:
            while self._outbox:
                batch, self._outbox = self._outbox, []
                if (
                    not target.alive
                    or target.slave is None
                    or cluster.is_demoted(target.node_id)
                ):
                    # Fail fast on a dead (or promoted, or demoted) target:
                    # no payload bytes and no batch delay are charged — the
                    # attempts count as sent-and-dropped so conservation
                    # holds.  A demoted laggard catches up via page
                    # migration at rejoin, not via this stream.
                    demoted_alive = (
                        target.alive and cluster.is_demoted(target.node_id)
                    )
                    restartable_dead = (
                        cluster.durability_active and not target.alive
                    )
                    for pending in batch:
                        counters.add("net.write_sets_sent")
                        if demoted_alive or restartable_dead:
                            # Enqueued before the demotion (or crash): the
                            # broadcast site never logged it, so retain it
                            # here or the rejoin/restart gap replay would
                            # miss it.
                            cluster._replay_log[
                                pending.write_set.dedup_key()
                            ] = pending.write_set
                        self._drop(pending, counters)
                        self._finish(pending, False)
                    continue
                link = cluster.net.link(self.source_id, target.node_id)
                back = cluster.net.link(target.node_id, self.source_id)
                lossy = link.lossy or back.lossy
                payload = sum(p.write_set.byte_size() for p in batch)
                counters.add("net.batches")
                counters.add("net.bytes_shipped", cfg.batch_bytes(payload, len(batch)))
                saved = sum(p.write_set.bytes_saved() for p in batch)
                if saved:
                    counters.add("net.bytes_saved_delta", saved)
                delay = cfg.batch_delay(payload, len(batch))
                if lossy:
                    delay += link.extra_delay()
                yield sim.timeout(delay)
                delivered: List[PendingSend] = []
                requeue: List[PendingSend] = []
                for idx, pending in enumerate(batch):
                    counters.add("net.write_sets_sent")
                    if cluster.is_demoted(target.node_id):
                        # Demoted mid-batch (buffer cap tripped on an
                        # earlier frame): the remainder fast-fails, but is
                        # retained for the rejoin gap replay.
                        if target.alive:
                            cluster._replay_log[
                                pending.write_set.dedup_key()
                            ] = pending.write_set
                        self._drop(pending, counters)
                        self._finish(pending, False)
                        continue
                    if lossy and link.drops():
                        # Data frame lost in flight.  Slaves apply write-sets
                        # (and maintain indexes) strictly in version order,
                        # so the stream truncates here: the lost frame AND
                        # everything queued behind it go back for in-order
                        # retransmission (go-back-N, not selective repeat).
                        self._drop(pending, counters)
                        requeue = batch[idx:]
                        break
                    outcome = target.deliver_write_set(pending.write_set)
                    if outcome == "dead":
                        if cluster.durability_active and not target.alive:
                            # Crashed mid-batch: retain for restart gap replay.
                            cluster._replay_log[
                                pending.write_set.dedup_key()
                            ] = pending.write_set
                        self._drop(pending, counters)
                        self._finish(pending, False)
                        continue
                    if lossy and link.duplicates():
                        # The network duplicated the frame: the extra copy
                        # is a real transmission the slave must filter.
                        counters.add("net.write_sets_sent")
                        target.deliver_write_set(pending.write_set)
                    if outcome == "ok":
                        if (
                            cluster.straggler_active
                            and cfg.slave_buffer_max_ops
                            and target.slave is not None
                            and target.slave.pending_ops > cfg.slave_buffer_max_ops
                        ):
                            # Slave-side buffer cap: the write-set IS
                            # buffered (counted received), but crossing the
                            # high watermark demotes the replica so the
                            # backlog stops growing here.
                            cluster.demote_slave(target.node_id, reason="buffer-cap")
                            if (
                                not cluster.is_demoted(target.node_id)
                                and not target.slave.catching_up
                                and target.slave.pending_ops
                                > cfg.slave_buffer_max_ops
                            ):
                                # Demotion vetoed (last subscribed slave):
                                # shed load by eagerly applying the
                                # confirmed prefix instead of buffering
                                # deeper.  The residue is the unconfirmed
                                # in-flight tail, which cannot be applied.
                                try:
                                    confirmed = cluster.scheduler.latest
                                except NodeUnavailable:
                                    confirmed = None
                                if confirmed is not None:
                                    drained = target.slave.drain_to(confirmed)
                                    if drained:
                                        counters.add(
                                            "slave.forced_drains"
                                        )
                                        counters.add(
                                            "slave.ops_force_drained", drained
                                        )
                                        yield target.job(
                                            target.apply_cost(drained), "drain"
                                        )
                        try:
                            yield target.job(
                                target.receive_cost(len(pending.write_set.ops)), "recv"
                            )
                        except (NodeUnavailable, TransactionAborted):
                            # Died during the receive charge; the write-set
                            # was buffered (counted received) but the ack is
                            # lost with the node.
                            self._finish(pending, False)
                            continue
                    delivered.append(pending)
                if delivered:
                    ack_lost = lossy and back.drops()
                    ack_delay = cfg.net_delay(cfg.net_ack_bytes)
                    if lossy:
                        ack_delay += back.extra_delay()
                    yield sim.timeout(ack_delay)
                    if ack_lost:
                        # Piggybacked ack frame lost: the master times out
                        # and retransmits; the slave's duplicate filter
                        # absorbs the re-deliveries.  The unacked frames
                        # precede any lost tail in stream order.
                        requeue = delivered + requeue
                    else:
                        for pending in delivered:
                            self._finish(pending, True)
                        if cluster.straggler_active:
                            now = sim.now()
                            detector = cluster.laggard
                            for pending in delivered:
                                detector.observe_ack(
                                    target.node_id, now - pending.enqueued_at
                                )
                            if detector.ack_latency_verdict(target.node_id):
                                cluster.demote_slave(
                                    target.node_id, reason="ack-latency"
                                )
                if requeue:
                    yield from self._backoff_and_requeue(requeue)
        finally:
            self._busy = False

    # -- ack timeout + retransmission -------------------------------------------------
    def _ack_timeout(self, attempts: int) -> float:
        cfg = self.cluster.cost.config
        return min(cfg.ack_timeout_base * (2 ** (attempts - 1)), cfg.retransmit_backoff_cap)

    def _backoff_and_requeue(self, requeue: List[PendingSend]):
        """Wait the ack timeout, then retransmit ``requeue`` ahead of the
        outbox (stream order preserved).  Runs inside the drain process, so
        sends issued while backing off queue up behind the retransmissions.
        """
        cluster = self.cluster
        cfg = cluster.cost.config
        for pending in requeue:
            pending.attempts += 1
        if any(p.attempts >= cfg.retransmit_limit for p in requeue):
            # Retransmission budget exhausted: declare the target failed
            # (fail-stop suspicion) so reconfiguration takes over.
            for pending in requeue:
                self._finish(pending, False)
            cluster.suspect_node(self.target.node_id)
            return
        yield cluster.sim.timeout(
            self._ack_timeout(max(p.attempts for p in requeue))
        )
        source = cluster.nodes.get(self.source_id)
        if source is None or not source.alive:
            # The sending master died while the timer was pending; its
            # commits are failing anyway.
            for pending in requeue:
                self._finish(pending, False)
            return
        live = [p for p in requeue if not p.ack.triggered]
        if live:
            self.target.counters.add("net.retransmits", len(live))
            for pending in live:
                # Close the previous attempt's span (if any) and open the
                # next one, nested under the write-set's broadcast span.
                pending.retry_span.finish(status="retransmitted")
                pending.retry_span = pending.span.child(
                    "retransmit",
                    node=self.source_id,
                    target=self.target.node_id,
                    attempt=pending.attempts,
                )
            self._outbox[:0] = live


class _CommitEpoch:
    """One open commit epoch on one master (epoch-batched commit mode).

    Members join while the epoch is open (per-txn OCC validation, shared
    per-table epoch versions, early lock release); the epoch seals when it
    is full or its timer fires, publishing one concatenated write-set
    through one broadcast + ack barrier.  ``done`` resolves True once the
    epoch is confirmed to the scheduler, False if the master died first.
    """

    __slots__ = ("ops", "versions", "members", "done", "sealed", "opened_at")

    def __init__(self, now: float, done) -> None:
        self.ops: List = []
        #: table -> version reserved for this epoch (one advance per table).
        self.versions: Dict[str, int] = {}
        #: (txn_id, commit_versions, queries, started_at) per member.
        self.members: List[Tuple] = []
        self.done = done
        self.sealed = False
        self.opened_at = now


class SimDmvCluster:
    """Scheduler(s) + master + slaves (+ spares) under the event kernel."""

    def __init__(
        self,
        schemas: Sequence[TableSchema],
        num_slaves: int = 2,
        num_spares: int = 0,
        num_schedulers: int = 1,
        conflict_map: Optional[ConflictClassMap] = None,
        multi_master: bool = False,
        num_masters: Optional[int] = None,
        cost_config: Optional[CostConfig] = None,
        cache_pages: int = 1 << 30,
        rows_per_page: int = 64,
        seed: int = 0,
        spare_read_fraction: float = 0.0,
        heartbeat_interval: float = 1.0,
        heartbeat_misses: int = 2,
        checkpoint_period: float = 0.0,
        pageid_ship_every: float = 0.0,
        gc_period: float = 60.0,
        trace: bool = False,
        trace_capacity: int = 1 << 16,
        ack_policy: str = "all",
        quorum_k: int = 1,
        interest_sets: Optional[Dict[str, Optional[Sequence[str]]]] = None,
        min_replication_factor: int = 1,
        slave_cache_pages: Optional[int] = None,
    ) -> None:
        if ack_policy not in ("all", "quorum", "all-healthy"):
            raise ValueError(f"unknown ack policy {ack_policy!r}")
        #: Pre-commit acknowledgement policy: ``all`` (paper behaviour —
        #: every subscribed slave must ack), ``quorum`` (any ``quorum_k``
        #: slave acks suffice) or ``all-healthy`` (all non-demoted slaves).
        #: Laggard demotion runs only under the non-default policies, so an
        #: ``all`` cluster is event-for-event identical to the seed.
        self.ack_policy = ack_policy
        self.quorum_k = max(1, quorum_k)
        self.sim = Simulator()
        #: Transaction-lifecycle tracer on the virtual clock.  Disabled by
        #: default: the null fast path adds no events to the kernel, so a
        #: traced run and an untraced run of the same seed are identical
        #: (same interleaving, same counters, same fingerprint).
        self.tracer = Tracer(now=self.sim.now, capacity=trace_capacity, enabled=trace)
        self.schemas = list(schemas)
        self.cost = CostModel(cost_config if cost_config is not None else CostConfig())
        self.rng = RngStream(seed, "simcluster")
        #: Lossy-network model (clean unless a fault plan touches it).
        self.net = NetworkModel(self.rng.child("net"))
        #: Cluster-level counters (scheduler queueing, suspicions, RPC loss).
        self.counters = Counters()
        table_names = [s.name for s in self.schemas]
        if conflict_map is None:
            conflict_map = ConflictClassMap.single_class(table_names)
        if num_masters is None:
            # Legacy shape: one master, or (historic multi-master tests)
            # one per conflict class capped at two.
            num_masters = min(conflict_map.num_classes, 2) if multi_master else 1
        num_masters = max(1, num_masters)
        master_ids = [f"m{i}" for i in range(num_masters)]
        conflict_map.assign_masters(master_ids)
        self.conflict_map = conflict_map
        self.schedulers: List[SchedulerAgent] = [
            SchedulerAgent(
                f"sched{i}",
                VersionAwareScheduler(
                    f"sched{i}",
                    conflict_map,
                    rng=self.rng.child(f"sched{i}"),
                    spare_read_fraction=spare_read_fraction,
                ),
            )
            for i in range(max(1, num_schedulers))
        ]
        for agent in self.schedulers:
            agent.scheduler.tracer = self.tracer
            # Partial-routing counters feed the cluster's fingerprinted
            # set (they never fire under full replication).
            agent.scheduler.partial_counters = self.counters
        self.nodes: Dict[str, InMemoryDbNode] = {}
        self.rows_per_page = rows_per_page
        for master_id in master_ids:
            master = InMemoryDbNode(
                self.sim, master_id, self.cost, self.schemas, cache_pages, rows_per_page,
                tracer=self.tracer, durable=self.cost.config.durable_wal,
            )
            if len(master_ids) > 1:
                master.make_dual_master(
                    {
                        t for t in table_names
                        if conflict_map.master_of_class(conflict_map.class_of(t)) == master_id
                    },
                    read_concurrency=self.cost.config.read_concurrency,
                )
            else:
                master.make_master(self.cost.config.read_concurrency)
            self.nodes[master_id] = master
        self._spare_ids: set = set()
        #: Interest registry (partial replication).  All-full — the default
        #: — is indistinguishable from no registry: no filtering, no new
        #: counters, no routing changes, bit-identical fingerprints.
        self.interest = InterestRegistry()
        self.min_replication_factor = max(1, min_replication_factor)
        #: Resident-page budget for non-spare slaves (hot/cold tiering):
        #: a slave may subscribe to more pages than it keeps hot; the cold
        #: remainder spills through the LRU cache and is re-faulted from
        #: the disk-tier model on access (``cache.evictions`` /
        #: ``cache.misses`` + per-statement fault time).
        self._slave_cache_pages = (
            slave_cache_pages if slave_cache_pages is not None else cache_pages
        )
        for i in range(num_slaves):
            self._add_slave(f"s{i}", self._slave_cache_pages, spare=False)
        for i in range(num_spares):
            self._add_slave(f"spare{i}", cache_pages, spare=True)
        if interest_sets:
            for node_id, tables in interest_sets.items():
                if node_id not in self.nodes:
                    raise ConfigError(f"interest set for unknown node {node_id!r}")
                if self.nodes[node_id].master is not None and tables is not None:
                    raise ConfigError(f"master {node_id!r} must keep full interest")
                iset = (
                    InterestSet.full() if tables is None else InterestSet.of(*tables)
                )
                self.interest.declare(node_id, iset)
            self._declare_interest_to_schedulers()
        self.metrics = Metrics()
        #: Per-(master, slave) outbound replication channels (group-commit
        #: batching + lossy-link retransmission).
        self._channels: Dict[Tuple[str, str], ReplicationChannel] = {}
        self.timelines: List[FailoverTimeline] = []
        self.scheduler_takeovers: List[Tuple[float, float]] = []  # (detected, done)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self._handled_failures: set = set()
        #: Failure-detector miss counts; cleared when a node reintegrates so
        #: a second failure of the same node is re-detected.
        self._missed: Dict[str, int] = {}
        #: Masters currently mid-reconfiguration (graceful-degradation
        #: window) and masters whose reconfiguration found no successor.
        self._reconfiguring: set = set()
        self._reconfig_dead_ends: set = set()
        self._update_waiters: List = []
        #: Confirmed commits (master, txn, versions) — the browser-acked
        #: history the chaos durability invariant checks against survivors.
        self.commit_log: List[Tuple[str, int, Dict[str, int]]] = []
        self._browsers: List = []
        self._stop_browsers = False
        #: Laggard bookkeeping.  The detector is pure state (no events, no
        #: counters), so constructing it never perturbs a seeded run; the
        #: monitor daemon that acts on it is spawned only for non-default
        #: ack policies to keep the ``all`` event stream bit-identical.
        self.laggard = LaggardDetector(self.cost.config)
        #: Overload-robustness state.  The admission controller is a pure
        #: state machine (no events, no RNG, no counters until it rejects),
        #: created only when its knobs are on so default runs stay
        #: bit-identical.  ``retry_budget`` backs the closed-loop browser
        #: pool's retry cap; the open-loop engine keeps per-tenant budgets
        #: of its own.  ``traffic_stats`` is attached by an
        #: :class:`~repro.traffic.engine.OpenLoopEngine` when one drives
        #: this cluster (the overload invariants key off it).
        self.admission = (
            AdmissionController(self.cost.config) if self.overload_active else None
        )
        self.retry_budget = (
            RetryBudget(
                self.cost.config.retry_budget_rate, self.cost.config.retry_budget_burst
            )
            if self.cost.config.retry_budget_rate > 0
            else None
        )
        self.traffic_stats = None
        #: node_id -> open ``demote`` span for currently demoted slaves.
        self._demoted: Dict[str, object] = {}
        #: Every node that was ever demoted (rejoin-convergence invariant).
        self._ever_demoted: set = set()
        #: Write-sets retained while any node is demoted, keyed by dedup
        #: identity.  A demoted node's channel drops broadcasts, and the
        #: migration support for its rejoin may not have received them yet
        #: either (quorum acks confirm commits before every slave has the
        #: data) — replaying this log at rejoin closes that gap.  Cleared
        #: as soon as no node is demoted.
        self._replay_log: Dict[Tuple, "WriteSet"] = {}
        #: Largest write-set (ops) ever broadcast — the slack the buffer
        #: bound invariant allows above the configured cap.
        self._max_ws_ops = 0
        #: Durable-WAL mode state.  The storage RNG child is created only
        #: when the mode is on: ``RngStream.child`` consumes a parent draw,
        #: so an unconditional child would shift every later stream (the
        #: browsers') and break legacy seeded fingerprints.
        self.storage_rng = self.rng.child("storage") if self.durability_active else None
        #: (dedup_key, master_id, txn_id) of WAL records that were above the
        #: confirmed vector when their node crashed — ghost candidates for
        #: the no-ghost-commits invariant.
        self._ghosts: List[Tuple[Tuple, str, int]] = []
        #: Confirmed version vector snapshotted at each durable crash,
        #: consumed by the restart path and the durable-prefix invariant.
        self._crash_confirmed: Dict[str, VersionVector] = {}
        #: (node_id, crash_time, confirmed-at-crash dict) per completed
        #: restart-from-own-disk recovery.
        self._restart_audits: List[Tuple[str, float, Dict[str, int]]] = []
        #: Open commit epochs per master (``epoch_max_txns > 1`` only).
        self._epochs: Dict[str, _CommitEpoch] = {}
        #: Per-master update-admission semaphores (``update_mpl > 0`` only;
        #: created lazily so the legacy configuration allocates nothing).
        self._update_slots: Dict[str, Resource] = {}
        #: Conflict classes mid-re-home: updates routed to one of these park
        #: on the waiter queue until the ownership flip (drain barrier).
        self._rehoming_classes: set = set()
        #: Per-class commit counts since the last rebalancer tick, and the
        #: write-rate EWMAs fed from them.  Pure bookkeeping (no events, no
        #: RNG, no counters), so constructing them never perturbs a seeded
        #: run; the rebalancer daemon that acts on them is spawned only when
        #: dynamic classes are enabled.
        self._class_commits: Dict[int, int] = {}
        self.class_rates = ClassWriteRates(self.cost.config.class_rate_alpha)
        self._last_rehome_at = float("-inf")
        #: Last stored browser-pool profile (mix, scale, sequences, think,
        #: retries) so chaos flash-crowd events can add load mid-run.
        self._browser_profile = None
        self.sim.spawn(self._failure_detector(), name="failure-detector")
        if self.straggler_active:
            self.sim.spawn(self._laggard_monitor(), name="laggard-monitor")
        if self.rebalancer_active:
            self.sim.spawn(self._rebalancer_loop(), name="class-rebalancer")
        if checkpoint_period > 0:
            self.sim.spawn(self._checkpoint_daemon(checkpoint_period), name="checkpointer")
        if pageid_ship_every > 0:
            self.sim.spawn(self._pageid_shipper(pageid_ship_every), name="pageid-shipper")
        if gc_period > 0:
            self.sim.spawn(self._gc_daemon(gc_period), name="version-gc")

    def _gc_daemon(self, period: float):
        """Periodic version GC on every slave (bounded index growth)."""
        while True:
            yield self.sim.timeout(period)
            try:
                latest = self.scheduler.latest
            except NodeUnavailable:
                continue
            for node in self.nodes.values():
                if node.alive and node.slave is not None and not node.slave.catching_up:
                    node.slave.gc_versions(latest)

    # -- scheduler group -----------------------------------------------------------------
    @property
    def scheduler(self) -> VersionAwareScheduler:
        """The primary scheduler (lowest-id alive, ready agent)."""
        for agent in self.schedulers:
            if agent.alive and agent.ready:
                return agent.scheduler
        raise NodeUnavailable("no scheduler available")

    def _alive_scheduler_agents(self) -> List[SchedulerAgent]:
        return [a for a in self.schedulers if a.alive]

    # -- partial replication -------------------------------------------------------------
    @property
    def partial_active(self) -> bool:
        return self.interest.partial_active

    def _declare_interest_to_schedulers(self) -> None:
        """Push every node's interest set to every scheduler agent."""
        for node_id in self.nodes:
            tables = self.interest.get(node_id).tables
            for agent in self.schedulers:
                agent.scheduler.set_interest(node_id, tables)

    def _note_partial_freshness(self, sends) -> None:
        """Mark acked write-set versions known-fresh on every scheduler.

        Runs synchronously after the ack barrier, in the same event as the
        scheduler's version-vector merge, so there is no window in which a
        read tagged with the new versions could be routed to a slave whose
        ack has not been recorded yet.  Targets that died or were demoted
        during the barrier are skipped — their acks never arrived.
        """
        agents = self._alive_scheduler_agents()
        for target, frame, _ack in sends:
            if (
                target.alive
                and target.subscribed
                and target.node_id not in self._demoted
            ):
                for agent in agents:
                    agent.scheduler.note_slave_versions(target.node_id, frame.versions)

    def _broadcast_write_set(self, source: InMemoryDbNode, write_set, parent_span=NULL_SPAN):
        """Send one write-set to every subscribed slave, interest-filtered.

        Returns ``(target, frame, ack)`` triples for the frames actually
        sent.  With full replication (the default) every target gets the
        original object — same iteration order, same channel calls, same
        fingerprints as the historical inline loop.  Under partial
        replication each frame is restricted to the target's interest:
        fully filtered frames are never sent at all, and the per-target
        wire savings land under ``net.bytes_saved_partial``.
        """
        partial = self.interest.partial_active
        sends = []
        for target in self.nodes.values():
            if (
                target.node_id == source.node_id
                or not target.alive
                or target.slave is None
                or not target.subscribed
            ):
                continue
            frame = write_set
            if partial:
                frame = self.interest.restrict(target.node_id, write_set)
                if frame is None:
                    target.counters.add("net.write_sets_filtered")
                    target.counters.add("net.bytes_saved_partial", write_set.byte_size())
                    continue
                if frame is not write_set:
                    target.counters.add(
                        "net.bytes_saved_partial",
                        write_set.byte_size() - frame.byte_size(),
                    )
            ack = self._channel(source.node_id, target).send(frame, parent_span=parent_span)
            sends.append((target, frame, ack))
        return sends

    def _replicate_scheduler_state(self, source: VersionAwareScheduler) -> None:
        """Replicate the version vector to peer schedulers (one-way delay).

        These RPCs traverse the chaos network too, but they are fire-and-
        forget best effort (the next commit re-sends a superset vector), so
        losses land under ``net.sched_state_drops`` — NOT ``net.drops``,
        which is reserved for the write-set conservation invariant.
        """
        state = source.export_state()
        for agent in self.schedulers:
            if agent.alive and agent.scheduler is not source:
                link = self.net.link(source.scheduler_id, agent.agent_id)
                if link.lossy and link.drops():
                    self.counters.add("net.sched_state_drops")
                    continue
                delay = self.cost.config.net_latency
                if link.lossy:
                    delay += link.extra_delay()
                self.sim.schedule(delay, agent.scheduler.import_state, state)

    def kill_scheduler(self, agent_id: str) -> None:
        for agent in self.schedulers:
            if agent.agent_id == agent_id:
                agent.alive = False
                return
        raise NodeUnavailable(f"no scheduler {agent_id}")

    def kill_scheduler_at(self, agent_id: str, when: float) -> None:
        self.sim.schedule(max(0.0, when - self.sim.now()), self.kill_scheduler, agent_id)

    def _scheduler_takeover(self, successor: SchedulerAgent):
        """§4.1: a peer takes over after the primary scheduler fails."""
        detected = self.sim.now()
        successor.ready = False
        cfg = self.cost.config
        # Ask the masters to abort uncommitted transactions and report
        # their highest produced versions (one RPC round).
        yield self.sim.timeout(cfg.rtt())
        for node in self.nodes.values():
            if node.alive and node.master is not None:
                node.engine.abort_all_active(reason="scheduler-failure")
                successor.scheduler.import_state(node.master.current_versions().as_dict())
        # Rebuild the topology from ground truth and broadcast it.
        sched = successor.scheduler
        sched.slaves.clear()
        sched.masters = {
            n.node_id for n in self.nodes.values() if n.alive and n.master is not None
        }
        for node in self.nodes.values():
            if node.alive and node.slave is not None and node.subscribed:
                sched.add_slave(node.node_id, spare=node.node_id in self._spare_ids)
        yield self.sim.timeout(cfg.rtt())
        successor.ready = True
        self.scheduler_takeovers.append((detected, self.sim.now()))
        self._wake_update_waiters()

    # -- topology ------------------------------------------------------------------------
    def _add_slave(self, node_id: str, cache_pages: int, spare: bool) -> InMemoryDbNode:
        node = InMemoryDbNode(
            self.sim, node_id, self.cost, self.schemas, cache_pages, self.rows_per_page,
            tracer=self.tracer, durable=self.cost.config.durable_wal,
        )
        node.make_slave()
        self.nodes[node_id] = node
        if spare:
            self._spare_ids.add(node_id)
        for agent in self._alive_scheduler_agents():
            agent.scheduler.add_slave(node_id, spare=spare)
        return node

    def node(self, node_id: str) -> InMemoryDbNode:
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            raise NodeUnavailable(f"node {node_id} unavailable")
        return node

    def load(self, datagen) -> None:
        """Populate every node identically (instant: pre-experiment setup).

        Each node also snapshots the initial image into its stable store —
        the "mmap an on-disk database" starting point, which is what bounds
        worst-case migration to the modifications made since the run began.
        """
        from repro.cluster.sync import datagen_tables

        for table, rows in datagen_tables(datagen):
            for node in self.nodes.values():
                node.engine.bulk_load(table, rows)
        for node in self.nodes.values():
            node.sql.invalidate_plans()
            node.checkpoint()

    def make_stale_backup(self, node_id: str) -> None:
        """Unsubscribe a spare from replication (the Figure 5 stale backup)."""
        self.nodes[node_id].subscribed = False

    def warm_all_caches(self) -> None:
        """Make every node's resident set complete (post-load steady state)."""
        for node in self.nodes.values():
            node.cache.warm(p.page_id for p in node.engine.store.all_pages())

    def chill_cache(self, node_id: str) -> None:
        self.nodes[node_id].cache.invalidate_all()

    # -- update admission (graceful degradation) ---------------------------------------------
    def acquire_master(self, tables: Sequence[str]):
        """Route an update to its master, queueing through reconfigurations.

        While the master of the tables' conflict class is being failed over,
        the update does not bounce with ``NodeUnavailable``: it is parked on
        a waiter event (counted under ``sched.queued_updates``) and released
        when a reconfiguration step completes.  The wait is bounded by one
        absolute deadline of ``update_queue_deadline`` seconds; expiry
        counts a ``sched.deadline_rejects`` and fails with reason
        ``reconfig-deadline``.  Unrecoverable situations (no scheduler, a
        recorded dead-end master, no conceivable successor) fail fast.
        """
        deadline = self.sim.now() + self.cost.config.update_queue_deadline
        queued = False
        while True:
            if self._rehoming_classes and tables:
                # Drain barrier of an in-flight class re-home: updates for
                # the moving class park here until the ownership flip, so no
                # transaction ever straddles old and new owner.
                try:
                    moving = self.conflict_map.class_of_tables(list(tables))
                except ConfigError:
                    moving = None
                if moving is not None and moving in self._rehoming_classes:
                    if not queued:
                        queued = True
                        self.counters.add("sched.queued_updates")
                    remaining = deadline - self.sim.now()
                    if remaining <= 0:
                        self.counters.add("sched.deadline_rejects")
                        expired = NodeUnavailable(
                            "update queue deadline expired during class re-home"
                        )
                        expired.reason = "reconfig-deadline"
                        raise expired
                    waiter = self.sim.event()
                    self._update_waiters.append(waiter)
                    yield self.sim.any_of([waiter, self.sim.timeout(remaining)])
                    continue
            master_id: Optional[str] = None
            try:
                master_id = self.scheduler.route_update(list(tables))
                node = self.nodes.get(master_id)
                if node is not None and node.alive and node.master is not None:
                    return node
                unavailable = NodeUnavailable(f"{master_id} is not serving as master yet")
            except NodeUnavailable as exc:
                unavailable = exc
            if not self._may_recover(master_id):
                raise unavailable
            if not queued:
                limit = self.cost.config.update_queue_limit
                if limit and len(self._update_waiters) >= limit:
                    # Bounded waiter queue: beyond the cap new arrivals are
                    # shed immediately with a retryable rejection instead of
                    # parking — the browser backs off and retries, and the
                    # queue cannot grow without bound through a long
                    # reconfiguration.
                    self.counters.add("sched.shed_requests")
                    shed = NodeUnavailable(
                        "update admission queue full during reconfiguration"
                    )
                    shed.reason = "queue-shed"
                    raise shed
                queued = True
                self.counters.add("sched.queued_updates")
            remaining = deadline - self.sim.now()
            if remaining <= 0:
                self.counters.add("sched.deadline_rejects")
                expired = NodeUnavailable(
                    "update queue deadline expired during reconfiguration"
                )
                expired.reason = "reconfig-deadline"
                raise expired
            waiter = self.sim.event()
            self._update_waiters.append(waiter)
            yield self.sim.any_of([waiter, self.sim.timeout(remaining)])

    def _may_recover(self, master_id: Optional[str]) -> bool:
        """Could a queued update for ``master_id`` plausibly be served later?"""
        if master_id is not None and master_id in self._reconfig_dead_ends:
            return False
        if not self._alive_scheduler_agents():
            return False
        if self._reconfiguring:
            return True
        if any(not a.ready for a in self._alive_scheduler_agents()):
            return True  # scheduler takeover in flight
        # Not mid-reconfiguration: recovery is conceivable only if the
        # failure has not been detected yet and a successor candidate exists.
        return any(
            n.alive and n.slave is not None and n.subscribed and n.master is None
            for n in self.nodes.values()
        )

    def _wake_update_waiters(self) -> None:
        """Release every queued update to re-route (topology changed)."""
        waiters, self._update_waiters = self._update_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed(None)

    def _update_slot(self, node_id: str) -> Resource:
        slot = self._update_slots.get(node_id)
        if slot is None:
            slot = self._update_slots[node_id] = Resource(
                self.sim, self.cost.config.update_mpl
            )
        return slot

    def admit_update(
        self,
        tables: Sequence[str],
        tenant: str = "default",
        deadline: Optional[float] = None,
    ):
        """Route an update to its master and, when ``update_mpl`` bounds the
        per-master multiprogramming level, wait for an admission slot.

        Returns ``(node, slot)``; ``slot`` is ``None`` when admission is
        unbounded (legacy).  The slot is re-validated after the wait: the
        master may have died or the class re-homed while queued, in which
        case the update re-routes rather than executing against a stale
        owner.

        With the overload defenses on, the per-tenant admission gate runs
        first (shedding at the door is the cheapest outcome), an expired
        ``deadline`` cancels the update both before routing and after any
        slot wait (queued work whose client has given up is pure waste),
        and the observed routing+slot queueing delay feeds the admission
        controller's watermark EWMA.
        """
        self.admission_check("update", tenant)
        entered = self.sim.now()
        while True:
            if deadline is not None and self.sim.now() >= deadline:
                raise self.deadline_cancel("admit")
            node = yield from self.acquire_master(tables)
            if self.cost.config.update_mpl <= 0:
                self._observe_admission_delay(entered)
                return node, None
            slot = self._update_slot(node.node_id)
            yield from slot.acquire()
            if deadline is not None and self.sim.now() >= deadline:
                slot.release()
                raise self.deadline_cancel("mpl-queue")
            stale = not node.alive or node.master is None
            if not stale and tables:
                try:
                    stale = self.conflict_map.master_for_tables(tables) != node.node_id
                except ConfigError:
                    stale = True
            if not stale:
                self._observe_admission_delay(entered)
                return node, slot
            slot.release()

    # -- straggler tolerance (laggard demotion + rejoin) ---------------------------------------
    @property
    def straggler_active(self) -> bool:
        """True when laggard demotion machinery may act (non-``all`` policy)."""
        return self.ack_policy != "all"

    @property
    def rebalancer_active(self) -> bool:
        """True when the dynamic conflict-class rebalancer daemon runs."""
        cfg = self.cost.config
        return cfg.dynamic_classes and cfg.rebalance_interval > 0

    @property
    def durability_active(self) -> bool:
        """True when nodes keep durable WALs (restart-from-own-disk mode)."""
        return self.cost.config.durable_wal

    @property
    def overload_active(self) -> bool:
        """True when scheduler-side admission control may shed requests."""
        cfg = self.cost.config
        return cfg.admission_rate > 0 or cfg.admission_queue_watermark > 0

    # -- overload defenses (admission + deadline propagation) ----------------------------------
    def admission_check(self, kind: str, tenant: str) -> None:
        """Shed ``kind`` (``read``/``update``) at the door, or admit it.

        Raises a retryable-looking :class:`NodeUnavailable` with reason
        ``admission-reject``; well-behaved clients treat it as a shed (no
        immediate retry) — that is the whole point of rejecting cheaply.
        """
        if self.admission is None:
            return
        cause = self.admission.admit(kind, tenant, self.sim.now())
        if cause is not None:
            self.counters.add("sched.admission_rejects")
            shed = NodeUnavailable(f"admission rejected {kind} ({cause})")
            shed.reason = "admission-reject"
            raise shed

    def deadline_cancel(self, stage: str) -> NodeUnavailable:
        """Build (and count) the terminal error for an expired deadline."""
        self.counters.add("sched.deadline_cancels")
        expired = NodeUnavailable(f"request deadline expired at {stage}")
        expired.reason = "deadline"
        return expired

    def _observe_admission_delay(self, entered: float) -> None:
        if self.admission is not None:
            now = self.sim.now()
            self.admission.observe_queue_delay(now - entered, now)

    def is_demoted(self, node_id: str) -> bool:
        return node_id in self._demoted

    def set_slowdown(self, node_id: str, factor: float) -> None:
        """Chaos ``slowdown`` fault: inflate one node's service times."""
        node = self.nodes.get(node_id)
        if node is not None:
            node.slowdown = max(1.0, factor)

    def demote_slave(self, node_id: str, reason: str = "laggard") -> bool:
        """Demote a laggard slave to catch-up mode (out of the ack set).

        The demoted replica stays alive and keeps answering heartbeats —
        this is the gray-failure path, distinct from fail-stop.  Its
        buffered-but-unconfirmed tail is discarded (rejoin re-fetches
        everything via page migration), it is unsubscribed from the
        broadcast, and the scheduler stops routing fresh-version reads to
        it.  Refused when it is the last subscribed slave: the cluster
        must always keep a failover candidate.
        """
        node = self.nodes.get(node_id)
        if (
            node is None
            or not node.alive
            or node.slave is None
            or node.master is not None
            or node_id in self._demoted
            or node.slave.catching_up
            or not node.subscribed
        ):
            return False
        others = [
            n
            for n in self.nodes.values()
            if n.node_id != node_id
            and n.alive
            and n.slave is not None
            and n.master is None
            and n.subscribed
            and not n.slave.catching_up
        ]
        if not others:
            self.counters.add("slave.demotions_vetoed")
            return False
        try:
            confirmed = self.scheduler.latest
        except NodeUnavailable:
            return False
        # Everything left buffered after this is confirmed history, so a
        # later rejoin can safely apply it; the unconfirmed tail returns
        # via migrated pages instead.
        node.slave.discard_above(confirmed)
        node.subscribed = False
        for agent in self._alive_scheduler_agents():
            agent.scheduler.set_demoted(node_id, True)
        self.laggard.forget(node_id)
        self._demoted[node_id] = self.tracer.span(
            "demote", node=node_id, reason=reason
        )
        self._ever_demoted.add(node_id)
        self.counters.add("slave.demotions")
        return True

    def _laggard_monitor(self):
        """Probe demoted slaves and re-integrate the ones that recovered.

        Each period every demoted, still-alive slave gets one synthetic
        receive-sized health probe; its service time reflects the node's
        current degradation.  ``rejoin_probes`` consecutive healthy probes
        trigger rejoin through a drain barrier + data migration.
        """
        cfg = self.cost.config
        healthy: Dict[str, int] = {}
        while True:
            yield self.sim.timeout(cfg.laggard_probe_interval)
            for node_id in list(self._demoted):
                node = self.nodes.get(node_id)
                if node is None or not node.alive or node.slave is None:
                    # Crashed (or promoted) while demoted: the heartbeat
                    # detector owns it now.
                    healthy.pop(node_id, None)
                    continue
                baseline = self.cost.receive_cpu(cfg.laggard_probe_ops)
                start = self.sim.now()
                try:
                    yield node.job(node.receive_cost(cfg.laggard_probe_ops), "probe")
                except (NodeUnavailable, TransactionAborted):
                    healthy.pop(node_id, None)
                    continue
                took = self.sim.now() - start
                if took <= baseline * cfg.rejoin_health_factor:
                    healthy[node_id] = healthy.get(node_id, 0) + 1
                else:
                    healthy[node_id] = 0
                if healthy.get(node_id, 0) >= cfg.rejoin_probes:
                    healthy.pop(node_id, None)
                    yield from self._rejoin_demoted(node_id)

    def _rejoin_demoted(self, node_id: str):
        """Re-integrate a recovered laggard: drain barrier + migration."""
        node = self.nodes.get(node_id)
        if (
            node is None
            or not node.alive
            or node.slave is None
            or node_id not in self._demoted
        ):
            return
        # Drain barrier: while demoted the channels to this node fast-fail,
        # so their outboxes empty quickly; wait for them to go idle so no
        # stale pre-demotion send can land behind the catch-up stream.
        while any(
            (channel._busy or channel._outbox)
            for (_src, target_id), channel in self._channels.items()
            if target_id == node_id
        ):
            yield self.sim.timeout(self.cost.config.laggard_probe_interval)
        if not node.alive or node.slave is None:
            return
        timeline = FailoverTimeline(
            failure_time=self.sim.now(), detection_time=self.sim.now()
        )
        # No yield between leaving the demoted set and subscribing in
        # catch-up mode (_timed_migration's synchronous prefix), so there
        # is no window where a broadcast could slip past both states.
        span = self._demoted.pop(node_id)
        yield from self._timed_migration(node, timeline)
        timeline.migration_done = self.sim.now()
        self.timelines.append(timeline)
        for agent in self._alive_scheduler_agents():
            agent.scheduler.set_demoted(node_id, False)
        self.counters.add("slave.rejoins")
        span.finish(status="rejoined")

    # -- replication ------------------------------------------------------------------------
    def commit_update(
        self, node: InMemoryDbNode, txn, queries, mpl_slot=None, deadline=None
    ):
        """Master pre-commit + eager broadcast + ack barrier (Figure 2).

        This job owns the transaction's root span from the moment the
        connection spawns it: whatever path the commit takes (success,
        master death mid-broadcast, interrupt), the root is closed here
        with a terminal ``status`` tag.  It also owns the update-admission
        slot (``update_mpl > 0``), released on every exit path.

        With ``epoch_max_txns > 1`` the commit takes the epoch-batched
        path instead: N commits share one version-vector advance, one WAL
        force and one broadcast barrier.
        """
        cfg = self.cost.config
        if cfg.epoch_max_txns > 1:
            result = yield from self._commit_update_epoch(
                node, txn, queries, mpl_slot, deadline
            )
            return result
        root = getattr(txn, "obs_span", NULL_SPAN)
        committed = False
        started = self.sim.now()
        try:
            if not node.alive or not txn.active:
                raise NodeUnavailable(f"master {node.node_id} failed before commit")
            if deadline is not None and self.sim.now() >= deadline:
                # The client has already given up: abort instead of paying
                # for pre-commit, WAL force and a full broadcast barrier.
                node.engine.abort(txn, reason="deadline")
                self.counters.add("sched.deadline_cancels")
                raise TransactionAborted(
                    "request deadline expired at commit", reason="deadline"
                )
            yield from node.cpu.acquire()
            write_set = None
            pre = (
                root.child("precommit", node=node.node_id)
                if root.recording
                else NULL_SPAN
            )
            try:
                if pre.recording:
                    # pre_commit annotates txn.obs_span with the commit
                    # version vector and dirtied page ids (see MasterReplica).
                    txn.obs_span = pre
                try:
                    write_set = node.master.pre_commit(txn)
                except TransactionAborted as exc:
                    # OCC read-set validation failed: the transaction is
                    # still ACTIVE and revertible, and the connection has
                    # already detached it — roll it back here so the
                    # browser's retry starts from clean state.
                    if node.alive and txn.active:
                        node.engine.abort(txn, reason=getattr(exc, "reason", "abort"))
                    raise
                finally:
                    if pre.recording:
                        txn.obs_span = root
                if write_set is not None:
                    # Durable mode: the pre-commit record is on the master's
                    # own log before any ack can exist (write-ahead rule).
                    node.log_write_set(write_set)
                    service = self.cost.precommit_cpu(len(write_set.ops))
                    if node.durable:
                        service += cfg.wal_fsync_time
                    yield self.sim.timeout(service)
            finally:
                node.cpu.release()
                if write_set is not None:
                    pre.finish(status="ok", ops=len(write_set.ops), seq=write_set.seq)
                else:
                    pre.finish(status="read-only")
            if write_set is not None:
                retain = (self.straggler_active and self._demoted) or (
                    self.durability_active and self._any_node_down()
                )
                if retain:
                    # Demoted (or crashed-but-restartable) nodes miss this
                    # broadcast entirely; retain it for gap replay at their
                    # rejoin/restart.
                    self._replay_log[write_set.dedup_key()] = write_set
                elif self._replay_log:
                    self._replay_log.clear()
                sends = self._broadcast_write_set(node, write_set, parent_span=root)
                acks = [ack for _target, _frame, ack in sends]
                if self.straggler_active and self._demoted:
                    excluded = sum(
                        1
                        for node_id in self._demoted
                        if (peer := self.nodes.get(node_id)) is not None and peer.alive
                    )
                    if excluded:
                        self.counters.add("net.acks_skipped_demoted", excluded)
                if acks:
                    ack_span = (
                        root.child("ack", node=node.node_id, replicas=len(acks))
                        if root.recording
                        else NULL_SPAN
                    )
                    try:
                        yield from self._ack_barrier(acks)
                    finally:
                        if ack_span.recording:
                            ack_span.finish(
                                acked=sum(1 for a in acks if a.triggered and a.value)
                            )
                if not node.alive:
                    # Master died mid-broadcast: the commit was never confirmed
                    # to the scheduler, so recovery will discard these
                    # partially propagated modifications (paper §4.2).
                    raise NodeUnavailable(f"master {node.node_id} failed during commit")
                primary = self.scheduler
                primary.on_master_commit(node.node_id, write_set.versions, queries, txn.txn_id)
                # Scheduler-confirmed == fully replicated: this is the durable
                # history the chaos durability invariant audits survivors for.
                self.commit_log.append((node.node_id, txn.txn_id, dict(write_set.versions)))
                if self.interest.partial_active:
                    self._note_partial_freshness(sends)
                self._replicate_scheduler_state(primary)
                node.master.finalize(txn)
                if self.rebalancer_active:
                    self._note_class_commits(write_set.versions, 1)
            yield self.sim.timeout(cfg.rtt())
            committed = True
            if write_set is not None:
                self.metrics.commit_latency.record(self.sim.now() - started)
            return None
        finally:
            if mpl_slot is not None:
                mpl_slot.release()
            root.finish(status="committed" if committed else "aborted")

    def _note_class_commits(self, versions, count: int) -> None:
        """Feed per-class commit counts to the rebalancer's rate tracker."""
        if not versions:
            return
        try:
            cls = self.conflict_map.class_of(next(iter(versions)))
        except ConfigError:
            return
        self._class_commits[cls] = self._class_commits.get(cls, 0) + count

    # -- epoch-batched commit (epoch_max_txns > 1) ---------------------------------------------
    def _open_epoch(self, node: InMemoryDbNode) -> _CommitEpoch:
        epoch = self._epochs.get(node.node_id)
        if epoch is None or epoch.sealed:
            epoch = _CommitEpoch(self.sim.now(), self.sim.event())
            self._epochs[node.node_id] = epoch
            if self.cost.config.epoch_ms > 0:
                self.sim.spawn(self._epoch_timer(node, epoch), name="epoch-timer")
        return epoch

    def _epoch_timer(self, node: InMemoryDbNode, epoch: _CommitEpoch):
        """Seal an open epoch after ``epoch_ms`` even if it never filled."""
        yield self.sim.timeout(self.cost.config.epoch_ms / 1000.0)
        if epoch.sealed:
            return
        if node.alive and node.master is not None:
            yield from self._seal_epoch(node, epoch)
        else:
            # The master died with the epoch open: fail every member (the
            # browsers retry), exactly like a mid-broadcast master crash.
            epoch.sealed = True
            if not epoch.done.triggered:
                epoch.done.succeed(False)

    def _commit_update_epoch(
        self, node: InMemoryDbNode, txn, queries, mpl_slot=None, deadline=None
    ):
        """Epoch-batched variant of :meth:`commit_update`.

        OCC validation runs per transaction at epoch *join* (with early
        lock release — safe because OCC page stamps advance at write time,
        and an unpublished epoch only dies with the whole master), while
        version-vector advancement, the WAL force, the broadcast and the
        ack barrier are amortized over the sealed epoch.
        """
        cfg = self.cost.config
        root = getattr(txn, "obs_span", NULL_SPAN)
        committed = False
        started = self.sim.now()
        try:
            if not node.alive or not txn.active:
                raise NodeUnavailable(f"master {node.node_id} failed before commit")
            if deadline is not None and self.sim.now() >= deadline:
                node.engine.abort(txn, reason="deadline")
                self.counters.add("sched.deadline_cancels")
                raise TransactionAborted(
                    "request deadline expired at commit", reason="deadline"
                )
            yield from node.cpu.acquire()
            pre = (
                root.child("precommit", node=node.node_id)
                if root.recording
                else NULL_SPAN
            )
            epoch = None
            ops = None
            try:
                epoch = self._open_epoch(node)
                if pre.recording:
                    txn.obs_span = pre
                try:
                    ops, commit_versions = node.master.pre_commit_epoch(
                        txn, epoch.versions
                    )
                except TransactionAborted as exc:
                    if node.alive and txn.active:
                        node.engine.abort(txn, reason=getattr(exc, "reason", "abort"))
                    raise
                finally:
                    if pre.recording:
                        txn.obs_span = root
                if ops is not None:
                    epoch.ops.extend(ops)
                    epoch.members.append((txn.txn_id, commit_versions, queries, started))
                    yield self.sim.timeout(self.cost.precommit_cpu(len(ops)))
            finally:
                node.cpu.release()
                if ops is not None:
                    pre.finish(
                        status="ok", ops=len(ops), epoch_members=len(epoch.members)
                    )
                else:
                    pre.finish(status="read-only")
            if ops is None:
                yield self.sim.timeout(cfg.rtt())
                committed = True
                return None
            if len(epoch.members) >= cfg.epoch_max_txns or cfg.epoch_ms <= 0:
                yield from self._seal_epoch(node, epoch)
            yield epoch.done
            if not epoch.done.value:
                raise NodeUnavailable(
                    f"master {node.node_id} failed during epoch commit"
                )
            yield self.sim.timeout(cfg.rtt())
            committed = True
            self.metrics.commit_latency.record(self.sim.now() - started)
            return None
        finally:
            if mpl_slot is not None:
                mpl_slot.release()
            root.finish(status="committed" if committed else "aborted")

    def _seal_epoch(self, node: InMemoryDbNode, epoch: _CommitEpoch):
        """Close one epoch: one write-set, one WAL force, one ack barrier.

        Runs in the sealing member's (or the timer's) process.  ``done``
        always resolves — in a ``finally`` — so joined members can never
        hang; it carries False unless the epoch was fully published.
        """
        if epoch.sealed:
            return
        epoch.sealed = True
        cfg = self.cost.config
        ok = False
        try:
            if not node.alive or not epoch.members:
                return
            write_set = node.master.seal_epoch(
                epoch.members[0][0], tuple(epoch.ops), epoch.versions,
                len(epoch.members),
            )
            node.log_write_set(write_set)
            if node.durable:
                # One group force covers every member — the durable-mode
                # amortization the epoch exists for.
                yield self.sim.timeout(cfg.wal_fsync_time)
            retain = (self.straggler_active and self._demoted) or (
                self.durability_active and self._any_node_down()
            )
            if retain:
                self._replay_log[write_set.dedup_key()] = write_set
            elif self._replay_log:
                self._replay_log.clear()
            sends = self._broadcast_write_set(node, write_set)
            acks = [ack for _target, _frame, ack in sends]
            if self.straggler_active and self._demoted:
                excluded = sum(
                    1
                    for node_id in self._demoted
                    if (peer := self.nodes.get(node_id)) is not None and peer.alive
                )
                if excluded:
                    self.counters.add("net.acks_skipped_demoted", excluded)
            if acks:
                yield from self._ack_barrier(acks)
            if not node.alive:
                return
            primary = self.scheduler
            for txn_id, versions, queries, _started in epoch.members:
                primary.on_master_commit(node.node_id, versions, queries, txn_id)
                self.commit_log.append((node.node_id, txn_id, dict(versions)))
            if self.interest.partial_active:
                self._note_partial_freshness(sends)
            self._replicate_scheduler_state(primary)
            if self.rebalancer_active:
                self._note_class_commits(epoch.versions, len(epoch.members))
            ok = True
        finally:
            if not epoch.done.triggered:
                epoch.done.succeed(ok)

    # -- dynamic conflict-class sharding (rebalancer + re-home handoff) ------------------------
    def _class_masters(self) -> List[InMemoryDbNode]:
        """Alive nodes able to own conflict classes (dual master+slave)."""
        return [
            node
            for _, node in sorted(self.nodes.items())
            if node.alive
            and node.master is not None
            and node.slave is not None
            and isinstance(node.engine.controller, DualController)
        ]

    def _rebalancer_loop(self):
        """Load-driven split/merge/re-home of conflict classes.

        Samples per-class commit counts every ``rebalance_interval``
        seconds into write-rate EWMAs, folds cold split-products back
        together, and moves (splitting first if necessary) the hottest
        movable class from the most- to the least-loaded master when the
        imbalance crosses ``rebalance_imbalance``.
        """
        cfg = self.cost.config
        while True:
            yield self.sim.timeout(cfg.rebalance_interval)
            counts, self._class_commits = self._class_commits, {}
            self.class_rates.observe_tick(counts, cfg.rebalance_interval)
            if self.sim.now() - self._last_rehome_at < cfg.rebalance_cooldown:
                continue
            if self._reconfiguring or self._rehoming_classes:
                continue
            self._maybe_merge()
            plan = self._plan_rebalance()
            if plan is None:
                continue
            class_id, dst_id = plan
            self._last_rehome_at = self.sim.now()
            yield from self._rehome_class(class_id, dst_id)

    def _plan_rebalance(self) -> Optional[Tuple[int, str]]:
        """Pick ``(class_id, destination_master)`` to move, or ``None``.

        Deterministic: candidates are iterated in sorted order, so the
        same seed always yields the same re-home sequence.
        """
        cfg = self.cost.config
        masters = self._class_masters()
        if len(masters) < 2:
            return None
        rates = {c: self.class_rates.rate(c) for c in self.conflict_map.class_ids()}
        load: Dict[str, float] = {n.node_id: 0.0 for n in masters}
        for class_id, rate in sorted(rates.items()):
            owner = self.conflict_map.master_of_class(class_id)
            if owner in load:
                load[owner] += rate
        hot_id = max(sorted(load), key=lambda m: load[m])
        cool_id = min(sorted(load), key=lambda m: load[m])
        if hot_id == cool_id or load[hot_id] < cfg.rebalance_min_rate:
            return None
        if load[hot_id] < cfg.rebalance_imbalance * max(load[cool_id], 1e-9):
            return None
        hot_classes = sorted(
            (c for c in rates if self.conflict_map.master_of_class(c) == hot_id),
            key=lambda c: (-rates[c], c),
        )
        if not hot_classes:
            return None
        if len(hot_classes) > 1:
            # Shed the second-hottest class: the hot master keeps its head
            # of load, the destination picks up real (but smaller) work.
            return hot_classes[1], cool_id
        # One hot class owns the whole master: split it along atom
        # boundaries and move the colder half.  A single-atom class is the
        # floor (moving whole would just relocate the imbalance).
        new_id = self.conflict_map.split_class(hot_classes[0])
        if new_id is None:
            return None
        self.class_rates.migrate(hot_classes[0], new_id)
        self.counters.add("sched.class_splits")
        return new_id, cool_id

    def _maybe_merge(self) -> None:
        """Fold one cold class into a cold co-located sibling.

        Classes start at atom granularity, so merging is what *creates*
        multi-atom classes — and thereby the classes a later hot-spot
        split can cut apart again.  Both candidates must be cold (below
        ``rebalance_min_rate``) and share an owner, so a merge never moves
        tables between masters and never couples a hot stream to anything.
        """
        cfg = self.cost.config
        for absorb in sorted(self.conflict_map.class_ids(), reverse=True):
            if self.class_rates.rate(absorb) >= cfg.rebalance_min_rate:
                continue
            owner = self.conflict_map.master_of_class(absorb)
            siblings = [
                c
                for c in self.conflict_map.class_ids()
                if c != absorb
                and self.conflict_map.master_of_class(c) == owner
                and self.class_rates.rate(c) < cfg.rebalance_min_rate
            ]
            if not siblings:
                continue
            self.conflict_map.merge_classes(min(siblings), absorb)
            self.class_rates.forget(absorb)
            self.counters.add("sched.class_merges")
            return

    def rehome_class_to(self, class_id: int, dst_id: str):
        """Spawn a re-home of ``class_id`` onto ``dst_id`` (chaos hook)."""
        return self.sim.spawn(
            self._rehome_class(class_id, dst_id), name=f"rehome-{class_id}"
        )

    def rehome_table_to(self, table: str, dst_id: str):
        """Spawn a re-home of ``table``'s class onto ``dst_id`` (chaos hook)."""
        return self.rehome_class_to(self.conflict_map.class_of(table), dst_id)

    def _class_quiescent(self, node: InMemoryDbNode, tables: set) -> bool:
        """No in-flight update on ``node`` touches ``tables``."""
        for txn in node.engine.active_transactions():
            if txn.mode is not TxnMode.UPDATE:
                continue
            if (set(txn.write_intent) | set(txn.tables_written)) & tables:
                return False
        epoch = self._epochs.get(node.node_id)
        if epoch is not None and not epoch.sealed and epoch.members:
            return False
        return True

    def _class_caught_up(self, src: InMemoryDbNode, dst: InMemoryDbNode, tables) -> bool:
        """``dst`` has received every write-set for ``tables`` that ``src``
        (their current master) ever published."""
        for table in tables:
            if dst.slave.received_versions.get(table) < src.engine.versions.get(table):
                return False
        return True

    def _rehome_class(self, class_id: int, dst_id: str):
        """Drain-barrier handoff of one conflict class to a new master.

        State machine (DESIGN.md §13): PARK new updates for the class →
        DRAIN in-flight transactions, the open epoch and the replication
        channels → ADOPT on the destination (apply buffered ops, continue
        the version sequences) → FLIP ownership atomically (conflict map
        epoch bump + dual-controller owned sets + scheduler table) → WAKE
        parked updates.  Every abort path leaves ownership untouched and
        wakes the parked updates, so a master kill mid-handoff degrades to
        the ordinary failover path.
        """
        cfg = self.cost.config
        try:
            src_id = self.conflict_map.master_of_class(class_id)
        except ConfigError:
            return
        if src_id == dst_id or class_id in self._rehoming_classes:
            return
        src = self.nodes.get(src_id)
        dst = self.nodes.get(dst_id)
        if (
            src is None
            or dst is None
            or not src.alive
            or not dst.alive
            or not isinstance(src.engine.controller, DualController)
            or dst.master is None
            or dst.slave is None
            or not isinstance(dst.engine.controller, DualController)
        ):
            self.counters.add("sched.rehome_aborts")
            return
        tables = set(self.conflict_map.tables_of_class(class_id))
        span = self.tracer.span(
            "rehome", kind="rehome", conflict_class=class_id, src=src_id, dst=dst_id
        )
        self._rehoming_classes.add(class_id)
        flipped = False
        try:
            deadline = self.sim.now() + cfg.rehome_drain_timeout
            while True:
                if not src.alive or not dst.alive or self._reconfiguring:
                    self.counters.add("sched.rehome_aborts")
                    return
                if self._class_quiescent(src, tables) and self._class_caught_up(
                    src, dst, tables
                ):
                    break
                if self.sim.now() >= deadline:
                    self.counters.add("sched.rehome_aborts")
                    return
                yield self.sim.timeout(cfg.laggard_probe_interval / 100.0)
            # Handoff cost: coordination overhead + per-table adoption +
            # applying whatever the destination still has buffered.
            pending = dst.slave.pending_op_count()
            yield self.sim.timeout(self.cost.rehome_cost(len(tables), pending))
            if not src.alive or not dst.alive or self._reconfiguring:
                self.counters.add("sched.rehome_aborts")
                return
            # -- atomic flip: no yields from here on ---------------------------
            latest = VersionVector(
                {t: src.engine.versions.get(t) for t in sorted(tables)}
            )
            # Materialise the destination's buffered prefix up to the
            # confirmed frontier (the moved tables are quiescent, so their
            # entire history is confirmed); unconfirmed ops of *other*
            # masters' in-flight commits stay queued.
            target = self._confirmed_vector()
            target.merge(latest)
            dst.slave.drain_to(target)
            for table in sorted(tables):
                version = latest.get(table)
                if dst.engine.versions.get(table) < version:
                    dst.engine.versions.set(table, version)
            # The old owner becomes an ordinary reader of the moved tables;
            # its pages are already at the final versions (it wrote them).
            src.slave.received_versions.merge(latest)
            src.engine.controller.owned -= tables
            dst.engine.controller.owned |= tables
            self.conflict_map.rehome_class(class_id, dst_id)
            for agent in self._alive_scheduler_agents():
                agent.scheduler.on_class_rehome(class_id, dst_id)
            self.counters.add("sched.class_rehomes")
            flipped = True
        finally:
            self._rehoming_classes.discard(class_id)
            self._wake_update_waiters()
            span.finish(status="flipped" if flipped else "aborted")

    def _ack_barrier(self, acks):
        """Wait out the pre-commit acks according to the ack policy.

        ``all`` and ``all-healthy`` both wait for every ack in the list —
        they differ upstream: under ``all-healthy`` demoted slaves never
        enter the list (they are unsubscribed), so the barrier covers
        exactly the healthy replicas.  ``quorum`` resolves as soon as
        ``quorum_k`` positive acks arrive; acks always trigger (success or
        failure), so the barrier also resolves when every ack is in — no
        deadlock even if the quorum is unreachable (the post-barrier
        liveness checks and reconfiguration take over then).
        """
        if self.ack_policy != "quorum":
            yield self.sim.all_of(acks)
            return
        self.counters.add("net.quorum_commits")
        need = min(len(acks), self.quorum_k)
        done = self.sim.event()
        state = [0, 0]  # positive acks, resolved acks

        def on_ack(event) -> None:
            state[1] += 1
            if event.value:
                state[0] += 1
            if not done.triggered and (state[0] >= need or state[1] == len(acks)):
                done.succeed(None)

        for ack in acks:
            ack.add_callback(on_ack)
        yield done
        if state[1] < len(acks):
            # The quorum released this commit while at least one ack was
            # still outstanding — the headline straggler win.
            self.counters.add("net.quorum_saves")

    def _channel(self, source_id: str, target: InMemoryDbNode) -> ReplicationChannel:
        key = (source_id, target.node_id)
        channel = self._channels.get(key)
        if channel is None:
            channel = self._channels[key] = ReplicationChannel(self, source_id, target)
        return channel

    # -- failure injection & detection ---------------------------------------------------------
    def kill_node(self, node_id: str) -> None:
        node = self.nodes[node_id]
        was_alive = node.alive
        node.failed_at = self.sim.now()
        node.fail()
        if was_alive and self.durability_active and getattr(node, "durable", False):
            self._record_crash_state(node)

    def kill_node_at(self, node_id: str, when: float) -> None:
        self.sim.schedule(max(0.0, when - self.sim.now()), self.kill_node, node_id)

    def _any_node_down(self) -> bool:
        return any(not node.alive for node in self.nodes.values())

    def _confirmed_vector(self) -> VersionVector:
        """The cluster-confirmed per-table versions (scheduler's view)."""
        try:
            return self.scheduler.latest.copy()
        except NodeUnavailable:
            vector = VersionVector()
            for _master, _txn, versions in self.commit_log:
                for table, version in versions.items():
                    if version > vector.get(table):
                        vector.set(table, version)
            return vector

    def _record_crash_state(self, node: InMemoryDbNode) -> None:
        """Durable crash semantics: apply the WAL loss model, register ghosts.

        Snapshot the confirmed vector (the durable-prefix obligation for a
        later restart), lose the un-durable WAL tail (fsync-lie mode widens
        it past the believed-synced boundary), and record every WAL record
        above the confirmed vector — lost or surviving — as a ghost
        candidate: if its commit never confirms, nothing recovered from
        this disk may resurface it.
        """
        confirmed = self._confirmed_vector()
        self._crash_confirmed[node.node_id] = confirmed.copy()
        lost = node.crash_durable_state()
        # A torn record appears both in the lost tail and on disk; dedup by
        # LSN before classification.
        candidates = {r.lsn: r for r in list(lost) + node.wal.records_since(0)}
        for record in ghost_wal_records(candidates.values(), confirmed):
            self._ghosts.append((record.dedup_key(), record.master_id, record.txn_id))

    # -- storage-fault hooks (chaos events) ----------------------------------------------------
    def arm_torn_write(self, node_id: str) -> None:
        node = self.nodes.get(node_id)
        if node is not None and getattr(node, "durable", False):
            node.wal.arm_torn_write()

    def set_fsync_lie(self, node_id: str, lying: bool) -> None:
        node = self.nodes.get(node_id)
        if node is not None and getattr(node, "durable", False):
            node.wal.set_fsync_lies(lying)

    def inject_bitflip(self, node_id: str, target: str = "wal") -> None:
        """Flip a bit in one durable record/page, chosen by the storage RNG."""
        node = self.nodes.get(node_id)
        if node is None or not getattr(node, "durable", False) or self.storage_rng is None:
            return
        if target == "checkpoint":
            page_ids = sorted(node.stable.version_map())
            if not page_ids:
                return
            victim = page_ids[self.storage_rng.randint(0, len(page_ids) - 1)]
            if node.stable.corrupt_page(victim):
                node.counters.add("checkpoint.bitflips")
        else:
            if len(node.wal) == 0:
                return
            node.wal.corrupt_record(self.storage_rng.randint(0, len(node.wal) - 1))

    def suspect_node(self, node_id: str) -> None:
        """Fail-stop suspicion: the retransmission budget for ``node_id``
        was exhausted, so the sender declares it failed (the paper's
        fail-stop model — an unreachable node IS a failed node).  The
        heartbeat detector then drives the normal reconfiguration."""
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return
        self.counters.add("net.suspicions")
        self.kill_node(node_id)

    def _failure_detector(self):
        missed = self._missed  # instance state: cleared per-node on reintegration
        while True:
            yield self.sim.timeout(self.heartbeat_interval)
            for node_id, node in list(self.nodes.items()):
                if node.alive:
                    missed[node_id] = 0
                    continue
                if node_id in self._handled_failures:
                    continue
                missed[node_id] = missed.get(node_id, 0) + 1
                if missed[node_id] >= self.heartbeat_misses:
                    self._handled_failures.add(node_id)
                    self.sim.spawn(self._reconfigure(node_id), name="reconfigure")
            # Peer schedulers watch each other (paper §4.1).
            for index, agent in enumerate(self.schedulers):
                if agent.alive:
                    missed[agent.agent_id] = 0
                    continue
                if agent.agent_id in self._handled_failures:
                    continue
                missed[agent.agent_id] = missed.get(agent.agent_id, 0) + 1
                if missed[agent.agent_id] >= self.heartbeat_misses:
                    self._handled_failures.add(agent.agent_id)
                    was_primary = all(not a.alive for a in self.schedulers[:index])
                    successor = next((a for a in self.schedulers if a.alive), None)
                    if was_primary and successor is not None:
                        self.sim.spawn(
                            self._scheduler_takeover(successor), name="sched-takeover"
                        )

    def _reconfigure(self, failed_id: str):
        """Timed failure reconfiguration (paper §4.1-4.5).

        While it runs, ``failed_id`` is in the graceful-degradation window:
        updates for its conflict classes queue (bounded by
        ``update_queue_deadline``) instead of failing immediately.  If no
        successor can be elected the master is recorded as a dead end and
        queued updates are released with a clean error — never a hang.
        """
        failed = self.nodes[failed_id]
        timeline = FailoverTimeline(
            failure_time=failed.failed_at or self.sim.now(),
            detection_time=self.sim.now(),
        )
        self.timelines.append(timeline)
        cfg = self.cost.config
        was_master = failed.master is not None
        if was_master:
            self._reconfiguring.add(failed_id)
        try:
            yield from self._reconfigure_body(failed, failed_id, timeline, cfg, was_master)
        finally:
            self._reconfiguring.discard(failed_id)
            self._wake_update_waiters()

    def _reconfigure_body(self, failed, failed_id: str, timeline, cfg, was_master: bool):
        for agent in self._alive_scheduler_agents():
            agent.scheduler.remove_node(failed_id)
        while True:
            if not self._alive_scheduler_agents():
                # Every scheduler agent is gone: no coordinator exists to
                # run the protocol.  Record the dead end so clients fail
                # cleanly instead of hanging.
                self._reconfig_dead_ends.add(failed_id)
                return
            if any(a.ready for a in self._alive_scheduler_agents()):
                break
            # A scheduler takeover is resynchronising; reconfiguration
            # needs its confirmed version vector, so wait it out.
            yield self.sim.timeout(self.heartbeat_interval)
        if was_master:
            confirmed = self.scheduler.latest.copy()
            # Phase 1 (Recovery): ask every replica to discard unconfirmed
            # write-sets; one RPC round plus the discard work, plus the
            # fixed abort/election/topology coordination overhead.  Only the
            # FAILED master's conflict classes are cleaned — other masters'
            # in-flight pre-commits are still live.
            cleanup_vector = confirmed.copy()
            failed_tables = []
            for table in self.conflict_map.tables:
                owner = self.conflict_map.master_of_class(self.conflict_map.class_of(table))
                if owner != failed_id:
                    cleanup_vector.set(table, 1 << 60)
                else:
                    failed_tables.append(table)
            survivors = [
                n for n in self.nodes.values() if n.alive and n.slave is not None
            ]
            yield self.sim.timeout(cfg.rtt())
            dropped = cleanup_after_master_failure(
                [n.slave for n in survivors if n.subscribed], cleanup_vector
            )
            if (self.straggler_active or self.durability_active) and self._replay_log:
                # The gap-replay log must not resurrect write-sets the
                # cleanup just discarded cluster-wide (unconfirmed commits
                # of the failed master).
                self._replay_log = {
                    key: write_set
                    for key, write_set in self._replay_log.items()
                    if all(
                        version <= cleanup_vector.get(table)
                        for table, version in key[2]
                    )
                }
            yield self.sim.timeout(self.cost.apply_cpu(dropped) + cfg.recovery_overhead)
            # Elect + promote the lowest-id active (non-spare) slave.
            pure_slaves = [n for n in survivors if n.master is None]
            if self.interest.partial_active:
                # Only a slave whose interest covers the failed master's
                # tables can serve as its successor: a non-covering replica
                # never received those tables' write-sets, so promoting it
                # would resurrect the version-0 base as current state.
                pure_slaves = [
                    n
                    for n in pure_slaves
                    if self.interest.covers(n.node_id, failed_tables)
                ]
            candidates = [
                n.slave for n in pure_slaves if not self._is_spare(n.node_id) and n.subscribed
            ] or [n.slave for n in pure_slaves if n.subscribed]
            try:
                new_slave = elect_new_master(candidates)
            except NodeUnavailable:
                # Zero surviving subscribed slaves: the failed master's
                # conflict classes cannot be re-homed.  Record the dead end
                # (updates for them fail cleanly until an operator restores
                # capacity) rather than crashing the reconfiguration job.
                self._reconfig_dead_ends.add(failed_id)
                timeline.recovery_done = self.sim.now()
                timeline.migration_done = self.sim.now()
                return
            # Stop routing reads to the promotee before promotion begins.
            for agent in self._alive_scheduler_agents():
                agent.scheduler.remove_node(new_slave.node_id)
            new_node = self.nodes[new_slave.node_id]
            # In multi-master mode the promotee inherits only the failed
            # master's conflict classes and stays a slave for the rest.
            other_masters_alive = any(
                n.alive and n.master is not None and n.node_id != failed_id
                for n in self.nodes.values()
            )
            owned = None
            if other_masters_alive:
                owned = {
                    t
                    for t in self.conflict_map.tables
                    if self.conflict_map.master_of_class(self.conflict_map.class_of(t))
                    == failed_id
                }
            yield new_node.job(self._promotion_job(new_node, confirmed, owned), "promote")
            for agent in self._alive_scheduler_agents():
                agent.scheduler.on_master_failure(failed_id, new_slave.node_id)
            if self.straggler_active:
                # Under quorum acks a survivor outside the quorum may be
                # missing confirmed commits of the failed master (its
                # truncated watermark sits below ``confirmed``).  Serving
                # fresh-version reads from it would violate the snapshot
                # contract, so it is demoted and re-fetches the gap via
                # page migration at rejoin.  Never fires under ``all``:
                # every survivor acked every confirmed commit.
                for peer in list(self.nodes.values()):
                    if (
                        peer.alive
                        and peer.slave is not None
                        and peer.master is None
                        and peer.subscribed
                        and not peer.slave.catching_up
                        and any(
                            peer.slave.received_versions.get(t) < confirmed.get(t)
                            for t in failed_tables
                        )
                    ):
                        self.demote_slave(peer.node_id, reason="stale-after-failover")
        timeline.recovery_done = self.sim.now()
        self._reconfig_dead_ends.discard(failed_id)
        # Spare promotion: backfill active capacity from the spare pool.
        try:
            spares = self.scheduler.spare_slaves()
            need_backfill = was_master or not self.scheduler.active_slaves()
        except NodeUnavailable:
            timeline.migration_done = self.sim.now()
            return
        if spares and need_backfill:
            spare_node = self.nodes[spares[0].node_id]
            if not spare_node.subscribed:
                # Stale backup: catch it up via data migration first.
                yield from self._timed_migration(spare_node, timeline)
            self._spare_ids.discard(spare_node.node_id)
            for agent in self._alive_scheduler_agents():
                if spare_node.node_id in agent.scheduler.slaves:
                    agent.scheduler.promote_spare(spare_node.node_id)
        timeline.migration_done = self.sim.now()

    def _promotion_job(self, node: InMemoryDbNode, confirmed, owned_tables=None):
        yield from node.cpu.acquire()
        try:
            pending = node.slave.pending_op_count()
            slave = node.slave
            read_concurrency = self.cost.config.read_concurrency
            node.master = promote_slave_to_master(
                slave, confirmed, read_concurrency=read_concurrency
            )
            if owned_tables is not None:
                # Multi-master: keep a slave role for non-owned classes.
                from repro.core.dual import DualController

                node.engine.set_controller(
                    DualController(set(owned_tables), slave, read_concurrency=read_concurrency)
                )
                node.slave = slave
            else:
                node.slave = None
            # Applying the buffered ops costs CPU proportional to their count.
            yield self.sim.timeout(self.cost.apply_cpu(pending))
        finally:
            node.cpu.release()

    def _is_spare(self, node_id: str) -> bool:
        state = self.scheduler.slaves.get(node_id)
        return bool(state and state.spare)

    def _timed_migration(
        self, node: InMemoryDbNode, timeline: FailoverTimeline, wanted=None
    ):
        """Version-aware page transfer into ``node`` with time charged.

        ``wanted`` overrides the page versions the joiner advertises to its
        support (see :func:`integrate_stale_node`) — the restart-from-disk
        path passes WAL-coverage versions so only the downtime gap moves.
        """
        cfg = self.cost.config
        joiner_interest = self.interest.get(node.node_id)
        candidates = [
            n
            for n in self.nodes.values()
            if n.alive and n.slave is not None and n.subscribed and n.node_id != node.node_id
        ]
        if self.interest.partial_active:
            # Partial replication: only a support whose interest covers the
            # joiner's can serve every page (and in-flight frame) the
            # joiner subscribes to.  With none, fall through to the
            # degenerate master-source branch — masters hold everything.
            candidates = [
                n
                for n in candidates
                if self.interest.get(n.node_id).superset_of(joiner_interest)
            ]
        if self.straggler_active and candidates:
            # Quorum acks: a commit confirms with k slave acks, so an
            # arbitrary subscribed slave may still be missing confirmed
            # write-sets (they are in flight / being retransmitted to it).
            # Channels deliver in global enqueue order, so per-slave
            # histories are nested prefixes and the slave with the highest
            # received total provably holds every confirmed commit —
            # migrate from it, or the joiner would permanently miss the
            # gap (it subscribed after those broadcasts went out).
            support_node = max(
                (n for n in candidates if not n.slave.catching_up),
                key=lambda n: (n.slave.received_versions.total(), n.node_id),
                default=None,
            )
        else:
            # All-slave acks: every subscribed slave has every confirmed
            # write-set, so the first candidate is as good as any (and
            # keeps the default path's schedule byte-stable).
            support_node = candidates[0] if candidates else None
        if support_node is None:
            master = next(n for n in self.nodes.values() if n.alive and n.master is not None)
            # Degenerate single-survivor case: migrate from the master's
            # engine state via a temporary slave view.
            node.subscribed = True
            node.slave.catching_up = True
            images = [
                page.snapshot()
                for page in master.engine.store.all_pages()
                if joiner_interest.covers_table(page.page_id.table)
            ]
            from repro.storage.checkpoint import PageImage

            for snap in images:
                node.slave.receive_page(PageImage(snap.page_id, snap.version, snap))
            node.slave.finish_catchup()
            nbytes = sum(i.byte_size() for i in images)
            yield self.sim.timeout(cfg.net_delay(nbytes))
            timeline.migration_pages += len(images)
            timeline.migration_bytes += nbytes
            return
        node.subscribed = True
        node.slave.catching_up = True
        replay_ops = 0
        replay_bytes = 0
        if (self.straggler_active or self.durability_active) and self._replay_log:
            # Gap replay: write-sets broadcast while this node was demoted
            # (or down, under durable restart) never entered its channel,
            # and the support may not hold them
            # all either (under quorum acks a commit confirms before every
            # slave has its data).  Re-deliver them in stream order; the
            # duplicate filter skips what the node already has, and any op
            # the support's page images do cover is pruned when those
            # images land (receive_page keeps only ops above each image's
            # version).
            replica = node.slave
            for write_set in sorted(
                self._replay_log.values(), key=lambda w: (w.master_id, w.seq)
            ):
                # The replay log holds full frames; a partial joiner is
                # replayed only the restriction to its own interest — the
                # same frames the live broadcast would have sent it, so
                # the dedup keys line up.  (Full interest — the default —
                # returns the original object untouched.)
                write_set = joiner_interest.restrict(write_set)
                if write_set is None:
                    continue
                # Cheap pre-filters keep repeat rejoins from re-shipping
                # the whole log: a frame the node has seen, or whose
                # versions its (gap-free, by induction) state already
                # covers, needs no transmission at all.
                if write_set.dedup_key() in replica._seen_write_sets or all(
                    version <= replica.received_versions.get(table)
                    for table, version in write_set.versions.items()
                ):
                    continue
                # Each replayed frame is a real (re-)transmission: count it
                # sent so counter conservation (sent == received + dups +
                # drops) keeps holding.
                node.counters.add("net.write_sets_sent")
                before = replica.pending_ops
                replica.receive(write_set)
                accepted = replica.pending_ops - before
                if accepted > 0:
                    replay_ops += accepted
                    replay_bytes += write_set.byte_size()
            if replay_ops:
                self.counters.add("slave.replay_write_sets")
                self.counters.add("slave.replay_ops", replay_ops)
        # In-flight catch-up: a write-set broadcast moments before this node
        # subscribed may still be in flight to the support slave (a lossy
        # link retransmits for seconds).  Such a frame is in neither the
        # support's migration snapshot (not received there yet) nor this
        # node's subscription stream (the broadcast enumerated only
        # then-subscribed slaves) — without re-delivery the joiner goes
        # active with a silent hole no later write-set fills, because the
        # per-table versions advance right past it.  Frames the support has
        # in fact received (ack lost / in the ack delay window) are covered
        # by its page images and pruned by receive_page.
        replica = node.slave
        for (_src, target_id), channel in self._channels.items():
            if target_id != support_node.node_id:
                continue
            for write_set in channel.unacked_write_sets():
                # In-flight frames were restricted for the *support*; a
                # partial joiner takes only its own restriction of them.
                write_set = joiner_interest.restrict(write_set)
                if write_set is None:
                    continue
                if write_set.dedup_key() in replica._seen_write_sets:
                    continue
                # A real transmission: count the send so counter
                # conservation (sent == received + dups + drops) holds.
                node.counters.add("net.write_sets_sent")
                replica.receive(write_set)
                self.counters.add("slave.inflight_replayed")
        page_filter = (
            None
            if joiner_interest.is_full
            else (lambda image: joiner_interest.covers_table(image.page_id.table))
        )
        stats = integrate_stale_node(
            node.slave, support_node.slave, wanted=wanted, page_filter=page_filter
        )
        work = stats.pages_sent + stats.ops_index_applied + replay_ops
        yield support_node.job(self._migration_cpu(support_node, work), "migrate-src")
        # Only the page images and replayed gap ops cross the wire here;
        # the index-applied ops (also in stats.bytes_sent) already
        # traversed the replication stream during catch-up buffering.
        yield self.sim.timeout(cfg.net_delay(stats.bytes_page_images + replay_bytes))
        yield node.job(self._migration_cpu(node, work), "migrate-dst")
        # Migrated pages were just written into memory: they are resident.
        node.cache.warm(stats.page_ids)
        timeline.migration_pages += stats.pages_sent
        timeline.migration_bytes += stats.bytes_page_images

    # -- reintegration (timed reboot + data migration) ---------------------------------------------
    def reintegrate(self, node_id: str, support_id: Optional[str] = None, spare: bool = False):
        """Spawn the reintegration process; returns it (wait or observe)."""
        return self.sim.spawn(self._reintegrate(node_id, support_id, spare), name="reintegrate")

    def _reintegrate(self, node_id: str, support_id: Optional[str], spare: bool):
        node = self.nodes[node_id]
        timeline = FailoverTimeline(
            failure_time=node.failed_at or self.sim.now(), detection_time=self.sim.now()
        )
        node.restart_resources()
        node.slowdown = 1.0
        node.make_slave()
        node.subscribed = True
        # A node that crashed while demoted re-enters through the normal
        # reintegration path: close out its demotion record.
        stale_span = self._demoted.pop(node_id, None)
        if stale_span is not None:
            stale_span.finish(status="crashed")
        for agent in self._alive_scheduler_agents():
            agent.scheduler.set_demoted(node_id, False)
        self._handled_failures.discard(node_id)
        # Reset the failure detector's miss count too, or a later second
        # failure of this node would be detected off stale counts.
        self._missed.pop(node_id, None)
        # Reboot: restore from the local fuzzy checkpoint (sequential read),
        # with a cold OS page cache.
        restore_from_checkpoint(node.slave, node.stable)
        node.cache.invalidate_all()
        restore_bytes = sum(
            image.page.byte_size() for image in node.stable._images.values()
        )
        yield self.sim.timeout(self.cost.sequential_disk(restore_bytes))
        timeline.recovery_done = self.sim.now()
        yield from self._timed_migration(node, timeline)
        timeline.migration_done = self.sim.now()
        self.timelines.append(timeline)
        if spare:
            self._spare_ids.add(node_id)
        for agent in self._alive_scheduler_agents():
            agent.scheduler.add_slave(node_id, spare=spare)
        self._wake_update_waiters()
        return timeline

    def _migration_cpu(self, node: InMemoryDbNode, work_units: int):
        yield from node.cpu.acquire()
        try:
            yield self.sim.timeout(self.cost.config.cpu_per_op_apply * work_units)
        finally:
            node.cpu.release()

    # -- restart from own disk (durable-WAL recovery) ---------------------------------------------
    def restart_node(self, node_id: str):
        """Spawn restart-from-own-disk recovery; returns the process."""
        return self.sim.spawn(self._restart_from_disk(node_id), name="restart")

    def restart_node_at(self, node_id: str, when: float) -> None:
        self.sim.schedule(max(0.0, when - self.sim.now()), self.restart_node, node_id)

    def _restart_from_disk(self, node_id: str):
        """Restart a crashed node from its own checkpoint + WAL suffix.

        Contrast with :meth:`_reintegrate`: the checkpoint restore is
        followed by a redo of the fsynced WAL suffix (torn tail truncated
        at the first bad checksum, ghosts filtered against the scheduler's
        confirmed history), so the subsequent migration only moves the
        pages this node actually missed while down — gap replay plus a far
        smaller page transfer instead of every page modified since the
        last checkpoint.
        """
        node = self.nodes[node_id]
        if node.alive:
            return None  # raced with reintegrate / double restart
        if not node.durable:
            # Without a durable WAL the local state cannot be trusted past
            # the checkpoint; fall back to the classic reboot path.
            result = yield from self._reintegrate(node_id, None, False)
            return result
        crash_time = node.failed_at or self.sim.now()
        crash_confirmed = self._crash_confirmed.pop(node_id, None)
        timeline = FailoverTimeline(
            failure_time=crash_time, detection_time=self.sim.now()
        )
        node.restart_resources()
        node.slowdown = 1.0
        node.make_slave()
        # Subscription starts with the migration phase, not here: local
        # redo must finish (and unconfirmed records be discarded) before
        # live broadcasts may buffer on this replica.
        node.subscribed = False
        stale_span = self._demoted.pop(node_id, None)
        if stale_span is not None:
            stale_span.finish(status="crashed")
        for agent in self._alive_scheduler_agents():
            agent.scheduler.set_demoted(node_id, False)
        self._handled_failures.discard(node_id)
        self._missed.pop(node_id, None)
        # Local phase: checksum-validated checkpoint restore (previous-
        # generation fallback per page) + WAL scan with torn-tail
        # truncation + redo of the confirmed suffix into catch-up buffers.
        confirmed_ids = {(m, t) for m, t, _versions in self.commit_log}
        recovery = recover_from_local_disk(
            node.slave,
            node.stable,
            node.wal,
            is_confirmed=lambda record: (record.master_id, record.txn_id)
            in confirmed_ids,
        )
        node.cache.invalidate_all()
        yield self.sim.timeout(
            self.cost.sequential_disk(recovery.checkpoint_bytes + recovery.wal_bytes)
        )
        if recovery.ops_buffered:
            yield node.job(self._migration_cpu(node, recovery.ops_buffered), "wal-redo")
        # Belt and braces: nothing above the cluster-confirmed vector may
        # survive the restart (the ghost filter above already skipped
        # unconfirmed records; this enforces the invariant structurally).
        ghost_ops = node.slave.discard_above(self._confirmed_vector())
        if ghost_ops:
            node.counters.add("wal.ghost_ops_discarded", ghost_ops)
        # A checkpoint page *above* the crash-time confirmed vector may
        # hold content that was applied but never acknowledged — and after
        # a failover those version numbers can belong to different
        # transactions, so a version comparison against the support would
        # wrongly skip the page.  Drop such pages; migration re-fetches.
        if crash_confirmed is not None:
            store = node.slave.engine.store
            for page in store.all_pages():
                if page.version > crash_confirmed.get(page.page_id.table):
                    page.load_from(Page(page.page_id, page.capacity))
                    queue = node.slave.pending.pop(page.page_id, None)
                    if queue:
                        node.slave.pending_ops -= len(queue)
                    node.counters.add("wal.suspect_pages_dropped")
        # Advertise WAL coverage (applied pages + contiguous redo buffers)
        # so the support ships only the pages touched while this node was
        # down — the gap, not everything since the last checkpoint.
        wanted = node.slave.page_versions()
        timeline.recovery_done = self.sim.now()
        yield from self._timed_migration(node, timeline, wanted=wanted)
        timeline.migration_done = self.sim.now()
        self.timelines.append(timeline)
        node.counters.add("disk.restart_recoveries")
        self._restart_audits.append(
            (
                node_id,
                crash_time,
                dict(crash_confirmed.items()) if crash_confirmed is not None else {},
            )
        )
        for agent in self._alive_scheduler_agents():
            agent.scheduler.add_slave(node_id, spare=False)
        self._wake_update_waiters()
        return timeline

    # -- background daemons -------------------------------------------------------------------------
    def _checkpoint_daemon(self, period: float):
        while True:
            yield self.sim.timeout(period)
            for node in self.nodes.values():
                has_role = node.slave is not None or (
                    # Durable mode checkpoints masters too: their WALs hold
                    # their own pre-commit records and need the checkpoint
                    # floor to advance for truncation.
                    self.durability_active and node.master is not None
                )
                if node.alive and has_role:
                    node.checkpoint()

    def _pageid_shipper(self, period: float):
        """Ship hot page ids from an active slave to every spare (Fig. 9)."""
        cfg = self.cost.config
        while True:
            yield self.sim.timeout(period)
            actives = [
                self.nodes[s.node_id]
                for s in self.scheduler.active_slaves()
                if self.nodes[s.node_id].alive
            ]
            spares = [
                self.nodes[s.node_id]
                for s in self.scheduler.spare_slaves()
                if self.nodes[s.node_id].alive
            ]
            if not actives or not spares:
                continue
            source = actives[0]
            ids = source.cache.hottest(source.cache.resident_count())
            for spare in spares:
                yield self.sim.timeout(cfg.net_delay(8 * len(ids)))
                if spare.alive:
                    spare.cache.warm(reversed(ids))

    # -- client driving --------------------------------------------------------------------------------
    def start_browsers(
        self,
        count: int,
        mix: Mix,
        scale: TpcwScale,
        sequences: Optional[SharedSequences] = None,
        think_time_mean: float = 7.0,
        max_retries: int = 8,
    ) -> None:
        sequences = sequences if sequences is not None else SharedSequences(scale)
        self._browser_profile = (mix, scale, sequences, think_time_mean, max_retries)
        base = len(self._browsers)
        for i in range(count):
            browser = EmulatedBrowser(
                browser_id=base + i,
                mix=mix,
                scale=scale,
                sequences=sequences,
                rng=self.rng.child(f"eb{base + i}"),
                now=self.sim.now,
                think_time_mean=think_time_mean,
            )
            self._browsers.append(browser)
            self.sim.spawn(self._browser_loop(browser, max_retries), name=f"eb{base + i}")

    def flash_crowd(self, count: int) -> None:
        """Add ``count`` browsers mid-run with the last started profile.

        Chaos hook for flash write load: the extra browsers share the
        original pool's mix, scale and shared sequences, and exit with
        everyone else at :meth:`stop_browsers`.
        """
        if self._browser_profile is None:
            raise RuntimeError("flash_crowd before start_browsers")
        mix, scale, sequences, think, retries = self._browser_profile
        self.start_browsers(
            count, mix, scale, sequences=sequences,
            think_time_mean=think, max_retries=retries,
        )

    def stop_browsers(self) -> None:
        """Ask every browser loop to exit at its next interaction boundary.

        Used by the chaos harness to quiesce the workload before running
        invariant checks: in-flight interactions finish (or exhaust their
        retries), then the cluster drains to a stable state.
        """
        self._stop_browsers = True

    def _browser_loop(self, browser: EmulatedBrowser, max_retries: int):
        cfg = self.cost.config
        while not self._stop_browsers:
            name = browser.pick()
            start = self.sim.now()
            # Latency is measured from ``start`` — the moment this browser
            # *wanted* the interaction — across all retries.  Closed-loop
            # clients still under-report overload (they stop offering load
            # while stalled: coordinated omission); the open-loop
            # :class:`~repro.traffic.engine.OpenLoopEngine` measures from
            # the scheduled arrival instead.
            deadline = start + cfg.request_deadline if cfg.request_deadline > 0 else None
            attempts = 0
            while True:
                conn = SimConnection(self)
                conn.deadline = deadline
                gen = browser.start(name, conn)
                try:
                    yield from self._drive(gen, conn)
                    self.metrics.record_completion(self.sim.now(), self.sim.now() - start)
                    break
                except (TransactionAborted, NodeUnavailable) as exc:
                    gen.close()
                    conn.cleanup()
                    reason = getattr(exc, "reason", "node-failure")
                    self.metrics.record_retry(reason)
                    attempts += 1
                    if reason == "deadline":
                        # The whole request is past its deadline; retrying
                        # the doomed interaction would only amplify load.
                        self.metrics.failed += 1
                        break
                    if attempts > max_retries:
                        self.metrics.failed += 1
                        break
                    if self.retry_budget is not None and not self.retry_budget.try_spend(
                        self.sim.now()
                    ):
                        # Budget drained (e.g. a shed storm of
                        # ``sched.shed_requests`` rejections): give up
                        # instead of retrying in lock-step with every other
                        # browser — the retry storm is what turns a burst
                        # into a metastable outage.
                        self.counters.add("bench.retries_exhausted")
                        self.metrics.failed += 1
                        break
                    # Jittered exponential backoff from the browser's own
                    # stream: a mass failure does not resynchronise every
                    # browser into retry waves hitting the recovering node.
                    yield self.sim.timeout(
                        browser.retry_backoff(
                            attempts, cfg.browser_backoff_base, cfg.browser_backoff_cap
                        )
                    )
            yield self.sim.timeout(browser.think_time())

    def _drive(self, gen, conn: SimConnection):
        value = None
        while True:
            try:
                effect = gen.send(value)
            except StopIteration as stop:
                return stop.value
            value = yield effect

    # -- experiment control ------------------------------------------------------------------------------
    def run(self, until: float) -> float:
        return self.sim.run(until=until)

    def abort_counts(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for node in self.nodes.values():
            for key, value in node.counters.snapshot().items():
                if key.startswith("engine.aborts.") or key == "slave.version_aborts":
                    out[key] = out.get(key, 0) + value
        return out
