"""Simulated cluster nodes: CPUs, caches, disks, failure semantics.

Every node owns a capacity-``cores`` CPU resource; statement execution runs
the *real* engine code and then holds the CPU for the service time the cost
model derives from the instrumented work.  In-memory nodes additionally pay
page-fault time for cache misses; on-disk nodes serialise their I/O through
a capacity-1 disk resource.

Failure injection marks the node dead, interrupts its in-flight jobs
(delivered to clients as :class:`NodeUnavailable`) and — for in-memory
nodes — models memory loss at reintegration time via the checkpoint-restore
path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.counters import Counters
from repro.common.errors import NodeUnavailable, TransactionAborted
from repro.cluster.costs import CostModel
from repro.core.master import MasterReplica
from repro.core.slave import SlaveReplica
from repro.core.writeset import WriteSet
from repro.disk.database import DiskDatabase
from repro.disk.wal import WriteAheadLog
from repro.engine.engine import HeapEngine, LockWait, make_update_controller
from repro.engine.schema import TableSchema
from repro.obs import NULL_SPAN, NULL_TRACER, Tracer
from repro.sim.kernel import Interrupt, Process, Simulator
from repro.sim.resources import Resource
from repro.sql.executor import SqlExecutor
from repro.storage.cache import PageCache
from repro.storage.checkpoint import FuzzyCheckpointer, StableStore


class SimNode:
    """Base: CPU resource, liveness, tracked jobs."""

    def __init__(self, sim: Simulator, node_id: str, cost: CostModel) -> None:
        self.sim = sim
        self.node_id = node_id
        self.cost = cost
        self.cpu = Resource(sim, cost.config.cores_per_node)
        self.alive = True
        #: Service-time inflation factor (chaos ``slowdown`` fault).  1.0
        #: is a healthy node; a straggler's statement and replication
        #: charges are multiplied by this, which keeps heartbeats alive —
        #: a gray failure, not a fail-stop one.
        self.slowdown = 1.0
        self._jobs: Set[Process] = set()

    def job(self, gen, name: str = "job") -> Process:
        """Spawn a tracked job; interrupts surface as NodeUnavailable."""
        if not self.alive:
            raise NodeUnavailable(f"node {self.node_id} is down")
        process = self.sim.spawn(self._guard(gen), name=f"{self.node_id}/{name}")
        self._jobs.add(process)
        process.add_callback(lambda _e: self._jobs.discard(process))
        return process

    def _guard(self, gen):
        try:
            result = yield from gen
            return result
        except Interrupt:
            raise NodeUnavailable(f"node {self.node_id} failed mid-request")

    def fail(self) -> None:
        """Fail-stop: kill in-flight work, stop accepting jobs."""
        self.alive = False
        for process in list(self._jobs):
            process.interrupt("node-failure")
        self._jobs.clear()

    def restart_resources(self) -> None:
        """Fresh CPU after a reboot (old grants died with the node)."""
        self.cpu = Resource(self.sim, self.cost.config.cores_per_node)
        self.alive = True


class InMemoryDbNode(SimNode):
    """One replica of the in-memory DMV tier."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        cost: CostModel,
        schemas: Sequence[TableSchema],
        cache_pages: int = 1 << 30,
        rows_per_page: int = 64,
        tracer: Tracer = NULL_TRACER,
        durable: bool = False,
    ) -> None:
        super().__init__(sim, node_id, cost)
        self.tracer = tracer
        self.counters = Counters()
        self.cache = PageCache(cache_pages, self.counters)
        self.engine = HeapEngine(
            counters=self.counters, cache=self.cache, name=node_id,
            rows_per_page=rows_per_page,
        )
        for schema in schemas:
            self.engine.create_table(schema)
        self.sql = SqlExecutor(self.engine, now=sim.now)
        self.master: Optional[MasterReplica] = None
        self.slave: Optional[SlaveReplica] = None
        self.stable = StableStore(self.counters)
        self.checkpointer = FuzzyCheckpointer(self.engine.store, self.stable)
        #: Durable-WAL mode: write-sets this node broadcasts or receives are
        #: appended to a local content-carrying redo log and forced before
        #: the ack, enabling restart-from-own-disk recovery.  The log object
        #: always exists (it moves no counters until used) so fault hooks
        #: and recovery helpers need no None checks.
        self.durable = durable
        self.wal = WriteAheadLog(self.counters, tracer=tracer)
        #: Subscribed nodes receive the masters' write-set broadcasts; a
        #: *stale backup* (Figure 5) is deliberately unsubscribed.
        self.subscribed = True
        #: Set by the cluster's failure injection (for timeline reporting).
        self.failed_at: Optional[float] = None

    # -- role setup -------------------------------------------------------------------
    def make_master(self, read_concurrency: str = "occ") -> None:
        self.engine.set_controller(make_update_controller(read_concurrency))
        self.master = MasterReplica(self.node_id, engine=self.engine, counters=self.counters)
        self.slave = None

    def make_slave(self) -> None:
        self.slave = SlaveReplica(self.node_id, engine=self.engine, counters=self.counters)
        self.master = None

    def make_dual_master(self, owned_tables, read_concurrency: str = "occ") -> None:
        """Multi-master role: master for ``owned_tables``, slave for the rest."""
        from repro.core.dual import DualController

        self.slave = SlaveReplica(self.node_id, engine=self.engine, counters=self.counters)
        self.engine.set_controller(
            DualController(set(owned_tables), self.slave, read_concurrency=read_concurrency)
        )
        self.master = MasterReplica(self.node_id, engine=self.engine, counters=self.counters)

    # -- statement execution (job generator) -----------------------------------------------
    def exec_statement(self, txn, sql: str, params: Sequence):
        """Execute one statement: real work, then virtual service time.

        Lock waits release the CPU, wait for the grant and retry the
        statement from its savepoint — the blocking the paper's master
        experiences under the ordering mix.

        When the transaction carries a trace root (``txn.obs_span``), every
        attempt gets its own ``execute`` span; the root is swapped to the
        attempt span for the duration of the engine call so ``apply`` spans
        raised by lazy version materialisation nest under the statement
        that triggered them.
        """
        root = getattr(txn, "obs_span", NULL_SPAN)
        attempt = 0
        while True:
            if not txn.active:
                # Node-side reconfiguration (e.g. promotion) rolled this
                # transaction back between statements/retries.
                raise TransactionAborted(
                    f"txn {txn.txn_id} aborted by reconfiguration", reason="node-failure"
                )
            yield from self.cpu.acquire()
            holding = True
            span = NULL_SPAN
            if root.recording:
                span = root.child(
                    "execute",
                    node=self.node_id,
                    verb=sql.split(None, 1)[0].upper() if sql else "",
                    attempt=attempt,
                )
            attempt += 1
            try:
                snapshot = self.counters.snapshot()
                savepoint = txn.savepoint()
                try:
                    if span.recording:
                        txn.obs_span = span
                    try:
                        result = self.sql.execute(txn, sql, tuple(params))
                    finally:
                        if span.recording:
                            txn.obs_span = root
                except LockWait as wait:
                    self.engine.rollback_to(txn, savepoint)
                    delta = self.counters.delta_since(snapshot)
                    yield self.sim.timeout(self.cost.statement_cpu(delta))
                    span.finish(status="lock-wait")
                    holding = False
                    self.cpu.release()
                    granted = self.sim.event()
                    wait.request.on_grant(
                        lambda _r: None if granted.triggered else granted.succeed(None)
                    )
                    yield granted
                    continue
                delta = self.counters.delta_since(snapshot)
                service = self.cost.statement_cpu(delta) + self.cost.fault_time(delta)
                yield self.sim.timeout(service * self.slowdown)
                span.finish(status="ok")
                return result
            finally:
                if holding:
                    self.cpu.release()
                if not span.closed:
                    span.finish(status="interrupted")

    def deliver_write_set(self, write_set: WriteSet) -> str:
        """Synchronous receive bookkeeping: returns ``ok``/``dup``/``dead``.

        Split from the timed job so the replication channel can account the
        outcome exactly even if the node dies while the receive CPU charge
        is still elapsing: once this returns ``ok`` the write-set *is*
        buffered (and deduplicated), whatever happens to the ack.
        """
        if not self.alive or self.slave is None:
            return "dead"
        if self.slave.is_duplicate(write_set):
            self.counters.add("net.dups_ignored")
            return "dup"
        self.slave.receive(write_set)
        self.log_write_set(write_set)
        return "ok"

    def log_write_set(self, write_set: WriteSet) -> None:
        """Durable mode: append one write-set to the local WAL and force it.

        No-op unless the node is durable — the legacy tier must move no
        WAL counters.  Dup-filtered deliveries never reach this point, so
        each write-set is logged at most once per node.
        """
        if not self.durable:
            return
        self.wal.append_commit(
            write_set.txn_id,
            write_set.ops,
            versions=write_set.versions,
            master_id=write_set.master_id,
            seq=write_set.seq,
        )
        self.wal.fsync()

    def crash_durable_state(self) -> list:
        """Apply the WAL crash loss model; returns the lost records."""
        if not self.durable:
            return []
        return self.wal.crash()

    def receive_cost(self, op_count: int):
        """The replication thread's CPU charge for one received write-set."""
        service = self.cost.receive_cpu(op_count) * self.slowdown
        if self.durable:
            service += self.cost.config.wal_fsync_time
        yield self.sim.timeout(service)

    def apply_cost(self, op_count: int):
        """CPU charge for eagerly applying buffered ops (forced drain)."""
        yield self.sim.timeout(self.cost.apply_cpu(op_count) * self.slowdown)

    def receive_write_set(self, write_set: WriteSet):
        """Eager receive path.

        Runs on the replication thread, which interleaves with query
        execution rather than queueing behind whole statements — so the
        receive cost is charged as elapsed time without occupying a query
        core.  (Acks must return promptly or every master commit would
        stall behind the slowest slave's longest-running query.)
        """
        self.deliver_write_set(write_set)
        yield from self.receive_cost(len(write_set.ops))

    def touch_pages_job(self, page_ids):
        """Page-id warm-up: touch shipped pages (fault them in)."""
        yield from self.cpu.acquire()
        try:
            new = self.cache.warm(page_ids)
            # Faulting the pages in costs page-in time, but off the critical
            # path of any request; charge it on the CPU at full rate.
            yield self.sim.timeout(new * self.cost.config.page_fault_cost)
            return new
        finally:
            self.cpu.release()

    def fail(self) -> None:
        super().fail()
        # Memory is lost with the node; rolling in-flight transactions back
        # keeps the (reused) Python objects consistent for reintegration.
        self.engine.abort_all_active(reason="node-failure")

    # -- maintenance ----------------------------------------------------------------------
    def checkpoint(self) -> int:
        with self.tracer.span("flush", node=self.node_id, kind="checkpoint") as span:
            pages = self.checkpointer.full_checkpoint(self.engine.page_is_dirty)
            span.annotate(pages=pages)
        if self.durable and len(self.wal):
            self.wal.truncate_for_checkpoint(self.checkpoint_floor())
        return pages

    def checkpoint_floor(self) -> Dict[str, int]:
        """Per-table version the checkpoint provably covers for every page.

        A WAL record at ``{table: v}`` is redundant only if *every* page it
        might touch is checkpointed at >= v, so the floor is the minimum
        image version per table — and 0 (covering nothing) for any table
        with a live page that has no checkpoint image at all.
        """
        floor: Dict[str, int] = {}
        for page_id, version in self.stable.version_map().items():
            current = floor.get(page_id.table)
            floor[page_id.table] = version if current is None else min(current, version)
        for page in self.engine.store.all_pages():
            if self.stable.load(page.page_id) is None:
                floor[page.page_id.table] = 0
        return floor

    def warm_fraction(self) -> float:
        resident = self.cache.resident_count()
        total = max(1, self.engine.store.page_count())
        return min(1.0, resident / total)


class DiskDbNode(SimNode):
    """One replica of the on-disk (InnoDB stand-in) tier."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        cost: CostModel,
        schemas: Sequence[TableSchema],
        pool_pages: int = 2048,
        rows_per_page: int = 64,
    ) -> None:
        super().__init__(sim, node_id, cost)
        self.db = DiskDatabase(
            node_id, pool_pages=pool_pages, disk=cost.config.disk, now=sim.now,
            rows_per_page=rows_per_page,
        )
        for schema in schemas:
            self.db.create_table(schema)
        self.counters = self.db.counters
        self.disk = Resource(sim, 1)
        #: Log replays (periodic refresh, failover catch-up) must not
        #: interleave or entries would apply out of commit order.
        self.replay_mutex = Resource(sim, 1)

    def fail(self) -> None:
        super().fail()
        self.db.engine.abort_all_active(reason="node-failure")

    def restart_resources(self) -> None:
        super().restart_resources()
        self.disk = Resource(self.sim, 1)

    def exec_statement(self, txn, sql: str, params: Sequence):
        """CPU work, then any implied random I/O through the disk."""
        while True:
            if not txn.active:
                raise TransactionAborted(
                    f"txn {txn.txn_id} aborted by reconfiguration", reason="node-failure"
                )
            yield from self.cpu.acquire()
            holding = True
            try:
                snapshot = self.counters.snapshot()
                savepoint = txn.savepoint()
                try:
                    result = self.db.sql.execute(txn, sql, tuple(params))
                except LockWait as wait:
                    self.db.engine.rollback_to(txn, savepoint)
                    delta = self.counters.delta_since(snapshot)
                    yield self.sim.timeout(self.cost.statement_cpu(delta))
                    holding = False
                    self.cpu.release()
                    granted = self.sim.event()
                    wait.request.on_grant(
                        lambda _r: None if granted.triggered else granted.succeed(None)
                    )
                    yield granted
                    continue
                delta = self.counters.delta_since(snapshot)
                yield self.sim.timeout(self.cost.statement_cpu(delta))
                holding = False
                self.cpu.release()
                io_time = self.cost.disk_time(delta)
                if io_time > 0:
                    yield from self.disk.acquire()
                    try:
                        yield self.sim.timeout(io_time)
                    finally:
                        self.disk.release()
                return result
            finally:
                if holding:
                    self.cpu.release()

    def commit_job(self, txn):
        """Commit: engine commit + WAL fsync through the disk resource."""
        yield from self.cpu.acquire()
        try:
            snapshot = self.counters.snapshot()
            self.db.commit(txn)
            delta = self.counters.delta_since(snapshot)
        finally:
            self.cpu.release()
        io_time = self.cost.disk_time(delta)
        if io_time > 0:
            yield from self.disk.acquire()
            try:
                yield self.sim.timeout(io_time)
            finally:
                self.disk.release()

    def replay_job(self, entries, log_bytes: int = 0):
        """Replay logged updates (backup refresh / failover DB-update)."""
        yield from self.replay_mutex.acquire()
        try:
            yield from self._replay_locked(entries, log_bytes)
        finally:
            self.replay_mutex.release()
        return len(entries)

    def _replay_locked(self, entries, log_bytes: int):
        if log_bytes:
            yield from self.disk.acquire()
            try:
                yield self.sim.timeout(self.cost.sequential_disk(log_bytes))
            finally:
                self.disk.release()
        for entry in entries:
            yield from self.cpu.acquire()
            try:
                snapshot = self.counters.snapshot()
                self.db.apply_logged_update(entry)
                delta = self.counters.delta_since(snapshot)
                yield self.sim.timeout(self.cost.statement_cpu(delta))
            finally:
                self.cpu.release()
            io_time = self.cost.disk_time(delta)
            if io_time > 0:
                yield from self.disk.acquire()
                try:
                    yield self.sim.timeout(io_time)
                finally:
                    self.disk.release()
