"""Laggard detection for straggler-tolerant replication.

The paper's failure model is strictly fail-stop: a node either answers
heartbeats or it is dead.  A *gray* failure — degraded disk, saturated
link, GC pauses — keeps heartbeats flowing while acks crawl, so under
all-slave acknowledgement one straggler stalls every commit in the
cluster.  The :class:`LaggardDetector` watches the replication channels
for two symptoms and flags the target for demotion to catch-up mode:

* **backlog**: the unacked outbox to one slave exceeds a high watermark
  of entries or bytes (the slave is not keeping up with the broadcast
  rate);
* **sustained ack-latency outlier**: the slave's ack-latency EWMA
  exceeds the fastest peer's EWMA by a configured factor for a
  configured number of consecutive samples (one slow ack is noise; a run
  of them is a straggler).  The fastest peer is the baseline — a
  cluster-wide average would be contaminated by the straggler's own
  samples and could mask it entirely.

The detector is pure bookkeeping — no events, no RNG, no counters — so
instantiating it never perturbs a seeded run; only the cluster's
*reaction* to a verdict (demotion) touches the kernel, and that is gated
on a non-default ack policy.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.costs import CostConfig


class AckLatencyEwma:
    """Exponentially-weighted moving average of ack latencies."""

    __slots__ = ("alpha", "value", "samples")

    def __init__(self, alpha: float = 0.2) -> None:
        self.alpha = alpha
        self.value = 0.0
        self.samples = 0

    def observe(self, latency: float) -> float:
        if self.samples == 0:
            self.value = latency
        else:
            self.value += self.alpha * (latency - self.value)
        self.samples += 1
        return self.value


class ClassWriteRates:
    """Per-conflict-class commit-rate EWMAs for the rebalancer.

    The rebalancer daemon samples per-class commit counts on a fixed
    period and feeds the rates through the same EWMA machinery the
    laggard detector uses for ack latencies.  Pure bookkeeping — no
    events, no RNG, no counters — so instantiating it never perturbs a
    seeded run; only the cluster's *reaction* (a re-home) touches the
    kernel, and that is gated on ``dynamic_classes``.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        self.alpha = alpha
        #: Per-class commits/second EWMA.
        self.per_class: Dict[int, AckLatencyEwma] = {}

    def observe_tick(self, counts: Dict[int, int], interval: float) -> None:
        """Fold one sampling period's per-class commit counts into the EWMAs."""
        if interval <= 0:
            return
        for class_id in set(self.per_class) | set(counts):
            ewma = self.per_class.get(class_id)
            if ewma is None:
                ewma = self.per_class[class_id] = AckLatencyEwma(self.alpha)
            ewma.observe(counts.get(class_id, 0) / interval)

    def rate(self, class_id: int) -> float:
        ewma = self.per_class.get(class_id)
        return ewma.value if ewma is not None else 0.0

    def forget(self, class_id: int) -> None:
        """Drop a class's history (after a merge retired its id)."""
        self.per_class.pop(class_id, None)

    def migrate(self, old_id: int, new_id: int, fraction: float = 0.5) -> None:
        """Seed a freshly split-off class with a share of its parent's rate.

        Without this the child would start at rate 0 and the parent keep
        the whole load for several sampling periods, re-triggering the
        imbalance check against stale numbers.
        """
        parent = self.per_class.get(old_id)
        if parent is None or parent.samples == 0:
            return
        child = self.per_class[new_id] = AckLatencyEwma(self.alpha)
        child.observe(parent.value * fraction)
        parent.value *= 1.0 - fraction


class LaggardDetector:
    """Per-target straggler verdicts from channel backlog + ack latency."""

    def __init__(self, config: CostConfig) -> None:
        self.config = config
        #: Per-slave ack-latency EWMA (one per broadcast target).
        self.per_target: Dict[str, AckLatencyEwma] = {}
        #: Cluster-wide ack-latency EWMA (the healthy baseline).
        self.global_ewma = AckLatencyEwma()
        #: Consecutive outlier samples per target.
        self.outlier_streak: Dict[str, int] = {}

    def observe_ack(self, target_id: str, latency: float) -> None:
        """Record one acked send's enqueue-to-ack latency."""
        ewma = self.per_target.get(target_id)
        if ewma is None:
            ewma = self.per_target[target_id] = AckLatencyEwma()
        ewma.observe(latency)
        self.global_ewma.observe(latency)
        # Warm-up: with few samples the baseline is the target itself.
        if self.global_ewma.samples < 2 * self.config.laggard_sustain:
            self.outlier_streak[target_id] = 0
            return
        baseline = self._baseline(target_id)
        if baseline > 0 and ewma.value > self.config.laggard_ack_factor * baseline:
            self.outlier_streak[target_id] = self.outlier_streak.get(target_id, 0) + 1
        else:
            self.outlier_streak[target_id] = 0

    def _baseline(self, target_id: str) -> float:
        """Healthy-latency reference: the fastest *other* target's EWMA.

        At least one peer is healthy (demotion is vetoed for the last
        subscribed slave), and the fastest one cannot be the straggler.
        With no peer yet observed, fall back to the cluster-wide EWMA.
        """
        peers = [
            e.value
            for tid, e in self.per_target.items()
            if tid != target_id and e.samples > 0
        ]
        return min(peers) if peers else self.global_ewma.value

    def ack_latency_verdict(self, target_id: str) -> bool:
        """True when the target's outlier streak crossed the sustain bar."""
        return self.outlier_streak.get(target_id, 0) >= self.config.laggard_sustain

    def backlog_verdict(self, entries: int, nbytes: int) -> bool:
        """True when one channel's unacked backlog crossed a watermark."""
        cfg = self.config
        if cfg.laggard_backlog_entries and entries >= cfg.laggard_backlog_entries:
            return True
        return bool(cfg.laggard_backlog_bytes and nbytes >= cfg.laggard_backlog_bytes)

    def forget(self, target_id: str) -> None:
        """Reset one target's history (after demotion or rejoin)."""
        self.per_target.pop(target_id, None)
        self.outlier_streak.pop(target_id, None)
