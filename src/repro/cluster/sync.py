"""Embedded synchronous DMV cluster — the library's front door.

Everything runs in-process with replication performed inline at commit
time: a faithful, timing-free execution of the protocol.  Use it to embed
the system, to prototype workloads, and to drive the TPC-W interactions
without the simulator::

    cluster = SyncDmvCluster(schemas=TPCW_SCHEMAS, num_slaves=4)
    cluster.load(TpcwDataGenerator(TpcwScale(num_items=100)))
    conn = cluster.connect()
    result = run_sync(interactions.home(conn, ctx))
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.counters import Counters
from repro.common.errors import NodeUnavailable, TransactionAborted
from repro.common.rng import RngStream
from repro.common.versions import VersionVector
from repro.core.conflictclass import ConflictClassMap
from repro.core.dual import DualController
from repro.core.master import MasterReplica
from repro.core.slave import SlaveReplica
from repro.disk.database import DiskDatabase
from repro.engine.engine import HeapEngine, LockWait, make_update_controller
from repro.engine.schema import TableSchema
from repro.failover.recovery import (
    cleanup_after_master_failure,
    elect_new_master,
    promote_slave_to_master,
)
from repro.failover.reintegration import integrate_stale_node
from repro.scheduler.versionaware import VersionAwareScheduler
from repro.sql.executor import ResultSet, SqlExecutor
from repro.storage.checkpoint import FuzzyCheckpointer, StableStore
from repro.tpcw.connection import Connection, Immediate


class NodeHandle:
    """One in-memory replica: engine + optional master/slave roles."""

    def __init__(self, node_id: str, schemas: Sequence[TableSchema], now: Callable[[], float]) -> None:
        self.node_id = node_id
        self.counters = Counters()
        self.engine = HeapEngine(counters=self.counters, name=node_id)
        for schema in schemas:
            self.engine.create_table(schema)
        self.sql = SqlExecutor(self.engine, now=now)
        self.master: Optional[MasterReplica] = None
        self.slave: Optional[SlaveReplica] = None
        self.stable = StableStore(self.counters)
        self.checkpointer = FuzzyCheckpointer(self.engine.store, self.stable)
        self.alive = True

    def checkpoint(self) -> int:
        """Run one full fuzzy checkpoint (skipping uncommitted pages)."""
        return self.checkpointer.full_checkpoint(self.engine.page_is_dirty)


class SyncConnection(Connection):
    """A connection whose effects resolve immediately (see run_sync)."""

    def __init__(self, cluster: "SyncDmvCluster") -> None:
        self.cluster = cluster
        self._node: Optional[NodeHandle] = None
        self._txn = None
        self._is_update = False
        self._queries: List[Tuple[str, Tuple]] = []

    # -- effect-producing methods ----------------------------------------------------
    def begin_read(self, tables: Sequence[str]) -> Immediate:
        if self._txn is not None:
            raise RuntimeError("transaction already open on this connection")
        routed = self.cluster.scheduler.route_read(list(tables))
        node = self.cluster.node(routed.node_id)
        self._node = node
        self._is_update = False
        if node.slave is not None:
            self._txn = node.slave.begin_read_only(routed.tag)
        else:  # read allowed on a master outside its conflict classes
            self._txn = node.master.begin_read_only()
        return Immediate(None)

    def begin_update(self, tables: Sequence[str]) -> Immediate:
        if self._txn is not None:
            raise RuntimeError("transaction already open on this connection")
        master_id = self.cluster.scheduler.route_update(list(tables))
        node = self.cluster.node(master_id)
        self._node = node
        self._is_update = True
        self._queries = []
        self._txn = node.master.begin_update(write_tables=tables)
        return Immediate(None)

    def query(self, sql: str, params: Sequence = ()) -> Immediate:
        if self._txn is None:
            raise RuntimeError("no open transaction")
        try:
            result = self._node.sql.execute(self._txn, sql, tuple(params))
        except LockWait:
            # Synchronous mode cannot suspend: surface as a retriable abort.
            self._abort_silently()
            raise TransactionAborted(
                "lock conflict in embedded mode (another connection holds the page)",
                reason="lock-wait",
            )
        except TransactionAborted:
            self._abort_silently()
            raise
        if self._is_update and not sql.lstrip().lower().startswith("select"):
            self._queries.append((sql, tuple(params)))
        return Immediate(result)

    def commit(self) -> Immediate:
        if self._txn is None:
            raise RuntimeError("no open transaction")
        node, txn = self._node, self._txn
        self._node = self._txn = None
        if not self._is_update:
            node.engine.commit(txn)
            self.cluster.scheduler.note_read_done(node.node_id)
            return Immediate(None)
        write_set = node.master.pre_commit(txn)
        if write_set is not None:
            self.cluster.broadcast(write_set, exclude=node.node_id)
            self.cluster.scheduler.on_master_commit(
                node.node_id, write_set.versions, self._queries, txn.txn_id
            )
            node.master.finalize(txn)
        self._queries = []
        if write_set is not None:
            # Persistence is asynchronous in the paper: the commit response
            # returns once the queries are logged; disk replicas catch up
            # from the log and a transient failure there must never wedge
            # the in-memory tier.
            self.cluster.persist()
        return Immediate(None)

    def abort(self) -> Immediate:
        self._abort_silently()
        return Immediate(None)

    def _abort_silently(self) -> None:
        if self._txn is None:
            return
        node, txn = self._node, self._txn
        self._node = self._txn = None
        node.engine.abort(txn)
        if not self._is_update:
            self.cluster.scheduler.note_read_done(node.node_id)


class SyncDmvCluster:
    """Master + N slaves (+ spares) + scheduler + optional disk backends."""

    def __init__(
        self,
        schemas: Sequence[TableSchema],
        num_slaves: int = 2,
        num_spares: int = 0,
        conflict_map: Optional[ConflictClassMap] = None,
        multi_master: bool = False,
        num_disk_backends: int = 0,
        seed: int = 0,
        now: Optional[Callable[[], float]] = None,
        ack_policy: str = "all",
        quorum_k: int = 1,
        read_concurrency: str = "2pl",
    ) -> None:
        if ack_policy not in ("all", "quorum", "all-healthy"):
            raise ValueError(f"unknown ack policy {ack_policy!r}")
        #: Update-path concurrency control.  The synchronous trampoline has
        #: no statement-retry loop around pre-commit aborts, so the legacy
        #: blocking 2PL path stays the default here; the simulated cluster
        #: (where the perf matters) defaults to OCC via its cost config.
        self.read_concurrency = read_concurrency
        #: Pre-commit acknowledgement policy.  Embedded replication is
        #: inline (there is no ack to wait for), so the policy governs the
        #: *membership* semantics: under ``all`` a demoted slave still
        #: receives every write-set; under ``quorum``/``all-healthy`` a
        #: demoted slave is skipped entirely and must re-integrate via
        #: data migration (:meth:`rejoin_slave`).
        self.ack_policy = ack_policy
        self.quorum_k = max(1, quorum_k)
        self.counters = Counters()
        self._demoted: set = set()
        self.schemas = list(schemas)
        # Embedded clusters default to wall-clock time so date-ordered
        # application queries (e.g. "most recent order") behave naturally.
        import time

        self.now = now if now is not None else time.time
        self.nodes: Dict[str, NodeHandle] = {}
        table_names = [s.name for s in self.schemas]
        if conflict_map is None:
            conflict_map = ConflictClassMap.single_class(table_names)
        self.conflict_map = conflict_map
        num_masters = min(conflict_map.num_classes, 2) if multi_master else 1
        master_ids = [f"m{i}" for i in range(num_masters)]
        conflict_map.assign_masters(master_ids)
        self.scheduler = VersionAwareScheduler(
            "sched0", conflict_map, rng=RngStream(seed, "scheduler")
        )
        for master_id in master_ids:
            handle = NodeHandle(master_id, self.schemas, self.now)
            owned = {
                t for t in table_names
                if conflict_map.master_of_class(conflict_map.class_of(t)) == master_id
            }
            if multi_master and len(master_ids) > 1:
                slave = SlaveReplica(master_id, engine=handle.engine, counters=handle.counters)
                handle.engine.set_controller(
                    DualController(owned, slave, read_concurrency=read_concurrency)
                )
                handle.slave = slave
            else:
                handle.engine.set_controller(make_update_controller(read_concurrency))
            handle.master = MasterReplica(master_id, engine=handle.engine, counters=handle.counters)
            self.nodes[master_id] = handle
        for i in range(num_slaves):
            self._add_slave(f"s{i}", spare=False)
        for i in range(num_spares):
            self._add_slave(f"spare{i}", spare=True)
        self.disk_backends: List[DiskDatabase] = []
        for i in range(num_disk_backends):
            db = DiskDatabase(f"disk{i}", now=self.now)
            for schema in self.schemas:
                db.create_table(schema)
            self.disk_backends.append(db)

    def _add_slave(self, node_id: str, spare: bool) -> NodeHandle:
        handle = NodeHandle(node_id, self.schemas, self.now)
        handle.slave = SlaveReplica(node_id, engine=handle.engine, counters=handle.counters)
        self.nodes[node_id] = handle
        self.scheduler.add_slave(node_id, spare=spare)
        return handle

    # -- data loading -------------------------------------------------------------------
    def bulk_load(self, table: str, rows) -> int:
        rows = list(rows)
        count = 0
        for handle in self.nodes.values():
            count = handle.engine.bulk_load(table, rows)
        for db in self.disk_backends:
            db.bulk_load(table, rows)
        return count

    def load(self, datagen) -> Dict[str, int]:
        """Populate every replica identically from a data generator."""
        counts: Dict[str, int] = {}
        for table_rows in datagen_tables(datagen):
            table, rows = table_rows
            counts[table] = self.bulk_load(table, rows)
        return counts

    # -- connections ---------------------------------------------------------------------
    def connect(self) -> SyncConnection:
        return SyncConnection(self)

    def node(self, node_id: str) -> NodeHandle:
        handle = self.nodes.get(node_id)
        if handle is None or not handle.alive:
            raise NodeUnavailable(f"node {node_id} is unavailable")
        return handle

    # -- replication plumbing ---------------------------------------------------------------
    def broadcast(self, write_set, exclude: str) -> None:
        """Deliver one pre-commit write-set to every live slave.

        Embedded mode has no wire, but the accounting matches the simulated
        tier: one framed batch per slave per commit, with the (memoized)
        write-set size computed once for the whole broadcast rather than
        re-encoded per hop.
        """
        size = write_set.byte_size()
        saved = write_set.bytes_saved()
        for handle in self.nodes.values():
            if handle.node_id == exclude or not handle.alive or handle.slave is None:
                continue
            if handle.node_id in self._demoted:
                self.counters.add("net.acks_skipped_demoted")
                continue
            handle.slave.receive(write_set)
            handle.counters.add("net.batches")
            handle.counters.add("net.write_sets_sent")
            handle.counters.add("net.bytes_shipped", size)
            if saved:
                handle.counters.add("net.bytes_saved_delta", saved)

    def persist(self) -> None:
        """Drain the scheduler's query log onto the on-disk backends.

        Cursor-based and best-effort: a replica that cannot apply right now
        (e.g. a lock held by an embedding application) simply stays behind
        and catches up on the next drain — mirroring the paper's
        asynchronous persistence tier.
        """
        log = self.scheduler.query_log
        for db in self.disk_backends:
            for entry in log.pending_for(db.node_id):
                try:
                    db.apply_logged_update(entry)
                except (LockWait, TransactionAborted):
                    break
                log.advance(db.node_id, 1)

    # -- convenience one-shot helpers --------------------------------------------------------
    def run_read(self, sql: str, params: Sequence = (), tables: Sequence[str] = ()) -> ResultSet:
        conn = self.connect()
        conn.begin_read(list(tables) or [s.name for s in self.schemas])
        try:
            result = conn.query(sql, params).value
            conn.commit()
            return result
        except TransactionAborted:
            raise

    def run_update(self, statements: Sequence[Tuple[str, Sequence]], tables: Sequence[str]) -> None:
        conn = self.connect()
        conn.begin_update(list(tables))
        try:
            for sql, params in statements:
                conn.query(sql, params)
            conn.commit()
        except TransactionAborted:
            conn.abort()
            raise

    # -- failure injection & reconfiguration ---------------------------------------------------
    def kill_slave(self, node_id: str) -> None:
        handle = self.node(node_id)
        if handle.slave is None or handle.master is not None:
            raise NodeUnavailable(f"{node_id} is not a slave")
        handle.alive = False
        handle.engine.abort_all_active(reason="node-failure")
        self.scheduler.remove_node(node_id)

    def kill_master(self, master_id: str) -> str:
        """Kill a master and run the §4.2 recovery; returns the new master id."""
        handle = self.node(master_id)
        if handle.master is None:
            raise NodeUnavailable(f"{master_id} is not a master")
        handle.alive = False
        handle.engine.abort_all_active(reason="node-failure")
        survivors = [
            h.slave
            for h in self.nodes.values()
            if h.alive and h.slave is not None and h.master is None
            and not self._is_spare(h.node_id)
            and h.node_id not in self._demoted
        ]
        confirmed = self.scheduler.latest.copy()
        cleanup_after_master_failure(
            [
                h.slave
                for h in self.nodes.values()
                if h.alive and h.slave is not None
                and h.node_id not in self._demoted
            ],
            confirmed,
        )
        new_slave = elect_new_master(survivors)
        new_handle = self.nodes[new_slave.node_id]
        new_handle.master = promote_slave_to_master(
            new_slave, confirmed, read_concurrency=self.read_concurrency
        )
        new_handle.slave = None
        self.scheduler.on_master_failure(master_id, new_slave.node_id)
        return new_slave.node_id

    def _is_spare(self, node_id: str) -> bool:
        state = self.scheduler.slaves.get(node_id)
        return bool(state and state.spare)

    def promote_spare(self, node_id: str) -> None:
        self.scheduler.promote_spare(node_id)

    # -- laggard demotion (operator-driven in embedded mode) -----------------------------------
    def demote_slave(self, node_id: str) -> None:
        """Exclude a pure slave from replication and fresh-version routing.

        Embedded mode has no latency signal, so demotion is an operator
        decision (e.g. the host process noticed the replica's thread pool
        is saturated).  Buffered-but-unconfirmed write-sets are discarded
        so everything the demoted node holds is confirmed history; it
        stops receiving broadcasts and must come back via
        :meth:`rejoin_slave`'s data migration.
        """
        handle = self.node(node_id)
        if handle.slave is None or handle.master is not None:
            raise NodeUnavailable(f"{node_id} is not a pure slave")
        if node_id in self._demoted:
            return
        peers = [
            h
            for h in self.nodes.values()
            if h.alive and h.slave is not None and h.master is None
            and h.node_id != node_id and h.node_id not in self._demoted
        ]
        if not peers:
            raise NodeUnavailable(f"cannot demote {node_id}: no other slave remains")
        handle.slave.discard_above(self.scheduler.latest)
        self._demoted.add(node_id)
        self.scheduler.set_demoted(node_id, True)
        self.counters.add("slave.demotions")

    def rejoin_slave(self, node_id: str, support_id: Optional[str] = None) -> None:
        """Re-integrate a demoted slave via §4.4 data migration."""
        handle = self.node(node_id)
        if node_id not in self._demoted:
            return
        if support_id is None:
            support_id = next(
                h.node_id
                for h in self.nodes.values()
                if h.alive and h.slave is not None and h.node_id != node_id
                and h.node_id not in self._demoted
            )
        support = self.node(support_id)
        self._demoted.discard(node_id)
        handle.slave.catching_up = True
        integrate_stale_node(handle.slave, support.slave)
        self.scheduler.set_demoted(node_id, False)
        self.counters.add("slave.rejoins")

    def reintegrate(self, node_id: str, support_id: Optional[str] = None, spare: bool = False):
        """Bring a failed node back as a slave via data migration."""
        handle = self.nodes[node_id]
        if support_id is None:
            support_id = next(
                h.node_id
                for h in self.nodes.values()
                if h.alive and h.slave is not None and h.node_id != node_id
            )
        support = self.node(support_id)
        handle.alive = True
        # Reboot: fresh engine state rebuilt from the node's checkpoint.
        slave = SlaveReplica(node_id, engine=handle.engine, counters=handle.counters)
        handle.slave = slave
        handle.master = None
        from repro.failover.reintegration import restore_from_checkpoint

        restore_from_checkpoint(slave, handle.stable)
        stats = integrate_stale_node(slave, support.slave)
        self.scheduler.add_slave(node_id, spare=spare)
        return stats

    # -- checkpoint persistence ------------------------------------------------------------------
    def save_node_checkpoint(self, node_id: str, path: str) -> int:
        """Checkpoint a node and persist the images to ``path`` (JSON lines).

        Gives embedded deployments a durable per-node restart image; pair
        with :meth:`reintegrate_from_file` after a process restart.
        """
        handle = self.node(node_id)
        handle.checkpoint()
        return handle.stable.save_to(path)

    def reintegrate_from_file(self, node_id: str, path: str, support_id: Optional[str] = None):
        """Reintegrate a node whose checkpoint was saved with
        :meth:`save_node_checkpoint` (possibly by a previous process)."""
        from repro.storage.checkpoint import StableStore

        handle = self.nodes[node_id]
        handle.stable = StableStore.load_from(path)
        handle.checkpointer = FuzzyCheckpointer(handle.engine.store, handle.stable)
        return self.reintegrate(node_id, support_id=support_id)

    # -- introspection ------------------------------------------------------------------------
    def latest_versions(self) -> VersionVector:
        return self.scheduler.latest.copy()

    def master_ids(self) -> List[str]:
        return sorted(h.node_id for h in self.nodes.values() if h.master is not None and h.alive)

    def slave_ids(self) -> List[str]:
        return sorted(
            h.node_id
            for h in self.nodes.values()
            if h.slave is not None and h.master is None and h.alive
        )


def datagen_tables(datagen):
    """Yield (table, rows-iterable) pairs from a TPC-W data generator."""
    yield ("country", list(datagen.countries()))
    yield ("author", list(datagen.authors()))
    yield ("address", list(datagen.addresses()))
    yield ("customer", list(datagen.customers()))
    yield ("item", list(datagen.items()))
    yield ("orders", list(datagen.orders()))
    yield ("order_line", list(datagen.order_lines()))
    yield ("cc_xacts", list(datagen.cc_xacts()))
    yield ("shopping_cart", [])
    yield ("shopping_cart_line", [])
