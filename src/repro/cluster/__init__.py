"""Cluster assemblies.

Two deployment styles over the same protocol objects:

* :class:`SyncDmvCluster` — an embedded, synchronous cluster: replication
  happens inline at commit, no virtual time.  This is the library's simple
  public API (quickstart) and the substrate for protocol-level tests.
* :class:`ThreadedDmvCluster` — a live deployment for threaded embedders:
  real blocking page locks, synchronous eager replication at commit.
* :mod:`repro.cluster.simcluster` / :mod:`repro.cluster.simdisk` — the
  discrete-event deployments used by every benchmark: nodes have CPUs,
  caches, disks and a network; failures and recoveries take (virtual) time.
"""

from repro.cluster.sync import SyncConnection, SyncDmvCluster
from repro.cluster.threaded import ThreadedConnection, ThreadedDmvCluster

__all__ = [
    "SyncDmvCluster",
    "SyncConnection",
    "ThreadedDmvCluster",
    "ThreadedConnection",
]
