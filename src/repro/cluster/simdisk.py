"""The simulated on-disk baseline tier.

Two configurations, exactly as the paper evaluates them:

* **stand-alone** — one InnoDB-like node serving the whole workload with
  serializable 2PL, a bounded buffer pool and per-commit log forces
  (the Figure 3 baseline);
* **replicated** — two active replicas kept consistent by a conflict-aware
  scheduler (updates are ordered by the scheduler's coarse-grained
  concurrency control and applied write-all) plus one passive backup
  refreshed from the update log every ``refresh_interval`` (the Figures
  5(a,b)/6 baseline).  Failover promotes the backup after replaying its
  log lag — the long "DB update" phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import NodeUnavailable, TransactionAborted
from repro.common.rng import RngStream
from repro.cluster.costs import CostConfig, CostModel
from repro.cluster.simcluster import Metrics
from repro.cluster.simnodes import DiskDbNode
from repro.engine.schema import TableSchema
from repro.scheduler.conflictaware import ConflictAwareScheduler
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.tpcw.connection import Connection
from repro.tpcw.interactions import SharedSequences
from repro.tpcw.mixes import Mix
from repro.tpcw.schema import TpcwScale
from repro.tpcw.session import EmulatedBrowser


class DiskConnection(Connection):
    """Read-one / write-all connection to the on-disk tier."""

    def __init__(self, cluster: "SimDiskCluster") -> None:
        self.cluster = cluster
        self._targets: List[DiskDbNode] = []
        self._txns: List = []
        self._is_update = False
        self._ticket_held = False
        self._queries: List[Tuple[str, Tuple]] = []

    def begin_read(self, tables: Sequence[str]):
        node_id = self.cluster.scheduler.route_read()
        node = self.cluster.node(node_id)
        self._targets = [node]
        self._txns = [node.db.begin(read_only=True)]
        self._is_update = False
        return self.cluster.sim.timeout(self.cluster.cost.config.rtt())

    def begin_update(self, tables: Sequence[str]):
        self._is_update = True

        def effect():
            # Conflict-aware schedulers serialise conflicting update
            # transactions (coarse-grained concurrency control — the very
            # reason the paper's baseline scales poorly on writes).
            if self.cluster.update_ticket is not None:
                yield from self.cluster.update_ticket.acquire()
                self._ticket_held = True
            ids = self.cluster.scheduler.update_targets()
            if not ids:
                raise NodeUnavailable("no active on-disk replicas")
            self._targets = [self.cluster.node(i) for i in ids]
            self._txns = [node.db.begin(write_tables=tables) for node in self._targets]
            yield self.cluster.sim.timeout(self.cluster.cost.config.rtt())
            return None

        return self.cluster.sim.spawn(effect(), name="disk-begin")

    def query(self, sql: str, params: Sequence = ()):
        targets, txns = self._targets, self._txns
        cfg = self.cluster.cost.config
        if any(not node.alive or not txn.active for node, txn in zip(targets, txns)):
            raise NodeUnavailable("replica failed mid-transaction")
        if self._is_update and not sql.lstrip().lower().startswith("select"):
            self._queries.append((sql, tuple(params)))

        def effect():
            yield self.cluster.sim.timeout(cfg.rtt())
            jobs = [
                node.job(node.exec_statement(txn, sql, params), "stmt")
                for node, txn in zip(targets, txns)
            ]
            results = yield self.cluster.sim.all_of(jobs)
            return results[0]

        return self.cluster.sim.spawn(effect(), name="disk-query")

    def commit(self):
        targets, txns = self._targets, self._txns
        self._targets, self._txns = [], []
        is_update = self._is_update
        queries, self._queries = self._queries, []

        def effect():
            try:
                if any(not node.alive or not txn.active for node, txn in zip(targets, txns)):
                    if not is_update:
                        self.cluster.scheduler.note_read_done(targets[0].node_id)
                    raise NodeUnavailable("replica failed before commit")
                if not is_update:
                    targets[0].db.engine.commit(txns[0])
                    self.cluster.scheduler.note_read_done(targets[0].node_id)
                else:
                    jobs = [
                        node.job(node.commit_job(txn), "commit")
                        for node, txn in zip(targets, txns)
                    ]
                    yield self.cluster.sim.all_of(jobs)
                    if queries:
                        self.cluster.scheduler.log_update(queries)
                yield self.cluster.sim.timeout(self.cluster.cost.config.rtt())
            finally:
                self._release_ticket()
            return None

        return self.cluster.sim.spawn(effect(), name="disk-commit")

    def abort(self):
        self.cleanup()
        return self.cluster.sim.timeout(self.cluster.cost.config.rtt())

    def cleanup(self) -> None:
        targets, txns = self._targets, self._txns
        self._targets, self._txns = [], []
        for node, txn in zip(targets, txns):
            if node.alive:
                node.db.abort(txn)
            if not self._is_update:
                self.cluster.scheduler.note_read_done(node.node_id)
        self._release_ticket()

    def _release_ticket(self) -> None:
        if self._ticket_held:
            self._ticket_held = False
            self.cluster.update_ticket.release()


@dataclass
class DiskFailoverTimeline:
    failure_time: float = 0.0
    detection_time: float = 0.0
    replay_entries: int = 0
    replay_done: float = 0.0

    def db_update_duration(self) -> float:
        return max(0.0, self.replay_done - self.detection_time)


class SimDiskCluster:
    """Stand-alone or replicated on-disk tier under the event kernel."""

    def __init__(
        self,
        schemas: Sequence[TableSchema],
        num_active: int = 1,
        num_passive: int = 0,
        pool_pages: int = 2048,
        rows_per_page: int = 64,
        cost_config: Optional[CostConfig] = None,
        seed: int = 0,
        refresh_interval: float = 1800.0,
        heartbeat_interval: float = 1.0,
        heartbeat_misses: int = 2,
        serialize_updates: Optional[bool] = None,
    ) -> None:
        self.sim = Simulator()
        self.schemas = list(schemas)
        self.cost = CostModel(cost_config if cost_config is not None else CostConfig())
        self.rng = RngStream(seed, "diskcluster")
        self.scheduler = ConflictAwareScheduler("ca0")
        self.nodes: Dict[str, DiskDbNode] = {}
        self.rows_per_page = rows_per_page
        for i in range(num_active):
            self._add_node(f"d{i}", passive=False, pool_pages=pool_pages)
        for i in range(num_passive):
            self._add_node(f"backup{i}", passive=True, pool_pages=pool_pages)
        if serialize_updates is None:
            serialize_updates = num_active + num_passive > 1
        self.update_ticket = Resource(self.sim, 1) if serialize_updates else None
        self.refresh_interval = refresh_interval
        self.metrics = Metrics()
        self.timelines: List[DiskFailoverTimeline] = []
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self._handled_failures: set = set()
        self._browsers: List[EmulatedBrowser] = []
        self.sim.spawn(self._failure_detector(), name="disk-failure-detector")
        if num_passive:
            self.sim.spawn(self._refresh_daemon(), name="backup-refresh")

    def _add_node(self, node_id: str, passive: bool, pool_pages: int) -> None:
        node = DiskDbNode(
            self.sim, node_id, self.cost, self.schemas, pool_pages, self.rows_per_page
        )
        self.nodes[node_id] = node
        self.scheduler.add_replica(node_id, passive=passive)

    def node(self, node_id: str) -> DiskDbNode:
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            raise NodeUnavailable(f"disk node {node_id} unavailable")
        return node

    # -- loading ------------------------------------------------------------------------
    def load(self, datagen) -> None:
        from repro.cluster.sync import datagen_tables

        for table, rows in datagen_tables(datagen):
            for node in self.nodes.values():
                node.db.bulk_load(table, rows)
        for node in self.nodes.values():
            node.db.sql.invalidate_plans()

    def warm_all_pools(self) -> None:
        for node in self.nodes.values():
            node.db.pool.warm(p.page_id for p in node.db.engine.store.all_pages())

    # -- logged updates (real queries captured at commit) -----------------------------------
    def log_committed_queries(self, queries: Sequence[Tuple[str, Tuple]]) -> None:
        self.scheduler.log_update(queries)

    # -- background daemons --------------------------------------------------------------------
    def _refresh_daemon(self):
        while True:
            yield self.sim.timeout(self.refresh_interval)
            for state in self.scheduler.passive_replicas():
                node = self.nodes[state.node_id]
                if not node.alive:
                    continue
                batch = self.scheduler.refresh_batch(state.node_id)
                if batch:
                    log_bytes = sum(e.byte_size() for e in batch)
                    yield node.job(node.replay_job(batch, log_bytes), "refresh")

    def _failure_detector(self):
        missed: Dict[str, int] = {}
        while True:
            yield self.sim.timeout(self.heartbeat_interval)
            for node_id, node in list(self.nodes.items()):
                if node.alive:
                    missed[node_id] = 0
                    continue
                if node_id in self._handled_failures:
                    continue
                missed[node_id] = missed.get(node_id, 0) + 1
                if missed[node_id] >= self.heartbeat_misses:
                    self._handled_failures.add(node_id)
                    self.sim.spawn(self._failover(node_id), name="disk-failover")

    def _failover(self, failed_id: str):
        """Promote the passive backup: replay its log lag, then activate."""
        failed = self.nodes[failed_id]
        timeline = DiskFailoverTimeline(
            failure_time=failed.failed_at or self.sim.now(),
            detection_time=self.sim.now(),
        )
        self.timelines.append(timeline)
        self.scheduler.remove_replica(failed_id)
        passives = self.scheduler.passive_replicas()
        if not passives:
            timeline.replay_done = self.sim.now()
            return
        backup_id = passives[0].node_id
        backup = self.nodes[backup_id]
        # Replay rounds until the backup has caught up with the log —
        # commits keep flowing on the surviving active during the replay.
        while True:
            batch = self.scheduler.query_log.pending_for(backup_id)
            if not batch:
                break
            timeline.replay_entries += len(batch)
            log_bytes = sum(e.byte_size() for e in batch)
            yield backup.job(backup.replay_job(list(batch), log_bytes), "failover-replay")
            self.scheduler.query_log.advance(backup_id, len(batch))
        self.scheduler.promote_backup(backup_id)
        timeline.replay_done = self.sim.now()

    # -- failure injection ---------------------------------------------------------------------------
    def kill_node(self, node_id: str) -> None:
        node = self.nodes[node_id]
        node.failed_at = self.sim.now()
        node.fail()

    def kill_node_at(self, node_id: str, when: float) -> None:
        self.sim.schedule(max(0.0, when - self.sim.now()), self.kill_node, node_id)

    # -- client driving ---------------------------------------------------------------------------------
    def start_browsers(
        self,
        count: int,
        mix: Mix,
        scale: TpcwScale,
        sequences: Optional[SharedSequences] = None,
        think_time_mean: float = 7.0,
        max_retries: int = 8,
    ) -> None:
        sequences = sequences if sequences is not None else SharedSequences(scale)
        base = len(self._browsers)
        for i in range(count):
            browser = EmulatedBrowser(
                browser_id=base + i,
                mix=mix,
                scale=scale,
                sequences=sequences,
                rng=self.rng.child(f"eb{base + i}"),
                now=self.sim.now,
                think_time_mean=think_time_mean,
            )
            self._browsers.append(browser)
            self.sim.spawn(self._browser_loop(browser, max_retries), name=f"disk-eb{base + i}")

    def _browser_loop(self, browser: EmulatedBrowser, max_retries: int):
        from repro.tpcw.interactions import INTERACTIONS

        while True:
            name = browser.pick()
            start = self.sim.now()
            attempts = 0
            while True:
                conn = DiskConnection(self)
                gen = browser.start(name, conn)
                try:
                    yield from self._drive(gen)
                    self.metrics.record_completion(self.sim.now(), self.sim.now() - start)
                    break
                except (TransactionAborted, NodeUnavailable) as exc:
                    gen.close()
                    conn.cleanup()
                    self.metrics.record_retry(getattr(exc, "reason", "node-failure"))
                    attempts += 1
                    if attempts > max_retries:
                        self.metrics.failed += 1
                        break
                    cfg = self.cost.config
                    yield self.sim.timeout(
                        browser.retry_backoff(
                            attempts, cfg.browser_backoff_base, cfg.browser_backoff_cap
                        )
                    )
            yield self.sim.timeout(browser.think_time())

    def _drive(self, gen):
        value = None
        while True:
            try:
                effect = gen.send(value)
            except StopIteration as stop:
                return stop.value
            value = yield effect

    def run(self, until: float) -> float:
        return self.sim.run(until=until)
