"""Threaded live cluster: real threads, real blocking, same protocol.

The simulation proves timing behaviour; this deployment proves the
protocol under genuine preemptive interleaving.  Each node is guarded by a
mutex (the engine's internal structures are not thread-safe); page-lock
conflicts block the calling thread on the lock-manager grant exactly the
way a database session thread would.  Replication stays synchronous at
commit (eager, as in the paper: acks precede the commit response).

Python's GIL caps parallel speedup — use the simulation for performance
questions and this class when embedding the system under a threaded
application.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.counters import Counters
from repro.common.errors import NodeUnavailable, TransactionAborted
from repro.common.rng import RngStream
from repro.core.conflictclass import ConflictClassMap
from repro.core.master import MasterReplica
from repro.core.slave import SlaveReplica
from repro.engine.engine import HeapEngine, LockWait, TwoPhaseLocking
from repro.engine.schema import TableSchema
from repro.scheduler.versionaware import VersionAwareScheduler
from repro.sql.executor import ResultSet, SqlExecutor

#: Give up on a blocked statement after this long (likely a dead embedder).
LOCK_WAIT_TIMEOUT = 10.0


class ThreadedNode:
    """One replica plus the mutex serialising access to its engine."""

    def __init__(self, node_id: str, schemas: Sequence[TableSchema]) -> None:
        self.node_id = node_id
        self.mutex = threading.RLock()
        self.counters = Counters()
        self.engine = HeapEngine(counters=self.counters, name=node_id)
        for schema in schemas:
            self.engine.create_table(schema)
        self.sql = SqlExecutor(self.engine)
        self.master: Optional[MasterReplica] = None
        self.slave: Optional[SlaveReplica] = None

    def execute_blocking(self, txn, sql: str, params: Sequence) -> ResultSet:
        """Execute one statement, blocking the thread on page-lock waits."""
        while True:
            with self.mutex:
                savepoint = txn.savepoint()
                try:
                    return self.sql.execute(txn, sql, tuple(params))
                except LockWait as wait:
                    self.engine.rollback_to(txn, savepoint)
                    granted = threading.Event()
                    wait.request.on_grant(lambda _r: granted.set())
            # Wait OUTSIDE the node mutex: the lock holder needs it to
            # commit/abort and thereby release the page lock.
            if not granted.wait(LOCK_WAIT_TIMEOUT):
                with self.mutex:
                    self.engine.abort(txn, reason="lock-timeout")
                raise TransactionAborted(
                    f"lock wait timed out on {self.node_id}", reason="lock-timeout"
                )


class ThreadedConnection:
    """One session; safe for use by exactly one thread at a time."""

    def __init__(self, cluster: "ThreadedDmvCluster") -> None:
        self.cluster = cluster
        self._node: Optional[ThreadedNode] = None
        self._txn = None
        self._is_update = False
        self._queries: List[Tuple[str, Tuple]] = []

    # -- transaction control ----------------------------------------------------
    def begin_read(self, tables: Sequence[str]) -> None:
        if self._txn is not None:
            raise RuntimeError("transaction already open")
        with self.cluster.sched_mutex:
            routed = self.cluster.scheduler.route_read(list(tables))
        node = self.cluster.node(routed.node_id)
        with node.mutex:
            self._txn = node.slave.begin_read_only(routed.tag)
        self._node = node
        self._is_update = False

    def begin_update(self, tables: Sequence[str]) -> None:
        if self._txn is not None:
            raise RuntimeError("transaction already open")
        with self.cluster.sched_mutex:
            master_id = self.cluster.scheduler.route_update(list(tables))
        node = self.cluster.node(master_id)
        with node.mutex:
            self._txn = node.master.begin_update(write_tables=tables)
        self._node = node
        self._is_update = True
        self._queries = []

    def query(self, sql: str, params: Sequence = ()) -> ResultSet:
        if self._txn is None:
            raise RuntimeError("no open transaction")
        try:
            result = self._node.execute_blocking(self._txn, sql, params)
        except TransactionAborted:
            # Deadlock victim / timeout: roll back so locks are released.
            node, txn = self._node, self._txn
            self._forget()
            with node.mutex:
                node.engine.abort(txn)
            if not self._is_update:
                with self.cluster.sched_mutex:
                    self.cluster.scheduler.note_read_done(node.node_id)
            raise
        if self._is_update and not sql.lstrip().lower().startswith("select"):
            self._queries.append((sql, tuple(params)))
        return result

    def commit(self) -> None:
        node, txn = self._node, self._txn
        if txn is None:
            raise RuntimeError("no open transaction")
        self._node = self._txn = None
        if not self._is_update:
            with node.mutex:
                node.engine.commit(txn)
            with self.cluster.sched_mutex:
                self.cluster.scheduler.note_read_done(node.node_id)
            return
        self.cluster.commit_update(node, txn, self._queries)
        self._queries = []

    def abort(self) -> None:
        node, txn = self._node, self._txn
        self._forget()
        if txn is None:
            return
        with node.mutex:
            node.engine.abort(txn)
        if not self._is_update:
            with self.cluster.sched_mutex:
                self.cluster.scheduler.note_read_done(node.node_id)

    def _forget(self) -> None:
        self._node = self._txn = None


class ThreadedDmvCluster:
    """Master + N slaves served by application threads."""

    def __init__(
        self,
        schemas: Sequence[TableSchema],
        num_slaves: int = 2,
        seed: int = 0,
    ) -> None:
        self.schemas = list(schemas)
        table_names = [s.name for s in self.schemas]
        conflict_map = ConflictClassMap.single_class(table_names)
        conflict_map.assign_masters(["m0"])
        self.scheduler = VersionAwareScheduler(
            "sched0", conflict_map, rng=RngStream(seed, "threaded-sched")
        )
        self.sched_mutex = threading.Lock()
        #: Serialises the pre-commit broadcast so per-table write-set
        #: versions reach every slave's queues in commit order.
        self.commit_mutex = threading.Lock()
        self.nodes: Dict[str, ThreadedNode] = {}
        master = ThreadedNode("m0", self.schemas)
        master.engine.set_controller(TwoPhaseLocking())
        master.master = MasterReplica("m0", engine=master.engine, counters=master.counters)
        self.nodes["m0"] = master
        for i in range(num_slaves):
            node = ThreadedNode(f"s{i}", self.schemas)
            node.slave = SlaveReplica(f"s{i}", engine=node.engine, counters=node.counters)
            self.nodes[node.node_id] = node
            self.scheduler.add_slave(node.node_id)

    def node(self, node_id: str) -> ThreadedNode:
        node = self.nodes.get(node_id)
        if node is None:
            raise NodeUnavailable(f"no node {node_id}")
        return node

    def connect(self) -> ThreadedConnection:
        return ThreadedConnection(self)

    def bulk_load(self, table: str, rows) -> int:
        rows = list(rows)
        count = 0
        for node in self.nodes.values():
            with node.mutex:
                count = node.engine.bulk_load(table, rows)
        return count

    # -- replication -------------------------------------------------------------------
    def commit_update(self, node: ThreadedNode, txn, queries) -> None:
        """Pre-commit + synchronous eager broadcast, in commit order."""
        with self.commit_mutex:
            with node.mutex:
                write_set = node.master.pre_commit(txn)
            if write_set is not None:
                for target in self.nodes.values():
                    if target.slave is None:
                        continue
                    with target.mutex:
                        target.slave.receive(write_set)
                with self.sched_mutex:
                    self.scheduler.on_master_commit(
                        node.node_id, write_set.versions, queries, txn.txn_id
                    )
                with node.mutex:
                    node.master.finalize(txn)

    # -- convenience -----------------------------------------------------------------------
    def run_read(self, sql: str, params: Sequence = (), tables: Sequence[str] = ()) -> ResultSet:
        conn = self.connect()
        conn.begin_read(list(tables) or [s.name for s in self.schemas])
        result = conn.query(sql, params)
        conn.commit()
        return result

    def run_update(self, statements: Sequence[Tuple[str, Sequence]], tables: Sequence[str]) -> None:
        conn = self.connect()
        conn.begin_update(list(tables))
        try:
            for sql, params in statements:
                conn.query(sql, params)
        except TransactionAborted:
            raise
        conn.commit()
