"""Interest sets: the unit of partial replication (ROADMAP item 2).

Full replication caps cluster capacity at one node's memory: every slave
holds every page.  Partial replication lets a slave *subscribe* to a
subset of the tables — its interest set — so the aggregate dataset can
exceed any single node's budget while each table still lives on at least
``min_replication_factor`` nodes.  Sutra & Shapiro-style interest sets
compose cleanly with the DMV machinery already here:

* the broadcast path restricts each write-set to the target's interest
  before it enters the replication channel (a frame with no surviving
  versions is never sent at all, credited to ``net.bytes_saved_partial``);
* the version-aware scheduler routes reads coverage-then-version: a slave
  is a candidate only if its interest covers the query's tables *and* its
  acked version vector is fresh enough, else the read falls back to a
  covering master;
* rejoin gap replay and page migration are scoped to the joiner's
  interest, so a partial replica never ships — or holds — confirmed state
  for pages outside its subscription.

Everything here is pure bookkeeping: a registry whose entries are all
:meth:`InterestSet.full` behaves bit-for-bit like no registry at all,
which is what keeps the legacy chaos fingerprints stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional

from repro.common.ids import NodeId
from repro.core.writeset import WriteSet


@dataclass(frozen=True)
class InterestSet:
    """The tables one replica subscribes to (``None`` = everything)."""

    tables: Optional[FrozenSet[str]] = None

    @classmethod
    def full(cls) -> "InterestSet":
        return cls(None)

    @classmethod
    def of(cls, *tables: str) -> "InterestSet":
        return cls(frozenset(tables))

    @property
    def is_full(self) -> bool:
        return self.tables is None

    def covers_table(self, table: str) -> bool:
        return self.tables is None or table in self.tables

    def covers(self, tables: Iterable[str]) -> bool:
        if self.tables is None:
            return True
        return all(table in self.tables for table in tables)

    def superset_of(self, other: "InterestSet") -> bool:
        """True if every table ``other`` subscribes to is covered here.

        A full set is a superset of anything; only a full set is a
        superset of a full set.  Used to pick a migration support slave
        that can serve the whole of a joiner's interest.
        """
        if self.tables is None:
            return True
        if other.tables is None:
            return False
        return other.tables <= self.tables

    def restrict(self, write_set: WriteSet) -> Optional[WriteSet]:
        """The portion of ``write_set`` inside this interest set.

        Returns the *same* object when nothing is filtered (the common
        full-replication case allocates nothing), ``None`` when no table
        survives (the frame need not be sent at all), and a new write-set
        with the covered ops/versions otherwise.  A restricted frame keeps
        the original ``(master, seq)``, so restricting the same broadcast
        twice for the same target yields equal dedup keys — retransmission
        and gap replay stay idempotent.
        """
        if self.tables is None:
            return write_set
        versions = {
            table: version
            for table, version in write_set.versions.items()
            if table in self.tables
        }
        if not versions:
            return None
        if len(versions) == len(write_set.versions):
            return write_set
        ops = tuple(op for op in write_set.ops if op.page_id.table in self.tables)
        return WriteSet(
            write_set.master_id, write_set.txn_id, ops, versions, seq=write_set.seq
        )


class InterestRegistry:
    """node_id -> :class:`InterestSet`, defaulting to full replication."""

    def __init__(self) -> None:
        self._sets: Dict[NodeId, InterestSet] = {}

    def declare(self, node_id: NodeId, interest: InterestSet) -> None:
        """Register (or widen/replace) one node's interest set."""
        if interest.is_full:
            # A full entry is the default; dropping it keeps
            # ``partial_active`` an O(#partial-nodes) check.
            self._sets.pop(node_id, None)
        else:
            self._sets[node_id] = interest

    def get(self, node_id: NodeId) -> InterestSet:
        return self._sets.get(node_id, _FULL)

    @property
    def partial_active(self) -> bool:
        """True when at least one node subscribes to less than everything."""
        return bool(self._sets)

    def covers_table(self, node_id: NodeId, table: str) -> bool:
        return self.get(node_id).covers_table(table)

    def covers(self, node_id: NodeId, tables: Iterable[str]) -> bool:
        return self.get(node_id).covers(tables)

    def restrict(self, node_id: NodeId, write_set: WriteSet) -> Optional[WriteSet]:
        return self.get(node_id).restrict(write_set)

    def as_dict(self) -> Dict[NodeId, Optional[FrozenSet[str]]]:
        """Snapshot for introspection/tests: only the partial entries."""
        return {node_id: iset.tables for node_id, iset in self._sets.items()}


_FULL = InterestSet.full()


def parse_interest_spec(spec: str) -> Dict[str, Optional[Iterable[str]]]:
    """Parse a CLI interest spec like ``"s0=*;s1=item,author;s2=orders"``.

    ``*`` (or an empty table list) declares full interest.  Returns the
    ``interest_sets`` mapping :class:`~repro.cluster.simcluster.SimDmvCluster`
    accepts: node id -> table tuple, or ``None`` for full replication.
    """
    out: Dict[str, Optional[Iterable[str]]] = {}
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        if "=" not in entry:
            raise ValueError(f"bad interest entry {entry!r} (want node=t1,t2 or node=*)")
        node_id, _, tables = entry.partition("=")
        node_id = node_id.strip()
        tables = tables.strip()
        if tables in ("*", ""):
            out[node_id] = None
        else:
            out[node_id] = tuple(t.strip() for t in tables.split(",") if t.strip())
    return out
