"""Data migration for integrating stale or recovering nodes (paper §4.4).

The joining node subscribes to the masters' replication streams first (in
catch-up mode: ops buffer without being applied), then asks a *support
slave* for every page newer than its own per-page versions.  The support
node transmits only changed pages — pages that may have collapsed long
chains of row modifications, which is why page migration beats log replay.

Flow (mirrors the paper):

1. joiner contacts a scheduler, learns masters + a support slave;
2. joiner subscribes (``catching_up = True``) and starts buffering;
3. joiner sends its page->version map; support replies with newer pages;
4. joiner installs pages (dropping covered buffered ops), rebuilds indexes,
   index-applies the remaining buffered ops, and goes active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.versions import VersionVector
from repro.core.slave import SlaveReplica
from repro.storage.checkpoint import StableStore
from repro.storage.ops import ops_size


@dataclass
class MigrationStats:
    """What one reintegration moved (drives the migration-time cost model)."""

    pages_sent: int = 0
    #: Total bytes the migration moved: page images shipped by the support
    #: slave plus the encoded size of the ops the joiner index-applies from
    #: its own buffers (full data-movement accounting).
    bytes_sent: int = 0
    #: Wire bytes of the migrated page images alone.  This is what the
    #: cost model charges the network for: the index-applied ops already
    #: traversed the wire on the replication stream during catch-up, so
    #: charging them again here would double-count transfer time.
    bytes_page_images: int = 0
    ops_dropped_as_covered: int = 0
    ops_index_applied: int = 0
    page_ids: list = field(default_factory=list)


def integrate_stale_node(
    joiner: SlaveReplica, support: SlaveReplica
) -> MigrationStats:
    """Steps 3-4: page transfer from ``support`` into ``joiner``.

    ``joiner`` must already be subscribed in catch-up mode (so every
    write-set committed after its version map was taken is buffered).
    """
    stats = MigrationStats()
    # The joiner advertises its *applied* page versions (checkpoint image),
    # not its buffered-op headroom: ops buffered since subscription cannot
    # be applied onto a base that is missing earlier modifications.
    wanted = joiner.engine.store.version_map()
    pending_before = joiner.pending_op_count()
    images = support.snapshot_pages_newer_than(wanted)
    for image in images:
        joiner.receive_page(image)
        stats.pages_sent += 1
        stats.bytes_page_images += image.page.byte_size()
        stats.page_ids.append(image.page_id)
    stats.ops_dropped_as_covered = pending_before - joiner.pending_op_count()
    stats.ops_index_applied = joiner.pending_op_count()
    stats.bytes_sent = stats.bytes_page_images + sum(
        ops_size(op for _version, op in queue) for queue in joiner.pending.values()
    )
    if joiner.catching_up:
        joiner.finish_catchup()
    return stats


def restore_from_checkpoint(slave: SlaveReplica, stable: StableStore) -> int:
    """Reboot path: reload pages from the node's fuzzy checkpoint.

    Returns the number of pages restored.  The slave is left in catch-up
    mode, ready for :func:`integrate_stale_node` to fetch newer pages.
    """
    slave.engine.store.clear()
    slave.pending.clear()
    slave.pending_ops = 0
    slave.received_versions = VersionVector()
    restored = stable.restore_into(slave.engine.store)
    slave.catching_up = True
    return restored
