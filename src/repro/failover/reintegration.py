"""Data migration for integrating stale or recovering nodes (paper §4.4).

The joining node subscribes to the masters' replication streams first (in
catch-up mode: ops buffer without being applied), then asks a *support
slave* for every page newer than its own per-page versions.  The support
node transmits only changed pages — pages that may have collapsed long
chains of row modifications, which is why page migration beats log replay.

Flow (mirrors the paper):

1. joiner contacts a scheduler, learns masters + a support slave;
2. joiner subscribes (``catching_up = True``) and starts buffering;
3. joiner sends its page->version map; support replies with newer pages;
4. joiner installs pages (dropping covered buffered ops), rebuilds indexes,
   index-applies the remaining buffered ops, and goes active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.versions import VersionVector
from repro.core.slave import SlaveReplica
from repro.core.writeset import WriteSet
from repro.disk.wal import WalRecord, WriteAheadLog
from repro.storage.checkpoint import StableStore
from repro.storage.ops import ops_size


@dataclass
class MigrationStats:
    """What one reintegration moved (drives the migration-time cost model)."""

    pages_sent: int = 0
    #: Total bytes the migration moved: page images shipped by the support
    #: slave plus the encoded size of the ops the joiner index-applies from
    #: its own buffers (full data-movement accounting).
    bytes_sent: int = 0
    #: Wire bytes of the migrated page images alone.  This is what the
    #: cost model charges the network for: the index-applied ops already
    #: traversed the wire on the replication stream during catch-up, so
    #: charging them again here would double-count transfer time.
    bytes_page_images: int = 0
    ops_dropped_as_covered: int = 0
    ops_index_applied: int = 0
    page_ids: list = field(default_factory=list)


def integrate_stale_node(
    joiner: SlaveReplica,
    support: SlaveReplica,
    wanted=None,
    page_filter: Optional[Callable] = None,
) -> MigrationStats:
    """Steps 3-4: page transfer from ``support`` into ``joiner``.

    ``joiner`` must already be subscribed in catch-up mode (so every
    write-set committed after its version map was taken is buffered).

    ``page_filter`` (image -> bool) scopes the transfer: a partial replica
    passes its interest set so pages outside its subscription never ship —
    it must end the migration holding no confirmed state it did not
    subscribe to.

    ``wanted`` overrides the per-page versions the joiner advertises.  By
    default it advertises its *applied* page versions (checkpoint image),
    not its buffered-op headroom: ops buffered since subscription cannot
    be applied onto a base that is missing earlier modifications.  The
    restart-from-own-disk path passes headroom-inclusive versions instead
    — its WAL-redo buffers are provably contiguous with the checkpoint
    base (redo is scanned in LSN order and truncated at the first hole),
    so only the pages touched while the node was down need to move.
    """
    stats = MigrationStats()
    if wanted is None:
        wanted = joiner.engine.store.version_map()
    pending_before = joiner.pending_op_count()
    images = support.snapshot_pages_newer_than(wanted)
    if page_filter is not None:
        images = [image for image in images if page_filter(image)]
    for image in images:
        joiner.receive_page(image)
        stats.pages_sent += 1
        stats.bytes_page_images += image.page.byte_size()
        stats.page_ids.append(image.page_id)
    stats.ops_dropped_as_covered = pending_before - joiner.pending_op_count()
    stats.ops_index_applied = joiner.pending_op_count()
    stats.bytes_sent = stats.bytes_page_images + sum(
        ops_size(op for _version, op in queue) for queue in joiner.pending.values()
    )
    if joiner.catching_up:
        joiner.finish_catchup()
    return stats


def restore_from_checkpoint(slave: SlaveReplica, stable: StableStore) -> int:
    """Reboot path: reload pages from the node's fuzzy checkpoint.

    Returns the number of pages restored.  The slave is left in catch-up
    mode, ready for :func:`integrate_stale_node` to fetch newer pages.
    """
    slave.engine.store.clear()
    slave.pending.clear()
    slave.pending_ops = 0
    slave.received_versions = VersionVector()
    restored = stable.restore_into(slave.engine.store)
    slave.catching_up = True
    return restored


@dataclass
class LocalRecovery:
    """What a restart-from-own-disk recovery read and replayed."""

    pages_restored: int = 0
    checkpoint_bytes: int = 0
    corrupt_pages: int = 0
    records_scanned: int = 0
    records_replayed: int = 0
    ghost_records_skipped: int = 0
    torn_tail_records: int = 0
    ops_buffered: int = 0
    wal_bytes: int = 0


def recover_from_local_disk(
    slave: SlaveReplica,
    stable: StableStore,
    wal: WriteAheadLog,
    is_confirmed: Optional[Callable[[WalRecord], bool]] = None,
) -> LocalRecovery:
    """Restart path: rebuild from the node's own checkpoint + WAL suffix.

    The in-memory state is gone; the node restores the checksummed
    checkpoint (falling back to the previous generation per page), scans
    the WAL truncating the torn tail at the first bad checksum, and redoes
    the surviving suffix into the catch-up buffers.  ``is_confirmed``
    filters records against the cluster's confirmed-commit history (the
    scheduler's recovery handshake): a locally durable pre-commit whose
    transaction never confirmed cluster-wide is a ghost — after a failover
    its version numbers may have been reassigned to different transactions,
    so replaying it would resurrect discarded data under live versions.

    The slave is left in catch-up mode; the caller follows with gap replay
    / data migration for the commits missed while down.
    """
    out = LocalRecovery()
    slave.engine.store.clear()
    slave.pending.clear()
    slave.pending_ops = 0
    slave.received_versions = VersionVector()
    # The dedup identity set died with the process.  Rebuilding it from
    # the replayed records only (below) is load-bearing: a stale entry
    # for a *ghost* identity would make the real commit that later
    # reuses those version numbers look like a duplicate.
    slave._seen_write_sets.clear()
    slave.catching_up = True
    out.pages_restored, out.checkpoint_bytes, out.corrupt_pages = stable.recover_into(
        slave.engine.store
    )
    records, out.torn_tail_records = wal.recover_records()
    out.records_scanned = len(records) + out.torn_tail_records
    for record in records:
        out.wal_bytes += record.nbytes
        if not record.ops or not record.versions:
            continue  # size-only record (disk tier) carries no redo content
        if is_confirmed is not None and not is_confirmed(record):
            out.ghost_records_skipped += 1
            slave.counters.add("wal.ghost_records_skipped")
            continue
        write_set = WriteSet(
            record.master_id,
            record.txn_id,
            record.ops,
            dict(record.versions),
            seq=record.seq,
        )
        out.ops_buffered += slave.restore_write_set(write_set)
        out.records_replayed += 1
        slave.counters.add("wal.replayed")
    if out.ops_buffered:
        slave.counters.add("wal.replayed_ops", out.ops_buffered)
    return out
