"""Master-failure recovery (paper §4.2).

Upon master failure a scheduler takes charge:

1. every remaining replica discards modification-log records with versions
   higher than the last version the scheduler saw from the failed master
   (cleaning up pre-commit flushes that were never acknowledged);
2. a new master is elected from the slaves and promoted: it applies all its
   buffered modifications, adopts the confirmed version vector and switches
   to two-phase-locking mode;
3. the scheduler repoints the failed master's conflict classes.

Effects of in-flight transactions on the failed master are lost by
construction — all their modifications were internal to it until the
pre-commit broadcast.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import NodeUnavailable
from repro.common.versions import VersionVector
from repro.core.master import MasterReplica
from repro.core.slave import SlaveReplica
from repro.engine.engine import make_update_controller


def cleanup_after_master_failure(
    slaves: Iterable[SlaveReplica], confirmed: VersionVector
) -> int:
    """Step 1: discard unacknowledged write-sets everywhere; returns ops dropped."""
    return sum(slave.discard_above(confirmed) for slave in slaves)


def ghost_wal_records(
    records: Iterable, confirmed: VersionVector
) -> List:
    """Classify a crashed node's WAL records as potential ghosts.

    A record above the cluster-confirmed vector at crash time is durable
    on this node's disk (or was believed to be) without its transaction
    having been acknowledged to any client.  If the commit never confirms,
    nothing derived from this disk may resurface it — the restart redo
    must skip it and no replay path may resurrect it.  Records whose
    versions are all covered by ``confirmed`` are, by construction,
    acknowledged history and never ghosts.
    """
    ghosts = []
    for record in records:
        versions = getattr(record, "versions", ())
        if not versions:
            continue
        if all(v <= confirmed.get(t) for t, v in versions):
            continue
        ghosts.append(record)
    return ghosts


def _candidate_freshness(slave: SlaveReplica) -> int:
    """Total replicated progress of one candidate: adopted + buffered.

    The received-versions vector already includes buffered-but-unapplied
    write-sets (it advances at receive time), so its total orders
    candidates by how much confirmed history promotion can preserve.
    """
    return slave.received_versions.total()


def elect_new_master(candidates: Sequence[SlaveReplica]) -> SlaveReplica:
    """Pick the replacement master: freshest candidate, lowest-id tiebreak.

    Under all-slave acks every survivor holds every confirmed write-set,
    so any deterministic pick is safe.  Under quorum acks a survivor
    *outside* the quorum may be missing confirmed commits — electing it
    by id alone would discard history that other survivors still hold.
    The freshest candidate (max version-vector total) can always reach
    the confirmed vector from its own buffers.
    """
    alive = list(candidates)
    if not alive:
        raise NodeUnavailable("no surviving slave to promote")
    return min(alive, key=lambda s: (-_candidate_freshness(s), s.node_id))


def promote_slave_to_master(
    slave: SlaveReplica,
    confirmed: Optional[VersionVector] = None,
    read_concurrency: str = "occ",
) -> MasterReplica:
    """Step 2: switch a slave into master mode.

    The slave applies everything it buffered (all of it is confirmed after
    :func:`cleanup_after_master_failure`), adopts the confirmed version
    vector, and its engine switches to the configured update-path
    concurrency controller.  The same engine object keeps serving — its
    warm state is exactly why in-memory failover is fast.
    """
    slave.apply_all_pending()
    engine = slave.engine
    engine.abort_all_active(reason="promotion")
    engine.set_controller(make_update_controller(read_concurrency))
    if confirmed is not None:
        engine.versions = confirmed.copy()
    else:
        engine.versions = slave.received_versions.copy()
    return MasterReplica(slave.node_id, engine=engine, counters=slave.counters)
