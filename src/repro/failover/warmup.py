"""Spare-backup buffer-cache warm-up strategies (paper §4.5).

Strategy 1 — **query execution**: the scheduler diverts a small fraction
(~1 %) of the read-only workload to the spare; implemented by
``VersionAwareScheduler(spare_read_fraction=...)``.

Strategy 2 — **page-id transfer**: a designated active slave periodically
ships the identifiers of its hottest resident pages; the backup merely
touches them to keep them swapped in, spending almost no CPU.  This module
implements the transfer itself; the cluster layer schedules it every N
transactions.
"""

from __future__ import annotations

from typing import List

from repro.common.ids import PageId
from repro.storage.cache import PageCache


def ship_page_ids(active: PageCache, backup: PageCache, limit: int = 0) -> List[PageId]:
    """Copy the active slave's hottest page ids into the backup's cache.

    Returns the shipped ids (for network-size accounting).  ``limit = 0``
    ships the whole resident set.
    """
    count = limit if limit > 0 else active.resident_count()
    hottest = active.hottest(count)
    # Warm coldest-first so the backup's LRU order mirrors the active's.
    backup.warm(reversed(hottest))
    return hottest
