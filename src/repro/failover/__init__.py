"""Failure reconfiguration: the paper's Section 4.

* :func:`cleanup_after_master_failure` / :func:`promote_slave_to_master` —
  discard partially propagated write-sets, elect and promote a new master;
* :func:`integrate_stale_node` — version-aware page migration from a
  support slave (instead of log replay), plus index rebuild;
* :func:`restore_from_checkpoint` — reboot path from fuzzy checkpoints;
* :func:`ship_page_ids` — the page-id-transfer warm-up for spare backups
  (Figure 9); the 1 %-of-reads warm-up (Figure 8) is the scheduler's
  ``spare_read_fraction``.
"""

from repro.failover.recovery import (
    cleanup_after_master_failure,
    elect_new_master,
    ghost_wal_records,
    promote_slave_to_master,
)
from repro.failover.reintegration import (
    LocalRecovery,
    MigrationStats,
    integrate_stale_node,
    recover_from_local_disk,
    restore_from_checkpoint,
)
from repro.failover.warmup import ship_page_ids

__all__ = [
    "cleanup_after_master_failure",
    "promote_slave_to_master",
    "elect_new_master",
    "ghost_wal_records",
    "integrate_stale_node",
    "recover_from_local_disk",
    "restore_from_checkpoint",
    "LocalRecovery",
    "MigrationStats",
    "ship_page_ids",
]
