"""Capacity-limited resources and queues for the simulation kernel.

``Resource`` models a counted resource (CPU cores, disk channels).
``Server`` wraps a resource with a convenience generator that acquires a
slot, holds it for a service duration and releases it — the standard
"charge service time" pattern used by every simulated node.
``Store`` is an unbounded FIFO used for mailboxes and work queues.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List

from repro.sim.kernel import Event, Simulator


class Resource:
    """A counted resource with FIFO granting.

    Usage from a process::

        grant = resource.request()
        yield grant
        try:
            yield sim.timeout(duration)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        # Cumulative busy time bookkeeping for utilisation reporting.
        self._busy_integral = 0.0
        self._last_change = 0.0

    def _account(self) -> None:
        now = self.sim.now()
        self._busy_integral += self.in_use * (now - self._last_change)
        self._last_change = now

    def request(self) -> Event:
        """Return an event that succeeds when a slot is granted."""
        event = self.sim.event()
        if self.in_use < self.capacity and not self._waiters:
            self._account()
            self.in_use += 1
            event.succeed(None)
        else:
            self._waiters.append(event)
        return event

    def acquire(self):
        """Interrupt-safe acquisition: ``yield from resource.acquire()``.

        If the waiting process is interrupted in the same instant its grant
        fires, the slot is handed back instead of leaking.
        """
        grant = self.request()
        try:
            yield grant
        except BaseException:
            if grant.triggered and grant.ok:
                self.release()
            else:
                grant.cancel("acquire interrupted")
            raise

    def release(self) -> None:
        """Release one held slot, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise RuntimeError("release without matching request")
        self._account()
        self.in_use -= 1
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered:
                continue  # waiter was cancelled/interrupted
            self._account()
            self.in_use += 1
            waiter.succeed(None)
            break

    def utilization(self, elapsed: float) -> float:
        """Mean fraction of capacity busy over ``elapsed`` time units."""
        if elapsed <= 0:
            return 0.0
        self._account()
        return self._busy_integral / (elapsed * self.capacity)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Server:
    """A resource plus the acquire/hold/release idiom as one generator."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "server") -> None:
        self.sim = sim
        self.name = name
        self.resource = Resource(sim, capacity)
        self.jobs_done = 0

    def serve(self, duration: float) -> Generator[Event, Any, None]:
        """Hold one slot for ``duration`` virtual time units."""
        grant = self.resource.request()
        yield grant
        try:
            if duration > 0:
                yield self.sim.timeout(duration)
        finally:
            self.resource.release()
            self.jobs_done += 1

    def utilization(self, elapsed: float) -> float:
        return self.resource.utilization(elapsed)


class Store:
    """Unbounded FIFO channel between processes (mailbox semantics)."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event yielding the next item (immediately if queued)."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def drain(self) -> List[Any]:
        """Remove and return all currently queued items."""
        items = list(self._items)
        self._items.clear()
        return items

    def __len__(self) -> int:
        return len(self._items)
