"""Deterministic discrete-event simulation kernel.

The kernel is intentionally SimPy-flavoured (generator processes yielding
``Timeout``/``Event`` objects) but self-contained, since this reproduction
must run offline.  All cluster experiments in :mod:`repro.bench` execute the
*real* database and replication code under this kernel; only time is
virtual.
"""

from repro.sim.kernel import Event, Interrupt, Process, Simulator, Timeout
from repro.sim.resources import Resource, Server, Store
from repro.sim.stats import Histogram, TimeSeries, WindowedRate

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Resource",
    "Server",
    "Store",
    "TimeSeries",
    "Histogram",
    "WindowedRate",
]
