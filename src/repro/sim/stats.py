"""Measurement helpers: time series, rate windows and latency histograms.

The failover figures in the paper plot client-perceived throughput and
latency averaged over 20-second intervals; :class:`WindowedRate` and
:class:`TimeSeries` produce exactly those series.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass
class TimeSeries:
    """Append-only (time, value) samples with simple reduction helpers."""

    name: str = "series"
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series must be recorded in order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def between(self, start: float, end: float) -> "TimeSeries":
        """Sub-series with start <= t < end."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return TimeSeries(self.name, self.times[lo:hi], self.values[lo:hi])

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def bucketed(self, width: float) -> "TimeSeries":
        """Average samples into fixed-width time buckets (paper-style plots)."""
        if width <= 0:
            raise ValueError("bucket width must be positive")
        out = TimeSeries(f"{self.name}/{width:g}s")
        if not self.times:
            return out
        bucket_start = math.floor(self.times[0] / width) * width
        acc: List[float] = []
        for t, v in zip(self.times, self.values):
            while t >= bucket_start + width:
                if acc:
                    out.record(bucket_start + width / 2, sum(acc) / len(acc))
                    acc = []
                bucket_start += width
            acc.append(v)
        if acc:
            out.record(bucket_start + width / 2, sum(acc) / len(acc))
        return out

    def rows(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))


class WindowedRate:
    """Counts events and reports completions-per-second per fixed window.

    Used for WIPS (web interactions per second): ``mark`` each completed
    interaction, then :meth:`series` returns one throughput sample per
    window — the same reduction the paper uses for its throughput plots.
    """

    def __init__(self, window: float = 20.0, name: str = "rate") -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.name = name
        self._counts: Dict[int, int] = {}

    def mark(self, time: float, count: int = 1) -> None:
        self._counts[int(time // self.window)] = (
            self._counts.get(int(time // self.window), 0) + count
        )

    def series(self, start: float = 0.0, end: float | None = None) -> TimeSeries:
        """Throughput (events/sec) sampled at each window midpoint."""
        out = TimeSeries(self.name)
        if not self._counts and end is None:
            return out
        first = int(start // self.window)
        last = int(((end if end is not None else 0) // self.window))
        if self._counts:
            last = max(last, max(self._counts))
        for idx in range(first, last + 1):
            midpoint = (idx + 0.5) * self.window
            out.record(midpoint, self._counts.get(idx, 0) / self.window)
        return out

    def total(self) -> int:
        return sum(self._counts.values())


class Histogram:
    """Reservoir-free latency histogram storing raw samples.

    Experiments here record at most a few hundred thousand samples, so raw
    storage is simpler and exact percentiles are worth it.
    """

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._samples: List[float] = []

    def record(self, value: float) -> None:
        self._samples.append(value)

    def merge(self, other: "Histogram") -> None:
        self._samples.extend(other._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile ``p`` in [0, 100] by nearest-rank."""
        if not self._samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(p / 100 * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(len(self._samples)),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": max(self._samples) if self._samples else 0.0,
        }


def pretty_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (used by the benchmark reports)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
