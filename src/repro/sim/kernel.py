"""Event loop, events and generator processes.

Design notes
------------
* The event heap is ordered by ``(time, sequence)``; the sequence number
  makes simultaneous events fire in schedule order, which keeps whole
  cluster runs deterministic.
* A :class:`Process` wraps a generator.  The generator may yield:
    - a :class:`Timeout` — resume after virtual delay,
    - any :class:`Event` — resume when it succeeds (with its value),
    - another :class:`Process` — resume when the child finishes.
* Uncaught exceptions in a process fail its completion event.  If nothing
  is waiting on that event the exception is re-raised from
  :meth:`Simulator.run` — errors never pass silently.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

ProcessGen = Generator["Event", Any, Any]


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either successfully (``succeed``)
    or with an exception (``fail``).  Waiters registered before or after the
    trigger both observe the outcome.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "ok", "value", "defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._callbacks: List[Callable[[Event], None]] = []
        self.triggered = False
        self.ok = False
        self.value: Any = None
        self.defused = False

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        self.sim._ready(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.ok = False
        self.value = exc
        self.sim._ready(self)
        return self

    def cancel(self, reason: str = "cancelled") -> "Event":
        """Trigger the event as a *defused* failure.

        Waiters (if any) still see the error, but an untriggered event that
        nobody waits on can be cancelled without poisoning the run loop —
        used when a resource waiter's owner dies.
        """
        self.defused = True
        return self.fail(RuntimeError(reason))

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.triggered:
            # Already fired: deliver on the next loop iteration to keep
            # callback ordering consistent with the not-yet-fired case.
            self.sim.schedule(0.0, fn, self)
        else:
            self._callbacks.append(fn)

    # Internal: deliver outcome to registered callbacks.
    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Timeout(Event):
    """An event that succeeds after a fixed virtual delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if not self.triggered:
            self.succeed(None)


class AnyOf(Event):
    """Succeeds when the first of several events succeeds.

    The value is the (event, value) pair of the first trigger.  Failures of
    the first-triggering event propagate.
    """

    __slots__ = ("_done",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._done = False
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._done:
            return
        self._done = True
        if event.ok:
            self.succeed((event, event.value))
        else:
            self.fail(event.value)


class AllOf(Event):
    """Succeeds when every child event has succeeded (barrier).

    The value is the list of child values in construction order.  The first
    child failure fails the barrier.
    """

    __slots__ = ("_children", "_remaining", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        self._remaining = len(self._children)
        self._done = False
        if not self._children:
            self.succeed([])
            return
        for event in self._children:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._done:
            return
        if not event.ok:
            self._done = True
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._done = True
            self.succeed([e.value for e in self._children])


class Process(Event):
    """A running generator; doubles as its own completion event."""

    __slots__ = ("name", "_gen", "_target", "_interrupts", "_started", "dead")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "proc") -> None:
        super().__init__(sim)
        self.name = name
        self._gen = gen
        self._target: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        self._started = False
        self.dead = False
        sim.schedule(0.0, self._step, None)

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resumption.

        Interrupting a finished process is a no-op, which lets failure
        injectors kill node process groups without bookkeeping races.
        """
        if self.triggered:
            return
        self._interrupts.append(Interrupt(cause))
        # Detach from whatever it was waiting on and wake immediately.
        self.sim.schedule(0.0, self._step, None)

    # -- generator stepping -------------------------------------------------
    def _on_target(self, event: Event) -> None:
        if self._target is event:
            self._target = None
            self._step(event)

    def _step(self, event: Optional[Event]) -> None:
        if self.triggered:
            return
        if event is None and self._interrupts:
            # Interrupt delivery: abandon the current wait target.
            self._target = None
        elif event is None and self._started and self._target is not None:
            # Spurious wake-up (e.g. interrupt scheduled then resolved);
            # still waiting on a live target.
            return
        self._started = True
        try:
            if self._interrupts:
                exc = self._interrupts.pop(0)
                yielded = self._gen.throw(exc)
            elif event is None:
                yielded = next(self._gen)
            elif event.ok:
                yielded = self._gen.send(event.value)
            else:
                yielded = self._gen.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # Interrupt escaped the generator: treat as cancellation.
            self.dead = True
            self.succeed(exc.cause)
            return
        except BaseException as exc:  # noqa: BLE001 - must forward all
            self.fail(exc)
            return
        if not isinstance(yielded, Event):
            self.fail(TypeError(f"process {self.name} yielded {yielded!r}"))
            return
        self._target = yielded
        yielded.add_callback(self._on_target)


class Simulator:
    """The event loop: a heap of timed callbacks plus a virtual clock.

    Zero-delay callbacks — event deliveries, process wake-ups, immediate
    timeouts — dominate every workload, so they bypass the heap entirely
    and go onto a FIFO *ready queue*.  This is ordering-exact with the
    pure-heap implementation: a heap entry due at the current time ``T``
    was necessarily pushed at some earlier time (positive delays only land
    strictly in the future), hence with a smaller sequence number than any
    ready entry appended *at* ``T``.  Draining due heap entries first and
    then the ready queue in FIFO order therefore reproduces the exact
    ``(time, seq)`` dispatch order.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self._ready_q: Deque[Tuple[Callable, tuple]] = deque()
        self._seq = 0
        self._unhandled: List[BaseException] = []
        #: Zero-delay dispatches that bypassed the heap.  Deliberately a
        #: plain attribute, not a :class:`Counters` entry: fingerprints hash
        #: every counter and this must not perturb legacy fingerprints.
        self.fast_resumes = 0

    def now(self) -> float:
        return self._now

    # -- scheduling ----------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` units of virtual time."""
        if delay == 0.0:
            self.fast_resumes += 1
            self._ready_q.append((fn, args))
            return
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        when = self._now + delay
        if when <= self._now:  # delay below float resolution: treat as now
            self.fast_resumes += 1
            self._ready_q.append((fn, args))
            return
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, fn, args))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        """Start a new process from a generator."""
        return Process(self, gen, name=name)

    # -- event outcome delivery ----------------------------------------------
    def _ready(self, event: Event) -> None:
        self.fast_resumes += 1
        self._ready_q.append((self._deliver, (event,)))

    def _deliver(self, event: Event) -> None:
        if not event.ok and not event._callbacks and not event.defused:
            # Nobody is waiting: surface the error from run().
            if not isinstance(event, Process) or not event.dead:
                self._unhandled.append(event.value)
        event._dispatch()

    # -- main loop -------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains or ``until`` is reached.

        Returns the virtual time at which the loop stopped.  Re-raises the
        first unhandled process exception, if any.
        """
        heap = self._heap
        ready = self._ready_q
        pop = heapq.heappop
        unhandled = self._unhandled
        while True:
            # Due heap entries (pushed before now, so smaller seq) first.
            if heap and heap[0][0] <= self._now:
                entry = pop(heap)
                fn = entry[2]
                fn(*entry[3])
            elif ready:
                fn, args = ready.popleft()
                fn(*args)
            elif heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                entry = pop(heap)
                self._now = when
                fn = entry[2]
                fn(*entry[3])
            else:
                if until is not None and until > self._now:
                    self._now = until
                break
            if unhandled:
                raise unhandled.pop(0)
        return self._now

    def run_until_complete(self, process: Process, limit: float = 1e12) -> Any:
        """Run until ``process`` finishes; return its value (or raise)."""
        self.run(until=None if limit is None else self._now + limit)
        if not process.triggered:
            raise RuntimeError(f"process {process.name} did not finish by t={self._now}")
        if not process.ok:
            raise process.value
        return process.value
