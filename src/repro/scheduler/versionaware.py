"""The version-aware DMV scheduler (Section 2.2 of the paper).

Routing rules:

* update transactions go to the master of their conflict class (single
  master fallback when classes are unknown);
* read-only transactions are tagged with the latest merged version vector
  and sent to a replica already serving that exact version if one exists,
  otherwise to the least-loaded active slave;
* optionally, reads whose tables do not intersect a master's conflict
  classes may run on that master;
* a configurable fraction of reads is diverted to warm spare backups
  (the Figure 8 warm-up strategy);
* under partial replication (any slave with a declared interest set),
  routing goes coverage-then-version: a slave is a candidate only if its
  interest covers every table the read touches (``sched.coverage_rejects``
  counts the shed candidates) *and* its acked versions are fresh enough
  for the read's tag; with no fresh covering slave the read falls back to
  a master (``sched.partial_master_fallbacks``), which always holds
  current state.

The scheduler's only hard state is the version vector (plus the query log
for the persistence tier), which is why scheduler failover is nearly free:
peers merely merge version vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.counters import Counters
from repro.common.errors import NodeUnavailable
from repro.common.ids import NodeId
from repro.common.rng import RngStream
from repro.common.versions import VersionVector
from repro.core.conflictclass import ConflictClassMap
from repro.obs import NULL_TRACER, Tracer
from repro.scheduler.querylog import LoggedUpdate, QueryLog


@dataclass
class SlaveState:
    """What the scheduler tracks per in-memory replica."""

    node_id: NodeId
    spare: bool = False
    outstanding: int = 0
    #: True while the replica is demoted to catch-up mode (laggard): it
    #: keeps receiving write-sets best-effort but is excluded from the
    #: commit ack set and from fresh-version read routing.
    demoted: bool = False
    #: version vector of the last read-only txn routed here (affinity).
    last_tag: VersionVector = field(default_factory=VersionVector)


@dataclass(frozen=True)
class RoutedRead:
    """Routing decision for one read-only transaction."""

    node_id: NodeId
    tag: VersionVector


#: Shared all-zeroes vector for freshness checks on slaves with no acked
#: history yet (every ``get`` returns 0 — fresh only against a zero tag).
_EMPTY_VECTOR = VersionVector()


class VersionAwareScheduler:
    """Pure routing + version bookkeeping for the in-memory tier."""

    def __init__(
        self,
        scheduler_id: NodeId,
        conflict_map: ConflictClassMap,
        rng: Optional[RngStream] = None,
        reads_on_master: bool = False,
        spare_read_fraction: float = 0.0,
        counters: Optional[Counters] = None,
    ) -> None:
        self.scheduler_id = scheduler_id
        self.conflict_map = conflict_map
        self.rng = rng if rng is not None else RngStream(0, "scheduler", scheduler_id)
        self.reads_on_master = reads_on_master
        self.spare_read_fraction = spare_read_fraction
        self.counters = counters if counters is not None else Counters()
        #: Set by the cluster when tracing is enabled; routing decisions
        #: become instant events so a trace shows *why* a read landed where
        #: it did (affinity hit, spare diversion, least-loaded fallback).
        self.tracer: Tracer = NULL_TRACER
        self.latest = VersionVector()
        self.slaves: Dict[NodeId, SlaveState] = {}
        self.masters: Set[NodeId] = set(conflict_map.masters_in_use())
        self.query_log = QueryLog()
        #: Partial-replication routing state, kept OUT of SlaveState so it
        #: survives the slave-pool rebuilds of scheduler takeover and
        #: crash/rejoin cycles.  ``_interest`` holds only the partial
        #: entries (a full subscriber is simply absent); its emptiness is
        #: the legacy fast path — no entry, no partial routing, no new
        #: counters, bit-identical fingerprints.  ``_known`` tracks the
        #: per-slave acked version vector the coverage router's freshness
        #: check consults (fed by the cluster after each ack barrier).
        self._interest: Dict[NodeId, FrozenSet[str]] = {}
        self._known: Dict[NodeId, VersionVector] = {}
        #: Where the partial-routing counters (``sched.coverage_rejects``,
        #: ``sched.partial_master_fallbacks``) are recorded.  The cluster
        #: repoints this at its own merged-and-fingerprinted counters so
        #: chaos reports surface them; the legacy counters stay on the
        #: scheduler's private object, keeping full-replication
        #: fingerprints byte-identical.
        self.partial_counters = self.counters

    # -- topology -----------------------------------------------------------------
    def add_slave(self, node_id: NodeId, spare: bool = False) -> None:
        self.slaves[node_id] = SlaveState(node_id, spare=spare)
        if self._interest:
            # A slave (re)joining the pool is current: initial construction
            # happens before any commit, and a rejoin completes data
            # migration before re-adding.  Seed its acked vector so the
            # freshness check does not shed it until it actually lags.
            self._known[node_id] = self.latest.copy()

    def remove_node(self, node_id: NodeId) -> None:
        self.slaves.pop(node_id, None)
        self.masters.discard(node_id)

    def promote_spare(self, node_id: NodeId) -> None:
        """Turn a warm backup into an active slave (failover)."""
        state = self.slaves.get(node_id)
        if state is None:
            raise NodeUnavailable(f"unknown spare {node_id}")
        state.spare = False

    def active_slaves(self) -> List[SlaveState]:
        return [s for s in self.slaves.values() if not s.spare and not s.demoted]

    def spare_slaves(self) -> List[SlaveState]:
        return [s for s in self.slaves.values() if s.spare and not s.demoted]

    def demoted_slaves(self) -> List[SlaveState]:
        return [s for s in self.slaves.values() if s.demoted]

    # -- partial replication (interest sets) ------------------------------------------
    def set_interest(
        self, node_id: NodeId, tables: Optional[Iterable[str]]
    ) -> None:
        """Declare one replica's interest set (``None`` = full replication).

        Declaring everything full empties the partial state entirely and
        restores legacy routing.
        """
        if tables is None:
            self._interest.pop(node_id, None)
            if not self._interest:
                self._known.clear()
        else:
            self._interest[node_id] = frozenset(tables)

    @property
    def partial_routing(self) -> bool:
        return bool(self._interest)

    def note_slave_versions(self, node_id: NodeId, versions: Dict[str, int]) -> None:
        """Record versions a slave positively acknowledged (freshness input)."""
        known = self._known.get(node_id)
        if known is None:
            known = self._known[node_id] = VersionVector()
        known.merge(VersionVector(versions))

    def _covers(self, node_id: NodeId, tables: Sequence[str]) -> bool:
        interest = self._interest.get(node_id)
        if interest is None:
            return True
        return all(table in interest for table in tables)

    def _fresh_enough(
        self, node_id: NodeId, tag: VersionVector, tables: Sequence[str]
    ) -> bool:
        known = self._known.get(node_id)
        if known is None:
            known = _EMPTY_VECTOR
        return all(known.get(table) >= tag.get(table) for table in tables)

    def set_demoted(self, node_id: NodeId, demoted: bool) -> None:
        """Mark a laggard replica demoted (or restore it after rejoin).

        A demoted replica stays in the pool — it is alive and heartbeating
        — but no fresh-version reads are routed to it and the cluster's
        commit path excludes it from the ack barrier.
        """
        state = self.slaves.get(node_id)
        if state is not None:
            state.demoted = demoted

    # -- routing --------------------------------------------------------------------
    def route_update(self, tables: Iterable[str]) -> NodeId:
        master = self.conflict_map.master_for_tables(tables)
        self.counters.add("sched.updates_routed")
        if self.tracer.enabled:
            self.tracer.instant(
                "route", kind="update", node=master, scheduler=self.scheduler_id
            )
        return master

    def route_read(self, tables: Sequence[str]) -> RoutedRead:
        """Tag with the latest version vector and pick a replica."""
        tag = self.latest.copy()
        self.counters.add("sched.reads_routed")
        spares = self.spare_slaves()
        if spares and self.spare_read_fraction > 0:
            if self.rng.random() < self.spare_read_fraction:
                spare = min(spares, key=lambda s: (s.outstanding, s.node_id))
                self.counters.add("sched.reads_to_spares")
                return self._assign(spare, tag, reason="spare-diversion")
        candidates = self.active_slaves()
        if self._interest:
            return self._route_read_partial(tables, tag, candidates)
        if self.reads_on_master and not candidates:
            for master in sorted(self.masters):
                if not self.conflict_map.conflicts_with_master(master, tables):
                    self.counters.add("sched.reads_on_master")
                    if self.tracer.enabled:
                        self.tracer.instant(
                            "route", kind="read", node=master,
                            scheduler=self.scheduler_id, reason="read-on-master",
                        )
                    return RoutedRead(master, tag)
        if not candidates:
            raise NodeUnavailable("no active slaves available for read routing")
        # Prefer replicas already serving exactly this version.
        same_version = [s for s in candidates if s.last_tag == tag]
        pool = same_version if same_version else candidates
        if same_version:
            self.counters.add("sched.reads_version_affinity")
        chosen = min(pool, key=lambda s: (s.outstanding, s.node_id))
        return self._assign(
            chosen, tag,
            reason="version-affinity" if same_version else "least-loaded",
        )

    def _route_read_partial(
        self, tables: Sequence[str], tag: VersionVector, candidates: List[SlaveState]
    ) -> RoutedRead:
        """Coverage-then-version routing (partial replication).

        Coverage is checked first: a fresh-but-uncovering slave is never a
        candidate (it cannot answer the query at all), and every shed
        candidate counts one ``sched.coverage_rejects``.  Freshness is
        checked second: a stale-but-covering slave is passed over for the
        master fallback rather than serving a stale tag.  Masters always
        hold current state for their own classes (and, as dual nodes or
        the single legacy master, for everything), so the fallback is
        always safe — just unscalable, which is why it has its own
        counter.
        """
        covering = []
        rejects = 0
        for state in candidates:
            if self._covers(state.node_id, tables):
                covering.append(state)
            else:
                rejects += 1
        if rejects:
            self.partial_counters.add("sched.coverage_rejects", rejects)
        fresh = [
            state
            for state in covering
            if self._fresh_enough(state.node_id, tag, tables)
        ]
        if fresh:
            same_version = [s for s in fresh if s.last_tag == tag]
            pool = same_version if same_version else fresh
            if same_version:
                self.counters.add("sched.reads_version_affinity")
            chosen = min(pool, key=lambda s: (s.outstanding, s.node_id))
            return self._assign(
                chosen, tag,
                reason="version-affinity" if same_version else "coverage-fresh",
            )
        for master in sorted(self.masters):
            # An original master holds everything; a promoted ex-partial
            # dual master only its inherited classes plus its old interest
            # — fall back to the first master that actually covers.
            if not self._covers(master, tables):
                continue
            self.partial_counters.add("sched.partial_master_fallbacks")
            if self.tracer.enabled:
                self.tracer.instant(
                    "route", kind="read", node=master,
                    scheduler=self.scheduler_id, reason="partial-master-fallback",
                )
            return RoutedRead(master, tag)
        raise NodeUnavailable("no covering replica or master for read routing")

    def _assign(
        self, state: SlaveState, tag: VersionVector, reason: str = "least-loaded"
    ) -> RoutedRead:
        state.outstanding += 1
        state.last_tag = tag
        if self.tracer.enabled:
            self.tracer.instant(
                "route", kind="read", node=state.node_id,
                scheduler=self.scheduler_id, reason=reason, tag=tag.as_dict(),
            )
        return RoutedRead(state.node_id, tag)

    def note_read_done(self, node_id: NodeId) -> None:
        state = self.slaves.get(node_id)
        if state is not None and state.outstanding > 0:
            state.outstanding -= 1

    # -- commit bookkeeping ------------------------------------------------------------
    def on_master_commit(
        self,
        master_id: NodeId,
        versions: Dict[str, int],
        queries: Sequence[Tuple[str, Tuple]] = (),
        txn_id: int = 0,
    ) -> None:
        """Merge the master's new version vector; log queries for disk tier."""
        self.latest.merge(VersionVector(versions))
        if queries:
            self.query_log.append(LoggedUpdate(txn_id, tuple(queries), dict(versions)))
        self.counters.add("sched.commits_recorded")

    # -- failure reconfiguration ----------------------------------------------------------
    def on_master_failure(self, failed: NodeId, replacement: NodeId) -> int:
        """Repoint the failed master's conflict classes at the replacement."""
        self.slaves.pop(replacement, None)  # promoted slave leaves the pool
        self.masters.discard(failed)
        self.masters.add(replacement)
        return self.conflict_map.reassign_master(failed, replacement)

    def on_class_rehome(self, class_id: int, new_master: NodeId) -> None:
        """One conflict class moved to a new (already serving) master.

        The shared conflict map carries the new assignment (and its bumped
        ``assignment_epoch``); this hook only keeps the scheduler's master
        set — used to veto master-local reads on owned tables — in step.
        """
        self.masters.add(new_master)
        self.counters.add("sched.class_rehomes")

    @property
    def routing_epoch(self) -> int:
        """The epoch stamp of the class→master table routes go through.

        Bumped by every split/merge/re-home/failover reassignment; a
        router comparing epochs across a parked update's wait detects that
        its earlier routing decision went stale.
        """
        return self.conflict_map.assignment_epoch

    # -- peer replication (scheduler failover) ----------------------------------------------
    def export_state(self) -> Dict[str, int]:
        """The scheduler's tiny replicable state: just DBVersion."""
        return self.latest.as_dict()

    def import_state(self, state: Dict[str, int]) -> None:
        self.latest.merge(VersionVector(state))
