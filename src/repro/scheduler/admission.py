"""Scheduler-side admission control: token buckets + queue-delay watermark.

Sits in front of routing (reads) and master admission (updates) and
decides, per arriving request, whether to serve it or to shed it *now*,
cheaply — before it consumes a connection, a scheduler slot or a master
MPL token.  Two independent signals, both default-off:

* **Per-tenant token buckets** (``admission_rate``/``admission_burst``):
  each tenant gets its own bucket, so one tenant's flash crowd exhausts
  only its own tokens and the other tenants keep their allocation —
  the shed-rate fairness invariant audits exactly this.

* **Queue-delay watermark** (``admission_queue_watermark``): an EWMA of
  the master-admission queueing delay.  When it exceeds the watermark the
  cluster is already bufferbloated — serving more arrivals only grows the
  queue — so new work is shed, cheapest-to-retry first: reads shed at the
  watermark, updates only at ``watermark * admission_shed_update_factor``
  (aborted updates waste master work; rejected reads retry against an
  untouched cluster).

Pure state machine on the virtual clock: no events, no RNG, so the
controller's existence cannot perturb a seeded run.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class AdmissionController:
    """Decides admit/shed per request from config knobs (all default-off)."""

    def __init__(self, config) -> None:
        self.rate = config.admission_rate
        self.burst = config.admission_burst if config.admission_burst > 0 else self.rate
        self.watermark = config.admission_queue_watermark
        self.update_factor = max(1.0, config.admission_shed_update_factor)
        self.alpha = config.admission_delay_alpha
        self.halflife = config.admission_delay_halflife
        #: EWMA of observed master-admission queueing delay (seconds).
        self.queue_delay = 0.0
        self._delay_stamp = 0.0
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self.rejects_by_tenant: Dict[str, int] = {}
        self.rejects_by_cause: Dict[str, int] = {}

    def _decay(self, now: float) -> None:
        # The congestion signal must expire on its own: when the watermark
        # sheds everything at the door no update is admitted, so no fresh
        # delay observation would ever pull the EWMA back down and the
        # controller would latch shut forever (a self-inflicted metastable
        # state).  Exponential decay between observations breaks the latch.
        if self.halflife > 0 and now > self._delay_stamp:
            self.queue_delay *= 0.5 ** ((now - self._delay_stamp) / self.halflife)
        self._delay_stamp = max(self._delay_stamp, now)

    def observe_queue_delay(self, delay: float, now: float) -> None:
        """Feed one measured admission-queue delay into the EWMA."""
        self._decay(now)
        self.queue_delay += self.alpha * (delay - self.queue_delay)

    def _spend_token(self, tenant: str, now: float) -> bool:
        tokens, last = self._buckets.get(tenant, (self.burst, now))
        if now > last:
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            last = now
        if tokens >= 1.0:
            self._buckets[tenant] = (tokens - 1.0, last)
            return True
        self._buckets[tenant] = (tokens, last)
        return False

    def admit(self, kind: str, tenant: str, now: float) -> Optional[str]:
        """Return None to admit, or a shed cause (``token-bucket`` /
        ``queue-delay``) to reject ``kind`` (``read`` | ``update``)."""
        self._decay(now)
        cause: Optional[str] = None
        if self.rate > 0 and not self._spend_token(tenant, now):
            cause = "token-bucket"
        elif self.watermark > 0:
            threshold = self.watermark * (self.update_factor if kind == "update" else 1.0)
            if self.queue_delay > threshold:
                cause = "queue-delay"
        if cause is not None:
            self.rejects_by_tenant[tenant] = self.rejects_by_tenant.get(tenant, 0) + 1
            self.rejects_by_cause[cause] = self.rejects_by_cause.get(cause, 0) + 1
        return cause
