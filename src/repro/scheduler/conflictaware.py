"""Conflict-aware scheduler for the replicated on-disk baseline.

Models the paper's §6.2 comparison system: a small set of *active* on-disk
replicas kept consistent by applying every update on each of them
(conflict-aware ordering collapses to a single total order here because the
scheduler serialises update routing), plus a *passive* backup that is
refreshed from the update log only every ``refresh_interval`` (30 minutes
in the paper).  On failover the backup must replay its entire log lag
before serving reads — which is exactly the long "DB update" phase in
Figures 5(a,b) and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.counters import Counters
from repro.common.errors import NodeUnavailable
from repro.common.ids import NodeId
from repro.scheduler.querylog import LoggedUpdate, QueryLog


@dataclass
class DiskReplicaState:
    node_id: NodeId
    passive: bool = False
    outstanding: int = 0


class ConflictAwareScheduler:
    """Routing and log bookkeeping for the on-disk replicated tier."""

    def __init__(self, scheduler_id: NodeId, counters: Optional[Counters] = None) -> None:
        self.scheduler_id = scheduler_id
        self.counters = counters if counters is not None else Counters()
        self.replicas: Dict[NodeId, DiskReplicaState] = {}
        self.query_log = QueryLog()
        self._txn_counter = 0

    # -- topology --------------------------------------------------------------
    def add_replica(self, node_id: NodeId, passive: bool = False) -> None:
        self.replicas[node_id] = DiskReplicaState(node_id, passive=passive)
        self.query_log.set_cursor(node_id, len(self.query_log) if not passive else 0)

    def remove_replica(self, node_id: NodeId) -> None:
        self.replicas.pop(node_id, None)

    def active_replicas(self) -> List[DiskReplicaState]:
        return [r for r in self.replicas.values() if not r.passive]

    def passive_replicas(self) -> List[DiskReplicaState]:
        return [r for r in self.replicas.values() if r.passive]

    @property
    def routing_epoch(self) -> int:
        """API parity with ``VersionAwareScheduler.routing_epoch``.

        The on-disk baseline routes every update to every active replica
        (write-all, one total order), so its routing table never changes
        shape: the epoch is constant 0.
        """
        return 0

    # -- routing -----------------------------------------------------------------
    def route_read(self) -> NodeId:
        candidates = self.active_replicas()
        if not candidates:
            raise NodeUnavailable("no active on-disk replicas")
        chosen = min(candidates, key=lambda r: (r.outstanding, r.node_id))
        chosen.outstanding += 1
        self.counters.add("casched.reads_routed")
        return chosen.node_id

    def note_read_done(self, node_id: NodeId) -> None:
        state = self.replicas.get(node_id)
        if state is not None and state.outstanding > 0:
            state.outstanding -= 1

    def update_targets(self) -> List[NodeId]:
        """Updates are applied on every *active* replica (write-all)."""
        self.counters.add("casched.updates_routed")
        return [r.node_id for r in self.active_replicas()]

    # -- update logging / backup refresh --------------------------------------------
    def log_update(self, queries: Sequence[Tuple[str, Tuple]]) -> LoggedUpdate:
        self._txn_counter += 1
        entry = LoggedUpdate(self._txn_counter, tuple(queries))
        self.query_log.append(entry)
        for replica in self.active_replicas():
            # Active replicas applied it synchronously; advance their cursor.
            self.query_log.set_cursor(replica.node_id, len(self.query_log))
        return entry

    def backup_lag(self, node_id: NodeId) -> int:
        return self.query_log.lag_of(node_id)

    def refresh_batch(self, node_id: NodeId) -> List[LoggedUpdate]:
        """Everything the passive backup is missing (periodic refresh)."""
        batch = self.query_log.pending_for(node_id)
        self.query_log.advance(node_id, len(batch))
        self.counters.add("casched.refresh_batches")
        return batch

    # -- failover ---------------------------------------------------------------------
    def promote_backup(self, node_id: NodeId) -> int:
        """Activate a passive backup; returns the log lag it must replay."""
        state = self.replicas.get(node_id)
        if state is None:
            raise NodeUnavailable(f"unknown backup {node_id}")
        lag = self.backup_lag(node_id)
        state.passive = False
        self.counters.add("casched.promotions")
        return lag
