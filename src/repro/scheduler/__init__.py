"""Schedulers: transaction routing for the in-memory and on-disk tiers.

* :class:`VersionAwareScheduler` — the paper's DMV scheduler: routes update
  transactions to conflict-class masters, tags read-only transactions with
  the latest merged version vector and places them on replicas already
  serving that version (falling back to load balancing).
* :class:`ConflictAwareScheduler` — the replicated on-disk baseline
  (the paper's §6.2 InnoDB configuration with a conflict-aware scheduler).
* :class:`QueryLog` — the scheduler-side log of committed update queries,
  used to feed the persistence tier and to refresh stale backups.

These are pure routing/state objects; the cluster layer moves the actual
messages and reports completions back.
"""

from repro.scheduler.querylog import LoggedUpdate, QueryLog
from repro.scheduler.versionaware import RoutedRead, SlaveState, VersionAwareScheduler
from repro.scheduler.conflictaware import ConflictAwareScheduler

__all__ = [
    "VersionAwareScheduler",
    "RoutedRead",
    "SlaveState",
    "ConflictAwareScheduler",
    "QueryLog",
    "LoggedUpdate",
]
