"""The scheduler's log of committed update transactions.

Upon each commit confirmed by an in-memory master, the scheduler logs the
transaction's update queries (as query strings — a "lightweight database
insert" in the paper) and forwards them asynchronously to the on-disk
persistence tier.  The same log refreshes stale backups and replays missing
updates during on-disk failover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class LoggedUpdate:
    """One committed update transaction: its queries and commit versions."""

    txn_id: int
    queries: Tuple[Tuple[str, Tuple], ...]  # (sql, params) in execution order
    versions: Dict[str, int] = field(default_factory=dict)

    def byte_size(self) -> int:
        total = 32
        for sql, params in self.queries:
            total += len(sql) + sum(len(str(p)) + 2 for p in params)
        return total


class QueryLog:
    """Append-only log of committed updates with replay cursors."""

    def __init__(self) -> None:
        self._entries: List[LoggedUpdate] = []
        #: consumer name -> index of the next entry it has not seen.
        self._cursors: Dict[str, int] = {}

    def append(self, entry: LoggedUpdate) -> int:
        """Append one committed transaction; returns its log index."""
        self._entries.append(entry)
        return len(self._entries) - 1

    def __len__(self) -> int:
        return len(self._entries)

    def since(self, index: int) -> List[LoggedUpdate]:
        return self._entries[index:]

    # -- consumer cursors (on-disk replicas, stale backups) -------------------------
    def cursor(self, consumer: str) -> int:
        return self._cursors.get(consumer, 0)

    def pending_for(self, consumer: str) -> List[LoggedUpdate]:
        return self._entries[self.cursor(consumer):]

    def advance(self, consumer: str, count: int) -> None:
        self._cursors[consumer] = min(self.cursor(consumer) + count, len(self._entries))

    def set_cursor(self, consumer: str, index: int) -> None:
        self._cursors[consumer] = max(0, min(index, len(self._entries)))

    def lag_of(self, consumer: str) -> int:
        """How many committed transactions the consumer has not applied."""
        return len(self._entries) - self.cursor(consumer)

    def bytes_since(self, index: int) -> int:
        return sum(e.byte_size() for e in self._entries[index:])
