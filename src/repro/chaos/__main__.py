"""CLI entry point: ``PYTHONPATH=src python -m repro.chaos [--seed N]``.

Runs one seeded chaos scenario, prints the report (fault plan, client
metrics, chaos counters, invariant verdicts, fingerprint) and exits
non-zero if any invariant failed — the CI chaos-smoke contract.
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos.scenario import (
    default_chaos_plan,
    durability_chaos_plan,
    overload_chaos_plan,
    partial_chaos_plan,
    partial_interest_sets,
    run_chaos_scenario,
    straggler_chaos_plan,
    write_scaleout_chaos_plan,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.chaos", description="Run one seeded chaos scenario."
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument("--duration", type=float, default=200.0, help="virtual seconds")
    parser.add_argument("--browsers", type=int, default=16, help="emulated browsers")
    parser.add_argument("--mix", default="ordering", help="TPC-W mix name")
    parser.add_argument(
        "--plan",
        choices=(
            "default", "straggler", "durability", "write-scaleout", "partial",
            "overload",
        ),
        default="default",
        help="fault plan: 'default' (loss + partition + master crash), "
        "'straggler' (lossy fabric + one slow-but-alive slave), "
        "'durability' (durable WAL, storage faults, restart-from-own-disk), "
        "'write-scaleout' (two masters, flash write load, forced class "
        "re-homes, master kill during handoff), 'partial' (interest-set "
        "partial replication + hot/cold tiering, crash of a range's sole "
        "extra replica) or 'overload' (open-loop flash-crowd traffic with "
        "admission control, request deadlines and retry budgets on)",
    )
    parser.add_argument(
        "--interest",
        default=None,
        metavar="SPEC",
        help="interest-set spec 'node=t1,t2;node=*' (partial replication; "
        "--plan partial supplies its canonical assignment when omitted)",
    )
    parser.add_argument(
        "--min-replication-factor",
        type=int,
        default=None,
        help="alive covering nodes required per table by the "
        "interest-coverage invariant (default: 1; --plan partial: 2)",
    )
    parser.add_argument(
        "--slave-cache-pages",
        type=int,
        default=None,
        help="resident-page budget per slave (hot/cold tiering; subscribed "
        "but cold pages spill and re-fault; --plan partial: 16)",
    )
    parser.add_argument(
        "--ack-policy",
        choices=("all", "quorum", "all-healthy"),
        default="all",
        help="pre-commit ack policy (non-default policies enable laggard demotion)",
    )
    parser.add_argument(
        "--quorum-k",
        type=int,
        default=1,
        help="slave acks required per commit under --ack-policy quorum",
    )
    parser.add_argument(
        "--read-concurrency",
        choices=("occ", "2pl"),
        default="occ",
        help="master read/validation path: optimistic read validation (default) "
        "or legacy shared-mode 2PL (reproduces pre-OCC fingerprints)",
    )
    parser.add_argument(
        "--min-commits",
        type=int,
        default=0,
        help="fail unless at least this many interactions completed",
    )
    parser.add_argument(
        "--expect-fingerprint",
        default=None,
        help="fail unless the metrics fingerprint matches (reproducibility gate)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record transaction spans; prints the per-stage latency table "
        "and writes a Chrome-trace JSON (see --trace-out)",
    )
    parser.add_argument(
        "--trace-out",
        default="chaos-trace.json",
        metavar="PATH",
        help="Chrome-trace output path when --trace is set "
        "(open in Perfetto / chrome://tracing)",
    )
    args = parser.parse_args(argv)

    plan_builder = {
        "default": default_chaos_plan,
        "straggler": straggler_chaos_plan,
        "durability": durability_chaos_plan,
        "write-scaleout": write_scaleout_chaos_plan,
        "partial": partial_chaos_plan,
        "overload": overload_chaos_plan,
    }[args.plan]
    from repro.cluster.costs import CostConfig

    durable = args.plan == "durability"
    scaleout = args.plan == "write-scaleout"
    partial = args.plan == "partial"
    overload = args.plan == "overload"
    multi_master_kwargs = {}
    if scaleout:
        from repro.tpcw.schema import tpcw_conflict_map

        multi_master_kwargs = dict(
            multi_master=True,
            num_masters=2,
            conflict_map=tpcw_conflict_map(multi_master=True),
        )
    interest_sets = None
    if args.interest:
        from repro.cluster.interest import parse_interest_spec

        interest_sets = parse_interest_spec(args.interest)
    elif partial:
        interest_sets = partial_interest_sets()
    min_rf = args.min_replication_factor
    if min_rf is None:
        min_rf = 2 if partial else 1
    slave_cache_pages = args.slave_cache_pages
    if slave_cache_pages is None and partial:
        # Tighter than the ~35-page TPC-W base image: the aggregate
        # dataset exceeds 2x one slave's budget, so subscribed-but-cold
        # pages must spill and re-fault (the tiering model under test).
        slave_cache_pages = 16
    traffic = None
    if overload:
        # Open-loop flash crowd with the full defense stack on, layered on
        # the bounded-MPL + epoch-commit server shape; the OFF comparison
        # lives in the bench harness (--overload-compare).
        from repro.traffic.scenario import (
            flash_crowd_scenario,
            overload_defense_config,
        )

        traffic = flash_crowd_scenario(duration=args.duration, seed=args.seed)
        cost_config = overload_defense_config(read_concurrency=args.read_concurrency)
    else:
        cost_config = CostConfig(
            read_concurrency=args.read_concurrency,
            durable_wal=durable,
            update_mpl=4 if scaleout else 0,
            epoch_max_txns=4 if scaleout else 1,
            epoch_ms=5.0 if scaleout else 0.0,
            dynamic_classes=scaleout,
            rebalance_interval=5.0 if scaleout else 0.0,
        )
    report = run_chaos_scenario(
        seed=args.seed,
        plan=plan_builder(args.seed, args.duration),
        duration=args.duration,
        browsers=args.browsers,
        mix_name=args.mix,
        trace=args.trace,
        ack_policy=args.ack_policy,
        quorum_k=args.quorum_k,
        cost_config=cost_config,
        checkpoint_period=args.duration / 10.0 if durable else 0.0,
        interest_sets=interest_sets,
        min_replication_factor=min_rf,
        slave_cache_pages=slave_cache_pages,
        traffic=traffic,
        **multi_master_kwargs,
    )
    print(report.summary())
    if args.trace and report.tracer is not None:
        from repro.obs import write_chrome_trace

        events = write_chrome_trace(args.trace_out, report.tracer)
        print(f"trace: {events} events -> {args.trace_out}")
    ok = report.ok()
    if args.min_commits and report.completed < args.min_commits:
        print(f"FAIL: only {report.completed} commits (< {args.min_commits})")
        ok = False
    if report.counters.get("net.retransmits", 0) <= 0:
        print("FAIL: chaos run exercised no retransmissions")
        ok = False
    if report.counters.get("net.dups_ignored", 0) <= 0:
        print("FAIL: chaos run exercised no duplicate filtering")
        ok = False
    if args.expect_fingerprint and report.fingerprint != args.expect_fingerprint:
        print(
            f"FAIL: fingerprint {report.fingerprint} != expected {args.expect_fingerprint}"
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
