"""Jepsen-lite cluster invariant checkers (run after quiescence).

Each checker audits one safety property of the DMV replication protocol
after a chaos run has stopped its workload and drained in-flight work:

* **durable-commits** — no browser-acknowledged commit is lost: every
  entry of the cluster's commit log is covered by the replicated state of
  every alive, subscribed, caught-up replica.
* **replica-convergence** — the per-table version watermarks of all alive
  subscribed replicas agree (eager propagation + retransmission converged).
* **snapshot-consistency** — stronger than version agreement: fully
  materialised table *contents* are byte-identical across replicas (a
  sampled read at the latest snapshot returns the same rows everywhere).
* **counter-conservation** — every write-set transmission is accounted
  for exactly once: ``net.write_sets_sent == slave.write_sets_received +
  net.dups_ignored + net.drops`` over the merged per-node counters.
* **durable-prefix** / **no-ghost-commits** (durable-WAL clusters only) —
  restart-from-own-disk recovered everything confirmed before the crash,
  and no never-acknowledged WAL record resurfaced through recovery.

Checkers only inspect *alive* replicas: the fail-stop model (an
unreachable node is a failed node, and is killed by suspicion) means dead
nodes carry no obligations until they reintegrate — at which point data
migration restores them and the invariants apply again.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.counters import Counters


@dataclass(frozen=True)
class InvariantResult:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "OK  " if self.ok else "FAIL"
        return f"[{status}] {self.name}" + (f": {self.detail}" if self.detail else "")


def _checked_nodes(cluster) -> List:
    """Replicas that carry invariant obligations right now."""
    return [
        node
        for node in cluster.nodes.values()
        if node.alive
        and node.subscribed
        and node.slave is not None
        and not node.slave.catching_up
    ]


def _covers(cluster, node, table: str) -> bool:
    """Does ``node`` carry replication obligations for ``table``?

    Full replication (no interest registry, or an all-full one) covers
    everything; under partial replication a pure slave is only obliged to
    hold tables inside its interest set.  Masters always cover — they
    execute the updates themselves.
    """
    registry = getattr(cluster, "interest", None)
    if registry is None or node.master is not None:
        return True
    return registry.covers_table(node.node_id, table)


def _table_watermark(node, table: str) -> int:
    """Highest version of ``table`` this node is known to hold.

    The received-versions vector is the primary source; page versions
    (including pending-queue headroom) cover reintegrated nodes whose
    migrated pages are newer than anything they received since rejoining.
    A co-located master role contributes its engine versions.
    """
    best = 0
    if node.slave is not None:
        best = max(best, node.slave.received_versions.get(table))
        for page_id, version in node.slave.page_versions().items():
            if page_id.table == table and version > best:
                best = version
    if node.master is not None:
        best = max(best, node.master.current_versions().get(table))
    return best


def check_durable_commits(cluster) -> InvariantResult:
    """Every scheduler-confirmed commit survives on every alive replica."""
    nodes = _checked_nodes(cluster)
    missing: List[str] = []
    for master_id, txn_id, versions in cluster.commit_log:
        for node in nodes:
            for table, version in versions.items():
                if not _covers(cluster, node, table):
                    continue
                have = _table_watermark(node, table)
                if have < version:
                    missing.append(
                        f"txn {txn_id} ({master_id}, {table}=v{version}) "
                        f"absent on {node.node_id} (at v{have})"
                    )
    detail = f"{len(cluster.commit_log)} commits audited on {len(nodes)} replicas"
    if missing:
        shown = "; ".join(missing[:5])
        extra = f" (+{len(missing) - 5} more)" if len(missing) > 5 else ""
        return InvariantResult("durable-commits", False, f"{shown}{extra}")
    return InvariantResult("durable-commits", True, detail)


def check_replica_convergence(cluster) -> InvariantResult:
    """All alive subscribed replicas agree on every table's watermark."""
    nodes = _checked_nodes(cluster)
    if len(nodes) < 2:
        return InvariantResult(
            "replica-convergence", True, f"{len(nodes)} replica(s): trivially converged"
        )
    tables = sorted({schema.name for schema in cluster.schemas})
    diverged: List[str] = []
    for table in tables:
        # Partial replication: only the replicas subscribed to a table owe
        # convergence on it — an uncovering replica legitimately sits at
        # the version-0 base image forever.
        group = [node for node in nodes if _covers(cluster, node, table)]
        marks = {node.node_id: _table_watermark(node, table) for node in group}
        if len(set(marks.values())) > 1:
            diverged.append(f"{table}: {marks}")
    if diverged:
        return InvariantResult("replica-convergence", False, "; ".join(diverged[:3]))
    return InvariantResult(
        "replica-convergence", True, f"{len(nodes)} replicas agree on {len(tables)} tables"
    )


def _table_digest(node, table: str) -> str:
    """Hash of the fully-materialised contents of ``table`` on ``node``."""
    digest = hashlib.sha256()
    pages = [p for p in node.engine.store.all_pages() if p.page_id.table == table]
    for page in sorted(pages, key=lambda p: str(p.page_id)):
        full = node.slave.materialize_fully(page.page_id)
        for slot, row in full.iter_live():
            digest.update(repr((str(page.page_id), slot, row)).encode())
    return digest.hexdigest()[:16]


def check_snapshot_consistency(
    cluster, sample_tables: Optional[Sequence[str]] = None
) -> InvariantResult:
    """Materialised table contents are identical across alive replicas.

    Destructive in the harmless sense: it applies all pending ops (a read
    of the newest snapshot would do the same), so it must run after the
    workload has quiesced, as the last sampled read of the experiment.
    """
    nodes = _checked_nodes(cluster)
    if len(nodes) < 2:
        return InvariantResult(
            "snapshot-consistency", True, f"{len(nodes)} replica(s): trivially consistent"
        )
    tables = list(sample_tables) if sample_tables else sorted(
        schema.name for schema in cluster.schemas
    )
    mismatched: List[str] = []
    for table in tables:
        group = [node for node in nodes if _covers(cluster, node, table)]
        digests = {node.node_id: _table_digest(node, table) for node in group}
        if len(set(digests.values())) > 1:
            mismatched.append(f"{table}: {digests}")
    if mismatched:
        return InvariantResult("snapshot-consistency", False, "; ".join(mismatched[:3]))
    return InvariantResult(
        "snapshot-consistency",
        True,
        f"{len(tables)} tables content-identical on {len(nodes)} replicas",
    )


def check_counter_conservation(cluster) -> InvariantResult:
    """sent == received + dups_ignored + drops over merged node counters."""
    merged = Counters.merged(
        [node.counters for node in cluster.nodes.values()] + [cluster.counters]
    )
    sent = merged.get("net.write_sets_sent")
    received = merged.get("slave.write_sets_received")
    dups = merged.get("net.dups_ignored")
    drops = merged.get("net.drops")
    balance = received + dups + drops
    detail = (
        f"sent={sent:g} received={received:g} dups_ignored={dups:g} drops={drops:g}"
    )
    if sent != balance:
        return InvariantResult(
            "counter-conservation", False, f"{detail} (off by {sent - balance:g})"
        )
    return InvariantResult("counter-conservation", True, detail)


def check_buffer_bounds(cluster) -> InvariantResult:
    """Slave write-set buffers stayed bounded and their accounting is exact.

    Two properties per alive replica:

    * the running ``pending_ops`` counter matches a full recount of the
      per-page queues (the O(1) watermark checks demotion relies on never
      drifted from the truth);
    * when a buffer cap is configured, the lifetime peak never exceeded
      the cap by more than one write-set (the cap is checked after each
      buffered frame, so a single in-flight write-set is the only
      permitted overshoot).
    """
    cfg = cluster.cost.config
    cap = getattr(cfg, "slave_buffer_max_ops", 0)
    slack = getattr(cluster, "_max_ws_ops", 0)
    problems: List[str] = []
    audited = 0
    for node in cluster.nodes.values():
        if not node.alive or node.slave is None:
            continue
        audited += 1
        slave = node.slave
        recount = slave.pending_op_count()
        if slave.pending_ops != recount:
            problems.append(
                f"{node.node_id}: pending_ops={slave.pending_ops} "
                f"but recount={recount}"
            )
        if slave.pending_ops < 0:
            problems.append(f"{node.node_id}: negative pending_ops")
        if cap and slave.pending_ops_peak > cap + slack:
            problems.append(
                f"{node.node_id}: peak {slave.pending_ops_peak} ops exceeded "
                f"cap {cap} (+{slack} slack)"
            )
    if problems:
        return InvariantResult("buffer-bounds", False, "; ".join(problems[:5]))
    detail = f"{audited} replicas audited" + (f", cap={cap}" if cap else ", uncapped")
    return InvariantResult("buffer-bounds", True, detail)


def check_rejoin_convergence(cluster) -> InvariantResult:
    """Every once-demoted node reconverged (or legitimately could not).

    A node that was demoted as a laggard must, by quiescence, have either
    rejoined fully (subscribed, out of catch-up, undemoted — at which
    point replica-convergence and snapshot-consistency audit its content)
    or have a standing excuse: it crashed, or its slowdown fault is still
    in force.  A healthy, alive node stuck demoted means rejoin wedged.
    """
    ever = getattr(cluster, "_ever_demoted", set())
    if not ever:
        return InvariantResult("rejoin-convergence", True, "no demotions occurred")
    stuck: List[str] = []
    rejoined = 0
    excused = 0
    for node_id in sorted(ever):
        node = cluster.nodes.get(node_id)
        if node is None or not node.alive:
            excused += 1  # crashed while demoted: reintegration owns it
            continue
        if getattr(node, "slowdown", 1.0) > 1.0:
            excused += 1  # still degraded: staying demoted is correct
            continue
        if cluster.is_demoted(node_id):
            stuck.append(f"{node_id}: healthy but still demoted")
        elif node.slave is not None and node.slave.catching_up:
            stuck.append(f"{node_id}: catch-up never finished")
        elif node.slave is not None and not node.subscribed:
            stuck.append(f"{node_id}: rejoined but unsubscribed")
        else:
            rejoined += 1
    if stuck:
        return InvariantResult("rejoin-convergence", False, "; ".join(stuck[:5]))
    return InvariantResult(
        "rejoin-convergence",
        True,
        f"{len(ever)} demoted node(s): {rejoined} rejoined, {excused} excused",
    )


def check_quorum_durability(cluster) -> InvariantResult:
    """No confirmed commit was lost, even with stragglers outside the quorum.

    Stronger than durable-commits in one way: it audits *all* alive nodes
    — including promoted masters, whose ``slave is None`` makes them
    invisible to the other content checkers — and requires every
    browser-acknowledged commit's versions to survive somewhere.  Under
    ``all`` acks this is implied by durable-commits; under ``quorum`` it
    is the property the freshest-candidate election exists to protect.
    """
    alive = [n for n in cluster.nodes.values() if n.alive]
    if not alive:
        return InvariantResult("quorum-no-lost-commits", True, "no alive nodes")
    lost: List[str] = []
    tables = {
        table
        for _master, _txn, versions in cluster.commit_log
        for table in versions
    }
    best: Dict[str, int] = {
        table: max(_table_watermark(node, table) for node in alive)
        for table in tables
    }
    for master_id, txn_id, versions in cluster.commit_log:
        for table, version in versions.items():
            if best.get(table, 0) < version:
                lost.append(
                    f"txn {txn_id} ({master_id}, {table}=v{version}) survives "
                    f"nowhere (cluster max v{best.get(table, 0)})"
                )
    if lost:
        shown = "; ".join(lost[:5])
        extra = f" (+{len(lost) - 5} more)" if len(lost) > 5 else ""
        return InvariantResult("quorum-no-lost-commits", False, f"{shown}{extra}")
    return InvariantResult(
        "quorum-no-lost-commits",
        True,
        f"{len(cluster.commit_log)} commits covered across {len(alive)} alive nodes",
    )


def check_trace_hygiene(cluster) -> InvariantResult:
    """At quiescence every span is closed and every span is accounted for.

    Two properties of the :mod:`repro.obs` tracer after the workload has
    drained:

    * no span is still open — every transaction attempt reached a terminal
      close (``committed``/``aborted``/``interrupted``), whatever faults
      hit it mid-flight;
    * conservation: histogram samples + instant events == total finished
      spans (nothing was double-recorded or lost between the ring and the
      stage histograms);
    * while the ring has not evicted anything, no finished span references
      a parent that never existed (orphans).
    """
    tracer = getattr(cluster, "tracer", None)
    if tracer is None or not tracer.enabled:
        return InvariantResult("trace-hygiene", True, "tracing disabled")
    problems: List[str] = []
    open_spans = tracer.open_spans()
    if open_spans:
        problems.append(f"{len(open_spans)} spans still open (first: {open_spans[0]!r})")
    recorded = tracer.stages.total_count() + tracer.instant_count
    if recorded != tracer.finished_count:
        problems.append(
            f"span conservation broken: {tracer.stages.total_count()} histogram "
            f"samples + {tracer.instant_count} instants != "
            f"{tracer.finished_count} finished"
        )
    if tracer.log.dropped == 0:
        orphans = tracer.orphans()
        if orphans:
            problems.append(f"{len(orphans)} orphan spans (first: {orphans[0]!r})")
    return InvariantResult(
        "trace-hygiene",
        not problems,
        "; ".join(problems)
        if problems
        else f"{tracer.finished_count} spans closed, 0 open",
    )


def check_durable_prefix(cluster) -> InvariantResult:
    """Every restart-from-disk recovered at least the confirmed-at-crash prefix.

    For each completed restart the cluster recorded the confirmed version
    vector snapshotted at the moment the node crashed.  Everything at or
    below that vector was browser-acknowledged *before* the crash, so the
    restarted node — checkpoint restore + WAL redo + gap replay — must end
    up holding all of it.  Nodes that re-crashed or are still mid-recovery
    carry no obligation (their next restart will).
    """
    audits = getattr(cluster, "_restart_audits", [])
    if not audits:
        return InvariantResult("durable-prefix", True, "no restarts from disk")
    problems: List[str] = []
    audited = 0
    for node_id, crash_time, confirmed in audits:
        node = cluster.nodes.get(node_id)
        if (
            node is None
            or not node.alive
            or not node.subscribed
            or node.slave is None
            or node.slave.catching_up
        ):
            continue  # re-crashed or still recovering: excused
        audited += 1
        for table, version in sorted(confirmed.items()):
            if not _covers(cluster, node, table):
                continue
            have = _table_watermark(node, table)
            if have < version:
                problems.append(
                    f"{node_id}: {table}=v{version} confirmed before its "
                    f"t={crash_time:g}s crash but only v{have} after restart"
                )
    if problems:
        shown = "; ".join(problems[:5])
        extra = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        return InvariantResult("durable-prefix", False, f"{shown}{extra}")
    return InvariantResult(
        "durable-prefix",
        True,
        f"{len(audits)} restart(s) audited, {audited} with standing obligations",
    )


def check_no_ghost_commits(cluster) -> InvariantResult:
    """No never-confirmed WAL record resurfaced through a restart.

    A crashed node's disk may durably hold write-sets whose commits were
    never acknowledged to any client (its WAL fsync ran at pre-commit,
    before the ack barrier).  Restart redo must skip them, and — because
    post-failover version numbers are reused — nothing may have slipped
    one into a replica's duplicate filter, where it would shadow the real
    commit that later claimed the same versions.
    """
    ghosts = getattr(cluster, "_ghosts", [])
    if not ghosts:
        return InvariantResult("no-ghost-commits", True, "no ghost candidates recorded")
    confirmed_ids = {
        (master_id, txn_id) for master_id, txn_id, _versions in cluster.commit_log
    }
    resurfaced: List[str] = []
    true_ghosts = 0
    for dedup_key, master_id, txn_id in ghosts:
        if (master_id, txn_id) in confirmed_ids:
            continue  # confirmed after the crash snapshot: legitimate history
        true_ghosts += 1
        for node in cluster.nodes.values():
            if not node.alive or node.slave is None:
                continue
            if dedup_key in node.slave._seen_write_sets:
                resurfaced.append(
                    f"ghost txn {txn_id} ({master_id}) resurfaced on {node.node_id}"
                )
    if resurfaced:
        shown = "; ".join(resurfaced[:5])
        extra = f" (+{len(resurfaced) - 5} more)" if len(resurfaced) > 5 else ""
        return InvariantResult("no-ghost-commits", False, f"{shown}{extra}")
    return InvariantResult(
        "no-ghost-commits",
        True,
        f"{len(ghosts)} candidate(s), {true_ghosts} true ghost(s), none resurfaced",
    )


def check_class_ownership_unique(cluster) -> InvariantResult:
    """Conflict classes partition the tables with exactly one owner each.

    Post-quiescence, after any sequence of splits, merges, re-homes and
    master failovers: (a) the conflict map still partitions the tables
    along atom boundaries (no co-written template straddles classes),
    (b) no table is claimed by two alive masters' lock controllers, and
    (c) for every class whose assigned master is alive, that master's
    controller owns exactly the class's tables.  Trivially green on a
    legacy single-master cluster.
    """
    name = "class-ownership-unique"
    conflict_map = getattr(cluster, "conflict_map", None)
    if conflict_map is None:
        return InvariantResult(name, True, "no conflict map")
    try:
        conflict_map.validate_disjoint()
    except Exception as exc:  # ConfigError carries the violated invariant
        return InvariantResult(name, False, str(exc))

    problems: List[str] = []
    owned_by: Dict[str, str] = {}
    for node in cluster.nodes.values():
        owned = getattr(getattr(node, "engine", None), "controller", None)
        owned = getattr(owned, "owned", None)
        if not (node.alive and node.master is not None and owned is not None):
            continue
        for table in owned:
            if table in owned_by:
                problems.append(
                    f"{table} owned by both {owned_by[table]} and {node.node_id}"
                )
            owned_by[table] = node.node_id
    classes = conflict_map.class_ids()
    for class_id in classes:
        try:
            owner = conflict_map.master_of_class(class_id)
        except Exception:
            break  # masters never assigned (map used for routing only)
        node = cluster.nodes.get(owner)
        if node is None or not node.alive or node.master is None:
            continue  # failover pending; dead owners carry no obligations
        if getattr(node.engine.controller, "owned", None) is None:
            continue  # legacy single-master controller: no owned-set to audit
        for table in conflict_map.tables_of_class(class_id):
            holder = owned_by.get(table)
            if holder != owner:
                problems.append(
                    f"class {class_id} table {table}: map says {owner}, "
                    f"controller says {holder}"
                )
    if problems:
        shown = "; ".join(problems[:5])
        extra = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        return InvariantResult(name, False, f"{shown}{extra}")
    return InvariantResult(
        name,
        True,
        f"{len(classes)} class(es), {len(owned_by)} controller-owned table(s)",
    )


def check_interest_coverage(cluster) -> InvariantResult:
    """Partial replication kept every table covered and nothing leaked.

    Two properties, post-quiescence:

    * **coverage** — every table is held by at least
      ``min_replication_factor`` alive nodes, where a holder is an alive
      master or an alive, subscribed, caught-up slave whose interest set
      covers the table;
    * **no leaks** — no pure slave holds *confirmed* state for a table
      outside its interest set: no received version above zero, no page
      above the version-0 base image, no buffered ops.  (Every node starts
      from the full base image — the "mmap an on-disk database" model —
      so the base itself is not a leak; only replicated modifications
      are.)
    """
    name = "interest-coverage"
    registry = getattr(cluster, "interest", None)
    if registry is None or not registry.partial_active:
        return InvariantResult(name, True, "full replication (no interest sets)")
    min_rf = getattr(cluster, "min_replication_factor", 1)
    tables = sorted({schema.name for schema in cluster.schemas})
    problems: List[str] = []
    thin = 0
    for table in tables:
        holders = []
        for node in cluster.nodes.values():
            if not node.alive:
                continue
            if node.master is not None:
                holders.append(node.node_id)
            elif (
                node.slave is not None
                and node.subscribed
                and not node.slave.catching_up
                and registry.covers_table(node.node_id, table)
            ):
                holders.append(node.node_id)
        if len(holders) < min_rf:
            thin += 1
            problems.append(
                f"{table}: {len(holders)} holder(s) {sorted(holders)} < rf {min_rf}"
            )
    leaks = 0
    for node in cluster.nodes.values():
        if not node.alive or node.slave is None or node.master is not None:
            continue
        interest = registry.get(node.node_id)
        if interest.is_full:
            continue
        for table in tables:
            if interest.covers_table(table):
                continue
            received = node.slave.received_versions.get(table)
            if received > 0:
                leaks += 1
                problems.append(
                    f"{node.node_id}: received {table}=v{received} outside interest"
                )
        for page_id, version in sorted(
            node.slave.page_versions().items(), key=lambda kv: str(kv[0])
        ):
            if version > 0 and not interest.covers_table(page_id.table):
                leaks += 1
                problems.append(
                    f"{node.node_id}: holds {page_id}=v{version} outside interest"
                )
    if problems:
        shown = "; ".join(problems[:5])
        extra = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        return InvariantResult(name, False, f"{shown}{extra}")
    partial_nodes = len(registry.as_dict())
    return InvariantResult(
        name,
        True,
        f"{len(tables)} tables covered at rf>={min_rf}, "
        f"{partial_nodes} partial replica(s) leak-free",
    )


def check_tenant_slo_accounting(cluster) -> InvariantResult:
    """Open-loop request accounting closes per tenant, and nothing is stuck.

    For every tenant driven by the :class:`~repro.traffic.engine.OpenLoopEngine`:

    * **accounting identity** — ``injected == completed + failed + shed +
      in_flight`` (no request vanished or was double-counted on any of the
      admission / deadline / retry-budget / breaker exit paths);
    * **quiescence** — ``in_flight == 0``: every request reached a terminal
      outcome before the audit (a non-zero count means a request process
      wedged mid-retry).

    SLO attainment is reported in the detail for observability; it is not
    gated here — overload scenarios legitimately miss SLOs, the point is
    that the accounting of *how* they missed is exact.
    """
    name = "per-tenant-slo"
    stats = getattr(cluster, "traffic_stats", None)
    if stats is None:
        return InvariantResult(name, True, "no open-loop traffic")
    problems: List[str] = []
    details: List[str] = []
    for tenant_name in sorted(stats.tenants):
        tenant = stats.tenants[tenant_name]
        if tenant.accounted() != tenant.injected:
            problems.append(
                f"{tenant_name}: injected={tenant.injected} but completed="
                f"{tenant.completed}+failed={tenant.failed}+shed={tenant.shed}"
                f"+in_flight={tenant.in_flight}={tenant.accounted()}"
            )
        if tenant.in_flight != 0:
            problems.append(f"{tenant_name}: {tenant.in_flight} requests never terminal")
        details.append(
            f"{tenant_name}: slo={100.0 * tenant.slo_attainment():.1f}% "
            f"shed={100.0 * tenant.shed_ratio():.1f}%"
        )
    if problems:
        shown = "; ".join(problems[:5])
        extra = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        return InvariantResult(name, False, f"{shown}{extra}")
    return InvariantResult(name, True, "; ".join(details))


def check_shed_fairness(cluster) -> InvariantResult:
    """Shedding lands on the tenants causing the overload, not the victims.

    With bursting (aggressor) tenants present, every non-bursting tenant's
    shed ratio must stay within ``max(fairness_floor, fairness_ratio *
    worst aggressor ratio)`` — the per-tenant token buckets exist exactly
    so one tenant's flash crowd does not consume the others' admission
    capacity.  Without aggressors the check degrades to a spread bound:
    no tenant may shed more than 3x the worst other tenant plus the floor.
    Tenants with fewer than 20 injected requests are skipped (ratios of
    tiny denominators are noise).
    """
    name = "shed-fairness"
    stats = getattr(cluster, "traffic_stats", None)
    if stats is None:
        return InvariantResult(name, True, "no open-loop traffic")
    scenario = stats.scenario
    aggressors = set(scenario.bursting_tenants())
    sized = {
        tenant_name: tenant
        for tenant_name, tenant in stats.tenants.items()
        if tenant.injected >= 20
    }
    if len(sized) < 2:
        return InvariantResult(name, True, f"{len(sized)} sized tenant(s): trivially fair")
    problems: List[str] = []
    if aggressors & set(sized):
        worst_aggressor = max(sized[tenant_name].shed_ratio() for tenant_name in sized if tenant_name in aggressors)
        bound = max(scenario.fairness_floor, scenario.fairness_ratio * worst_aggressor)
        for tenant_name in sorted(set(sized) - aggressors):
            ratio = sized[tenant_name].shed_ratio()
            if ratio > bound:
                problems.append(
                    f"victim {tenant_name} shed {100.0 * ratio:.1f}% > bound "
                    f"{100.0 * bound:.1f}% (worst aggressor {100.0 * worst_aggressor:.1f}%)"
                )
        detail = (
            f"aggressors={sorted(aggressors & set(sized))} worst="
            f"{100.0 * worst_aggressor:.1f}%, victims within "
            f"{100.0 * bound:.1f}%"
        )
    else:
        ratios = {tenant_name: tenant.shed_ratio() for tenant_name, tenant in sized.items()}
        for tenant_name in sorted(ratios):
            others = [r for other, r in ratios.items() if other != tenant_name]
            bound = scenario.fairness_floor + 3.0 * max(others)
            if ratios[tenant_name] > bound:
                problems.append(
                    f"{tenant_name} shed {100.0 * ratios[tenant_name]:.1f}% > "
                    f"3x-spread bound {100.0 * bound:.1f}%"
                )
        detail = f"no aggressors; spread over {len(sized)} tenants bounded"
    if problems:
        return InvariantResult(name, False, "; ".join(problems[:5]))
    return InvariantResult(name, True, detail)


def check_burst_recovery(cluster) -> InvariantResult:
    """Goodput returned to within epsilon of pre-burst inside the window.

    The metastability audit: after the scenario's last deliberate burst
    ends, aggregate goodput must climb back to ``(1 - recovery_epsilon)``
    of the pre-burst level within ``recovery_window`` seconds of virtual
    time.  A cluster with the defenses off typically fails this — the
    retry storm and bufferbloated admission queue outlive the burst —
    which is exactly the red/green contrast the overload bench commits.
    """
    name = "burst-recovery"
    stats = getattr(cluster, "traffic_stats", None)
    if stats is None:
        return InvariantResult(name, True, "no open-loop traffic")
    recovery = stats.burst_recovery()
    if recovery is None:
        return InvariantResult(name, True, "scenario has no burst windows")
    pre_rate, recovered_at, degraded = recovery
    if pre_rate <= 0:
        return InvariantResult(name, True, "no pre-burst goodput to recover to")
    window = stats.scenario.recovery_window
    if recovered_at is None:
        return InvariantResult(
            name,
            False,
            f"goodput never recovered to {100.0 * (1.0 - stats.scenario.recovery_epsilon):.0f}% "
            f"of pre-burst {pre_rate:.2f}/s ({degraded:.1f}s degraded)",
        )
    if degraded > window:
        return InvariantResult(
            name,
            False,
            f"recovered after {degraded:.1f}s > window {window:g}s "
            f"(pre-burst {pre_rate:.2f}/s)",
        )
    return InvariantResult(
        name,
        True,
        f"recovered {degraded:.1f}s after burst end (pre-burst {pre_rate:.2f}/s, "
        f"window {window:g}s)",
    )


def check_all_invariants(
    cluster, sample_tables: Optional[Sequence[str]] = None
) -> List[InvariantResult]:
    """Run every checker; returns all results (failures included).

    The trace-hygiene checker is appended only when the cluster ran with
    tracing enabled — on an untraced run it has nothing to audit.  The
    durability checkers likewise only run on durable-WAL clusters.
    """
    results = [
        check_durable_commits(cluster),
        check_replica_convergence(cluster),
        check_snapshot_consistency(cluster, sample_tables),
        check_counter_conservation(cluster),
        check_buffer_bounds(cluster),
        check_rejoin_convergence(cluster),
        check_quorum_durability(cluster),
        check_class_ownership_unique(cluster),
    ]
    if getattr(cluster, "durability_active", False):
        results.append(check_durable_prefix(cluster))
        results.append(check_no_ghost_commits(cluster))
    registry = getattr(cluster, "interest", None)
    if registry is not None and registry.partial_active:
        results.append(check_interest_coverage(cluster))
    if getattr(cluster, "traffic_stats", None) is not None:
        results.append(check_tenant_slo_accounting(cluster))
        results.append(check_shed_fairness(cluster))
        results.append(check_burst_recovery(cluster))
    tracer = getattr(cluster, "tracer", None)
    if tracer is not None and tracer.enabled:
        results.append(check_trace_hygiene(cluster))
    return results
