"""The lossy-network model: per-link drop/duplication/delay + partitions.

Every directed ``(source, target)`` pair of cluster endpoints (nodes and
scheduler agents) has one :class:`LinkState`.  A link starts *clean* —
perfectly reliable, zero extra latency — so the model costs nothing on
ordinary runs: the replication channel only rolls the dice (and only
schedules ack-timeout timers) on links that a fault plan has touched.

All randomness is drawn from per-link child streams of one seeded
:class:`~repro.common.rng.RngStream`, so a chaos run replays bit-for-bit
from its seed: the same messages are dropped, duplicated and delayed at
the same virtual times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.common.rng import RngStream

#: Wildcard endpoint matching every node/agent id in a fault rule.
ANY = "*"


@dataclass
class LinkState:
    """Loss characteristics of one directed link.

    ``partitions`` is a nesting counter so overlapping partitions compose:
    the link is cut while any partition covering it is unhealed.
    """

    source: str
    target: str
    rng: RngStream
    drop_p: float = 0.0
    dup_p: float = 0.0
    #: Mean of the exponential extra one-way latency (0 = none).
    extra_delay_mean: float = 0.0
    partitions: int = 0

    @property
    def partitioned(self) -> bool:
        return self.partitions > 0

    @property
    def lossy(self) -> bool:
        """True once any fault applies — the trigger for chaos bookkeeping."""
        return (
            self.partitions > 0
            or self.drop_p > 0.0
            or self.dup_p > 0.0
            or self.extra_delay_mean > 0.0
        )

    # -- dice rolls (deterministic per link) --------------------------------------
    def drops(self) -> bool:
        """Roll whether one message on this link is lost in flight."""
        if self.partitions > 0:
            return True
        return self.drop_p > 0.0 and self.rng.random() < self.drop_p

    def duplicates(self) -> bool:
        """Roll whether one message is delivered twice."""
        return self.dup_p > 0.0 and self.rng.random() < self.dup_p

    def extra_delay(self) -> float:
        """Extra one-way latency for one message (exponential draw)."""
        if self.extra_delay_mean <= 0.0:
            return 0.0
        return self.rng.expovariate(self.extra_delay_mean)


class NetworkModel:
    """All links of one cluster, plus wildcard fault rules.

    Links are created lazily the first time an endpoint pair communicates;
    fault rules installed with wildcards apply to existing *and* future
    links, so ``set_fault(ANY, ANY, drop_p=0.05)`` makes the whole fabric
    5 % lossy without enumerating endpoints up front.
    """

    def __init__(self, rng: RngStream) -> None:
        self._rng = rng
        self._links: Dict[Tuple[str, str], LinkState] = {}
        #: Installed (src_pattern, dst_pattern, drop, dup, delay) rules, in
        #: order; later rules override earlier ones on the links they match.
        self._rules: List[Tuple[str, str, float, float, float]] = []
        #: Active partition group pairs (for lazily created links).
        self._partitions: List[Tuple[frozenset, frozenset]] = []

    def link(self, source: str, target: str) -> LinkState:
        key = (source, target)
        state = self._links.get(key)
        if state is None:
            state = LinkState(source, target, self._rng.child(f"{source}->{target}"))
            for src, dst, drop_p, dup_p, delay in self._rules:
                if _matches(src, source) and _matches(dst, target):
                    state.drop_p, state.dup_p, state.extra_delay_mean = drop_p, dup_p, delay
            for group_a, group_b in self._partitions:
                if _crosses(source, target, group_a, group_b):
                    state.partitions += 1
            self._links[key] = state
        return state

    # -- fault installation --------------------------------------------------------
    def set_fault(
        self,
        source: str = ANY,
        target: str = ANY,
        drop_p: float = 0.0,
        dup_p: float = 0.0,
        extra_delay_mean: float = 0.0,
    ) -> None:
        """Make every link matching ``(source, target)`` lossy."""
        self._rules.append((source, target, drop_p, dup_p, extra_delay_mean))
        for (src, dst), state in self._links.items():
            if _matches(source, src) and _matches(target, dst):
                state.drop_p, state.dup_p, state.extra_delay_mean = (
                    drop_p, dup_p, extra_delay_mean,
                )

    def clear_fault(self, source: str = ANY, target: str = ANY) -> None:
        """Restore matching links to perfect reliability (partitions aside)."""
        self.set_fault(source, target, 0.0, 0.0, 0.0)

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Cut every link crossing between the two endpoint groups."""
        pair = (frozenset(group_a), frozenset(group_b))
        self._partitions.append(pair)
        for (src, dst), state in self._links.items():
            if _crosses(src, dst, *pair):
                state.partitions += 1

    def heal(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Undo one matching :meth:`partition` (partitions nest)."""
        pair = (frozenset(group_a), frozenset(group_b))
        try:
            self._partitions.remove(pair)
        except ValueError:
            raise ValueError(f"no active partition {sorted(pair[0])} | {sorted(pair[1])}")
        for (src, dst), state in self._links.items():
            if _crosses(src, dst, *pair) and state.partitions > 0:
                state.partitions -= 1

    def any_lossy(self) -> bool:
        return any(state.lossy for state in self._links.values()) or bool(
            self._rules or self._partitions
        )


def _matches(pattern: str, endpoint: str) -> bool:
    return pattern == ANY or pattern == endpoint


def _crosses(source: str, target: str, group_a: frozenset, group_b: frozenset) -> bool:
    return (source in group_a and target in group_b) or (
        source in group_b and target in group_a
    )
