"""Chaos layer: deterministic fault injection and cluster invariant checking.

The paper's continuous-availability claims (§4.1–4.5) are about behaviour
under *messy* failures, not just clean scheduled kills.  This package adds:

* :mod:`repro.chaos.network` — a per-link lossy-network model (drop,
  duplication, extra delay, partitions) consulted by the replication
  channels and scheduler RPCs;
* :mod:`repro.chaos.faults` — seeded, declarative fault plans that schedule
  node crashes, reintegrations, scheduler kills, link faults, healed
  partitions, storage faults (torn writes, fsync lies, bit flips), flash
  crowds and forced conflict-class re-homes against a running cluster;
* :mod:`repro.chaos.invariants` — Jepsen-lite post-quiescence checkers
  (durability, version convergence, snapshot consistency, write-set
  conservation, durable-prefix / no-ghost-commits on durable clusters);
* :mod:`repro.chaos.scenario` — the seeded end-to-end chaos scenario runner
  whose metric fingerprint replays identically from its printed seed.
"""

from repro.chaos.faults import (
    BitFlip,
    CrashNode,
    CrashScheduler,
    FaultPlan,
    FlashCrowd,
    FsyncLie,
    LinkFault,
    Partition,
    Rehome,
    ReintegrateNode,
    RestartNode,
    Slowdown,
    TornWrite,
)
from repro.chaos.invariants import (
    InvariantResult,
    check_all_invariants,
    check_buffer_bounds,
    check_class_ownership_unique,
    check_counter_conservation,
    check_durable_commits,
    check_durable_prefix,
    check_interest_coverage,
    check_no_ghost_commits,
    check_quorum_durability,
    check_rejoin_convergence,
    check_replica_convergence,
    check_snapshot_consistency,
)
from repro.chaos.network import ANY, LinkState, NetworkModel
from repro.chaos.scenario import (
    ChaosReport,
    default_chaos_plan,
    durability_chaos_plan,
    partial_chaos_plan,
    partial_interest_sets,
    run_chaos_scenario,
    straggler_chaos_plan,
    write_scaleout_chaos_plan,
)

__all__ = [
    "ANY",
    "BitFlip",
    "ChaosReport",
    "CrashNode",
    "CrashScheduler",
    "FaultPlan",
    "FlashCrowd",
    "FsyncLie",
    "InvariantResult",
    "LinkFault",
    "LinkState",
    "NetworkModel",
    "Partition",
    "Rehome",
    "ReintegrateNode",
    "RestartNode",
    "Slowdown",
    "TornWrite",
    "check_all_invariants",
    "check_buffer_bounds",
    "check_class_ownership_unique",
    "check_counter_conservation",
    "check_durable_commits",
    "check_durable_prefix",
    "check_interest_coverage",
    "check_no_ghost_commits",
    "check_quorum_durability",
    "check_rejoin_convergence",
    "check_replica_convergence",
    "check_snapshot_consistency",
    "default_chaos_plan",
    "durability_chaos_plan",
    "partial_chaos_plan",
    "partial_interest_sets",
    "run_chaos_scenario",
    "straggler_chaos_plan",
    "write_scaleout_chaos_plan",
]
