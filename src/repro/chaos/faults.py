"""Seeded, declarative fault plans.

A :class:`FaultPlan` is a value object — an ordered tuple of fault events,
each pinned to a virtual time — that :meth:`FaultPlan.schedule` installs
onto a running :class:`~repro.cluster.simcluster.SimDmvCluster`.  Because
the simulation kernel and the network model's dice are both seeded, one
``(plan, seed)`` pair names exactly one execution: re-running it reproduces
every drop, retransmission, crash and reconfiguration at the same instants.

:meth:`FaultPlan.random` derives a randomised crash/reintegration schedule
from a seed via :mod:`repro.common.rng` for soak testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.common.rng import RngStream
from repro.chaos.network import ANY


@dataclass(frozen=True)
class CrashNode:
    """Fail-stop one database node at ``at``."""

    at: float
    node_id: str

    def install(self, cluster) -> None:
        cluster.kill_node_at(self.node_id, self.at)

    def describe(self) -> str:
        return f"t={self.at:g}s crash node {self.node_id}"


@dataclass(frozen=True)
class ReintegrateNode:
    """Reboot + data-migrate a previously crashed node back in at ``at``."""

    at: float
    node_id: str
    spare: bool = False

    def install(self, cluster) -> None:
        cluster.sim.schedule(
            max(0.0, self.at - cluster.sim.now()),
            cluster.reintegrate,
            self.node_id,
            None,
            self.spare,
        )

    def describe(self) -> str:
        return f"t={self.at:g}s reintegrate node {self.node_id}"


@dataclass(frozen=True)
class RestartNode:
    """Restart a crashed node from its *own* disk at ``at``.

    The durable-recovery counterpart of :class:`ReintegrateNode`: the node
    replays its checkpoint + fsynced WAL suffix locally, then gap-replays /
    migrates only the commits it missed while down.  On a non-durable
    cluster it degrades to the classic reintegration path.
    """

    at: float
    node_id: str

    def install(self, cluster) -> None:
        cluster.restart_node_at(self.node_id, self.at)

    def describe(self) -> str:
        return f"t={self.at:g}s restart node {self.node_id} from local disk"


@dataclass(frozen=True)
class TornWrite:
    """Arm a torn (partially written) last WAL record on ``node_id``.

    The tear materialises at the node's next crash: the first record of
    the lost tail stays on disk with a failing checksum, exercising the
    restart scan's torn-tail truncation rule.
    """

    at: float
    node_id: str

    def install(self, cluster) -> None:
        cluster.sim.schedule(
            max(0.0, self.at - cluster.sim.now()),
            cluster.arm_torn_write,
            self.node_id,
        )

    def describe(self) -> str:
        return f"t={self.at:g}s arm torn WAL write on {self.node_id}"


@dataclass(frozen=True)
class FsyncLie:
    """Storage that acknowledges fsync without persisting, from ``at``.

    While lying, records the node believes synced are not durable: a crash
    in the window loses them (the lost-unsynced-tail mode).  ``until=None``
    lies forever.
    """

    at: float
    node_id: str
    until: Optional[float] = None

    def install(self, cluster) -> None:
        cluster.sim.schedule(
            max(0.0, self.at - cluster.sim.now()),
            cluster.set_fsync_lie,
            self.node_id,
            True,
        )
        if self.until is not None:
            cluster.sim.schedule(
                max(0.0, self.until - cluster.sim.now()),
                cluster.set_fsync_lie,
                self.node_id,
                False,
            )

    def describe(self) -> str:
        window = f"..{self.until:g}s" if self.until is not None else ".."
        return f"t={self.at:g}s{window} fsync lies on {self.node_id}"


@dataclass(frozen=True)
class BitFlip:
    """Latent corruption of one durable WAL record or checkpoint page.

    The victim record/page is drawn from the cluster's seeded storage RNG
    at install time; the damage is only observed when recovery validates
    checksums — like a real latent sector error.
    """

    at: float
    node_id: str
    target: str = "wal"  # "wal" | "checkpoint"

    def install(self, cluster) -> None:
        cluster.sim.schedule(
            max(0.0, self.at - cluster.sim.now()),
            cluster.inject_bitflip,
            self.node_id,
            self.target,
        )

    def describe(self) -> str:
        return f"t={self.at:g}s bit flip in {self.node_id} {self.target}"


@dataclass(frozen=True)
class Slowdown:
    """Gray failure: inflate one node's service times from ``at``.

    Unlike :class:`CrashNode` the victim keeps answering heartbeats — it
    is merely slow (degraded disk, saturated link, GC pauses), which is
    exactly the failure mode all-slave ack barriers cannot tolerate and
    quorum acks + laggard demotion are built for.  ``until=None`` leaves
    the node degraded forever.
    """

    at: float
    node_id: str
    factor: float = 8.0
    until: Optional[float] = None

    def install(self, cluster) -> None:
        cluster.sim.schedule(
            max(0.0, self.at - cluster.sim.now()),
            cluster.set_slowdown,
            self.node_id,
            self.factor,
        )
        if self.until is not None:
            cluster.sim.schedule(
                max(0.0, self.until - cluster.sim.now()),
                cluster.set_slowdown,
                self.node_id,
                1.0,
            )

    def describe(self) -> str:
        window = f"..{self.until:g}s" if self.until is not None else ".."
        return f"t={self.at:g}s{window} slowdown node {self.node_id} x{self.factor:g}"


@dataclass(frozen=True)
class FlashCrowd:
    """Spawn ``browsers`` extra emulated browsers at ``at``.

    The newcomers clone the profile of the browsers already running (mix,
    scale, think time), so a flash crowd is a pure load step — the fault
    the write scale-out stack's admission control exists to absorb.
    """

    at: float
    browsers: int

    def install(self, cluster) -> None:
        cluster.sim.schedule(
            max(0.0, self.at - cluster.sim.now()),
            cluster.flash_crowd,
            self.browsers,
        )

    def describe(self) -> str:
        return f"t={self.at:g}s flash crowd +{self.browsers} browsers"


@dataclass(frozen=True)
class Rehome:
    """Force ``table``'s conflict class onto master ``dst`` at ``at``.

    Exercises the drain-barrier handoff under load: new updates for the
    class park, in-flight transactions and the open epoch drain, the
    destination adopts the version sequences, ownership flips.  A no-op
    when ``dst`` already owns the class.
    """

    at: float
    table: str
    dst: str

    def install(self, cluster) -> None:
        cluster.sim.schedule(
            max(0.0, self.at - cluster.sim.now()),
            cluster.rehome_table_to,
            self.table,
            self.dst,
        )

    def describe(self) -> str:
        return f"t={self.at:g}s re-home class of {self.table} -> {self.dst}"


@dataclass(frozen=True)
class CrashScheduler:
    """Kill one scheduler agent at ``at`` (peers take over, §4.1)."""

    at: float
    agent_id: str

    def install(self, cluster) -> None:
        cluster.kill_scheduler_at(self.agent_id, self.at)

    def describe(self) -> str:
        return f"t={self.at:g}s crash scheduler {self.agent_id}"


@dataclass(frozen=True)
class LinkFault:
    """Make matching links lossy from ``at`` until ``until`` (None = forever)."""

    at: float
    source: str = ANY
    target: str = ANY
    drop_p: float = 0.0
    dup_p: float = 0.0
    extra_delay_mean: float = 0.0
    until: Optional[float] = None

    def install(self, cluster) -> None:
        cluster.sim.schedule(
            max(0.0, self.at - cluster.sim.now()),
            cluster.net.set_fault,
            self.source,
            self.target,
            self.drop_p,
            self.dup_p,
            self.extra_delay_mean,
        )
        if self.until is not None:
            cluster.sim.schedule(
                max(0.0, self.until - cluster.sim.now()),
                cluster.net.clear_fault,
                self.source,
                self.target,
            )

    def describe(self) -> str:
        window = f"..{self.until:g}s" if self.until is not None else ".."
        return (
            f"t={self.at:g}s{window} link {self.source}->{self.target} "
            f"drop={self.drop_p:g} dup={self.dup_p:g} delay={self.extra_delay_mean:g}"
        )


@dataclass(frozen=True)
class Partition:
    """Cut every link between two endpoint groups, healing at ``heal_at``."""

    at: float
    heal_at: float
    group_a: Tuple[str, ...]
    group_b: Tuple[str, ...]

    def install(self, cluster) -> None:
        cluster.sim.schedule(
            max(0.0, self.at - cluster.sim.now()),
            cluster.net.partition,
            self.group_a,
            self.group_b,
        )
        cluster.sim.schedule(
            max(0.0, self.heal_at - cluster.sim.now()),
            cluster.net.heal,
            self.group_a,
            self.group_b,
        )

    def describe(self) -> str:
        return (
            f"t={self.at:g}..{self.heal_at:g}s partition "
            f"{list(self.group_a)} | {list(self.group_b)}"
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of fault events."""

    seed: int = 0
    events: Tuple = ()

    def schedule(self, cluster) -> "FaultPlan":
        """Install every event onto the cluster's event kernel."""
        for event in self.events:
            event.install(cluster)
        return self

    def describe(self) -> str:
        lines = [f"fault plan (seed={self.seed}, {len(self.events)} events)"]
        lines.extend(f"  - {event.describe()}" for event in self.events)
        return "\n".join(lines)

    @classmethod
    def random(
        cls,
        seed: int,
        node_ids: Sequence[str],
        horizon: float,
        crashes: int = 2,
        reintegrate_after: float = 30.0,
        drop_p: float = 0.05,
        dup_p: float = 0.01,
        settle_window: float = 60.0,
        storage_faults: bool = False,
    ) -> "FaultPlan":
        """Derive a randomised crash/reintegrate soak schedule from ``seed``.

        Crash times land in the first ``horizon - settle_window`` seconds so
        every reconfiguration finishes before quiescence measurement; each
        crashed node is reintegrated ``reintegrate_after`` seconds later.

        With ``storage_faults=True`` each victim additionally draws one
        storage fault (torn write / fsync-lie window / WAL bit flip) around
        its crash, and recovers via :class:`RestartNode` (restart from own
        disk) instead of :class:`ReintegrateNode`.  The extra draws happen
        strictly *after* the base schedule's, so flag-off plans consume the
        exact same RNG stream as before the flag existed — existing seeds
        keep their fingerprints.
        """
        rng = RngStream(seed, "fault-plan")
        events = [LinkFault(at=0.0, drop_p=drop_p, dup_p=dup_p)]
        window = max(1.0, horizon - settle_window - reintegrate_after)
        victims = list(node_ids)
        rng.shuffle(victims)
        chosen = []
        for victim in victims[: max(0, crashes)]:
            at = rng.uniform(10.0, window)
            chosen.append((victim, at))
            events.append(CrashNode(at=at, node_id=victim))
            if not storage_faults:
                events.append(
                    ReintegrateNode(at=at + reintegrate_after, node_id=victim)
                )
        if storage_faults:
            # Drawn after every base draw (seed compatibility, see above).
            for victim, at in chosen:
                roll = rng.random()
                if roll < 0.5:
                    events.append(TornWrite(at=max(0.0, at - 1.0), node_id=victim))
                elif roll < 0.8:
                    events.append(
                        FsyncLie(
                            at=max(0.0, at - 5.0), node_id=victim, until=at + 1.0
                        )
                    )
                else:
                    events.append(
                        BitFlip(at=max(0.0, at - 2.0), node_id=victim, target="wal")
                    )
                events.append(
                    RestartNode(at=at + reintegrate_after, node_id=victim)
                )
        events.sort(key=lambda e: e.at)
        return cls(seed=seed, events=tuple(events))
