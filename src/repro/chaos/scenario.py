"""Seeded end-to-end chaos scenarios: workload + fault plan + invariants.

A scenario builds a TPC-W-driven :class:`SimDmvCluster`, installs a
:class:`~repro.chaos.faults.FaultPlan`, runs the workload through the fault
schedule, quiesces the browsers, and audits the cluster with the
:mod:`~repro.chaos.invariants` checkers.  Everything is derived from one
seed, and the report carries a fingerprint over every counter: rerunning
``run_chaos_scenario(seed=S)`` must reproduce the fingerprint bit-for-bit,
which is what the seeded soak test and the CI smoke job assert.

Run one from the command line::

    PYTHONPATH=src python -m repro.chaos --seed 7
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.faults import (
    BitFlip,
    CrashNode,
    FaultPlan,
    FlashCrowd,
    FsyncLie,
    LinkFault,
    Partition,
    Rehome,
    ReintegrateNode,
    RestartNode,
    Slowdown,
    TornWrite,
)
from repro.chaos.invariants import InvariantResult, check_all_invariants
from repro.common.counters import Counters

#: Counters surfaced in the report (and by the bench harness summary).
CHAOS_COUNTERS = (
    "net.write_sets_sent",
    "slave.write_sets_received",
    "net.drops",
    "net.retransmits",
    "net.dups_ignored",
    "net.bytes_dropped",
    "net.sched_state_drops",
    "net.suspicions",
    "sched.queued_updates",
    "sched.deadline_rejects",
    "net.quorum_commits",
    "net.quorum_saves",
    "net.acks_skipped_demoted",
    "slave.demotions",
    "slave.rejoins",
    "slave.replay_write_sets",
    "slave.forced_drains",
    "sched.shed_requests",
    "wal.records",
    "wal.replayed",
    "wal.torn_tail_records",
    "wal.ghost_records_skipped",
    "wal.ghost_ops_discarded",
    "checkpoint.corrupt_pages",
    "checkpoint.fallback_pages",
    "disk.restart_recoveries",
    # Write scale-out counters: all zero on legacy single-master runs.
    "engine.epochs",
    "engine.epoch_batched_commits",
    "sched.class_rehomes",
    "sched.class_splits",
    "sched.class_merges",
    "sched.rehome_aborts",
    # Partial replication + tiering counters: all zero on full-replication
    # runs (interest filtering, coverage routing and resident-budget
    # eviction only fire when configured on).
    "net.bytes_saved_partial",
    "net.write_sets_filtered",
    "sched.coverage_rejects",
    "sched.partial_master_fallbacks",
    "cache.evictions",
    # Overload-robustness counters: all zero unless admission control,
    # request deadlines or retry budgets are configured on (or an
    # open-loop traffic engine drives the cluster).
    "sched.admission_rejects",
    "sched.deadline_cancels",
    "bench.retries_exhausted",
    "traffic.requests_injected",
    "traffic.retry_budget_exhausted",
    "traffic.breaker_short_circuits",
)


@dataclass
class ChaosReport:
    """Everything one chaos run produced (printable, assertable)."""

    seed: int
    plan: FaultPlan
    duration: float
    completed: int
    retried: int
    failed: int
    invariants: List[InvariantResult] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    #: Stable hash over all merged counters + client metrics; identical for
    #: identical ``(seed, plan, workload)`` inputs.
    fingerprint: str = ""
    retries_by_reason: Dict[str, int] = field(default_factory=dict)
    #: The cluster's tracer when the run had ``trace=True`` (else None);
    #: carries the span log for export and the per-stage histograms.
    tracer: Optional[object] = None
    #: Per-tenant open-loop traffic stats when the run was driven by an
    #: :class:`~repro.traffic.engine.OpenLoopEngine` (else None).
    traffic: Optional[object] = None

    def ok(self) -> bool:
        return all(result.ok for result in self.invariants)

    def stage_table(self) -> str:
        """Per-stage p50/p95/p99 latency table (empty without tracing)."""
        if self.tracer is None:
            return ""
        return self.tracer.stage_table()

    def summary(self) -> str:
        lines = [
            f"chaos run seed={self.seed} duration={self.duration:g}s "
            f"fingerprint={self.fingerprint}",
            self.plan.describe(),
            f"clients: completed={self.completed} retried={self.retried} "
            f"failed={self.failed}",
        ]
        if self.retries_by_reason:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.retries_by_reason.items())
            )
            lines.append(f"retries by reason: {reasons}")
        lines.append(
            "chaos counters: "
            + " ".join(f"{name}={self.counters.get(name, 0):g}" for name in CHAOS_COUNTERS)
        )
        if self.traffic is not None:
            lines.append("open-loop traffic (per tenant):")
            lines.append(self.traffic.table())
        lines.extend(str(result) for result in self.invariants)
        lines.append("invariants: " + ("ALL OK" if self.ok() else "FAILURES"))
        if self.tracer is not None:
            lines.append("per-stage latency breakdown (virtual clock):")
            lines.append(self.stage_table())
        return "\n".join(lines)


def default_chaos_plan(seed: int = 0, duration: float = 200.0) -> FaultPlan:
    """The canonical smoke schedule: lossy fabric, healed partition, master
    kill mid-workload, reintegration — all resolved before quiescence.

    * 5 % drop + 1 % duplication on every link from the start (cleared
      20 s before the end so retransmissions drain);
    * a master↔slave partition at 15 % of the run, healed 10 s later (the
      retransmission budget outlasts it, so nobody is evicted);
    * the master crashes at 40 % — mid-broadcast for whatever commits are
      in flight — forcing election, promotion and cleanup under loss;
    * the old master reintegrates at 70 % via data migration.
    """
    t = lambda fraction: round(duration * fraction, 3)
    return FaultPlan(
        seed=seed,
        events=(
            LinkFault(at=0.0, drop_p=0.05, dup_p=0.01, until=t(0.9)),
            Partition(at=t(0.15), heal_at=t(0.15) + 10.0, group_a=("m0",), group_b=("s1",)),
            CrashNode(at=t(0.4), node_id="m0"),
            ReintegrateNode(at=t(0.7), node_id="m0"),
        ),
    )


def straggler_chaos_plan(seed: int = 0, duration: float = 200.0) -> FaultPlan:
    """Gray-failure soak: one slave turns slow (never crashes) under mild loss.

    * 2 % drop + 0.5 % duplication fabric-wide (cleared at 75 % so the
      retransmission machinery is exercised but drains before quiescence);
    * slave ``s2`` runs 12x slow from 10 % to 70 % of the run.  Under
      ``all`` acks every commit waits for it; under ``quorum`` acks the
      laggard detector demotes it, commits proceed on the quorum, and the
      probe monitor re-integrates it once the slowdown lifts — all of
      which must finish before the invariant audit.
    """
    t = lambda fraction: round(duration * fraction, 3)
    return FaultPlan(
        seed=seed,
        events=(
            LinkFault(at=0.0, drop_p=0.02, dup_p=0.005, until=t(0.75)),
            Slowdown(at=t(0.1), node_id="s2", factor=12.0, until=t(0.7)),
        ),
    )


def durability_chaos_plan(seed: int = 0, duration: float = 200.0) -> FaultPlan:
    """Storage-fault soak: every durable failure mode plus a master crash.

    Requires a cluster built with ``CostConfig(durable_wal=True)`` — every
    crashed node restarts from its *own* disk (checkpoint + WAL redo + gap
    replay) rather than via full peer migration:

    * mild fabric loss/duplication throughout (cleared at 75 %);
    * ``s1`` crashes with a torn last WAL record — restart must truncate
      the tail at the first bad checksum;
    * ``s2`` crashes inside an fsync-lie window — records it believed
      synced were never durable and are lost;
    * ``s0`` crashes carrying a latent bit flip in both its WAL and its
      checkpoint — restart must skip the bad record and fall back to the
      previous good page generation;
    * the master crashes last (election + promotion), then restarts from
      disk as a slave, exercising the ghost filter: its WAL durably holds
      pre-commits that were never acknowledged.
    """
    t = lambda fraction: round(duration * fraction, 3)
    return FaultPlan(
        seed=seed,
        events=(
            LinkFault(at=0.0, drop_p=0.02, dup_p=0.005, until=t(0.75)),
            TornWrite(at=t(0.08), node_id="s1"),
            CrashNode(at=t(0.12), node_id="s1"),
            RestartNode(at=t(0.28), node_id="s1"),
            FsyncLie(at=t(0.15), node_id="s2", until=t(0.45)),
            CrashNode(at=t(0.35), node_id="s2"),
            RestartNode(at=t(0.5), node_id="s2"),
            BitFlip(at=t(0.4), node_id="s0", target="wal"),
            BitFlip(at=t(0.42), node_id="s0", target="checkpoint"),
            CrashNode(at=t(0.48), node_id="s0"),
            RestartNode(at=t(0.6), node_id="s0"),
            CrashNode(at=t(0.66), node_id="m0"),
            RestartNode(at=t(0.8), node_id="m0"),
        ),
    )


def write_scaleout_chaos_plan(seed: int = 0, duration: float = 200.0) -> FaultPlan:
    """Write scale-out soak: flash write load, forced re-homes, master kill.

    Requires a two-master cluster with dynamic classes enabled (the
    ``--plan write-scaleout`` CLI wiring builds one):

    * mild fabric loss/duplication throughout (cleared at 75 %);
    * a flash crowd at 10 % doubles the ordering-mix write load, pushing
      the masters into the admission-control regime;
    * the customer class is forcibly re-homed away at 30 % and back at
      50 % — two drain-barrier handoffs under full load;
    * the re-home destination master is killed shortly after the second
      handoff begins (mid-drain for slow drains, just post-flip for fast
      ones); either way its classes fail over and the parked updates
      re-route, never straddling owners;
    * the dead master reintegrates at 75 %, before quiescence.
    """
    t = lambda fraction: round(duration * fraction, 3)
    return FaultPlan(
        seed=seed,
        events=(
            LinkFault(at=0.0, drop_p=0.02, dup_p=0.005, until=t(0.75)),
            FlashCrowd(at=t(0.1), browsers=16),
            Rehome(at=t(0.3), table="customer", dst="m0"),
            Rehome(at=t(0.5), table="customer", dst="m1"),
            CrashNode(at=t(0.52), node_id="m1"),
            ReintegrateNode(at=t(0.75), node_id="m1"),
        ),
    )


def partial_interest_sets() -> Dict[str, Optional[tuple]]:
    """The partial plan's interest assignment over the 3 default slaves.

    ``s0`` keeps full interest — the failover anchor and the migration
    support every partial joiner can use.  ``s1`` subscribes to the hot
    browse set only; ``s2`` additionally carries ``orders``/``order_line``,
    making it the *sole extra replica* of that range among the slaves
    (``s0`` aside): crashing it drops the range to its minimum factor.
    ``None`` means full interest.
    """
    return {
        "s0": None,
        "s1": ("item", "author", "customer"),
        "s2": ("item", "author", "customer", "orders", "order_line"),
    }


def overload_chaos_plan(seed: int = 0, duration: float = 200.0) -> FaultPlan:
    """Overload soak: mild fabric loss under an open-loop flash crowd.

    The load itself comes from the traffic scenario (``--plan overload``
    passes a :func:`repro.traffic.scenario.flash_crowd_scenario` to
    ``run_chaos_scenario``) — the fault plan only keeps the network
    machinery honest while the admission controller, deadlines and retry
    budgets absorb the crowd:

    * 2 % drop + 0.5 % duplication fabric-wide, cleared at 75 % so
      retransmissions drain before the invariant audit.
    """
    t = lambda fraction: round(duration * fraction, 3)
    return FaultPlan(
        seed=seed,
        events=(
            LinkFault(at=0.0, drop_p=0.02, dup_p=0.005, until=t(0.75)),
        ),
    )


def partial_chaos_plan(seed: int = 0, duration: float = 200.0) -> FaultPlan:
    """Partial-replication soak: lossy fabric + crash of a range's sole
    extra replica.

    Requires a cluster built with :func:`partial_interest_sets` (the
    ``--plan partial`` CLI wiring) and ``min_replication_factor=2``:

    * 2 % drop + 0.5 % duplication fabric-wide (cleared at 75 % so
      retransmissions drain before quiescence);
    * ``s2`` — the only slave besides the full-interest anchor ``s0``
      subscribed to ``orders``/``order_line`` — crashes at 30 %, dropping
      that range to its minimum replication factor (anchor + master);
      coverage routing must shed ``s1`` for order-touching reads and keep
      serving from ``s0`` or the master;
    * ``s2`` reintegrates at 60 % via interest-scoped migration (only its
      subscribed pages move) — well before quiescence, so the
      ``interest-coverage`` audit sees it caught up and leak-free.
    """
    t = lambda fraction: round(duration * fraction, 3)
    return FaultPlan(
        seed=seed,
        events=(
            LinkFault(at=0.0, drop_p=0.02, dup_p=0.005, until=t(0.75)),
            CrashNode(at=t(0.3), node_id="s2"),
            ReintegrateNode(at=t(0.6), node_id="s2"),
        ),
    )


def run_chaos_scenario(
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    duration: float = 200.0,
    settle: float = 25.0,
    browsers: int = 16,
    mix_name: str = "ordering",
    think_time: float = 0.3,
    num_slaves: int = 3,
    num_schedulers: int = 2,
    scale=None,
    trace: bool = False,
    ack_policy: str = "all",
    quorum_k: int = 1,
    cost_config=None,
    checkpoint_period: float = 0.0,
    multi_master: bool = False,
    num_masters: Optional[int] = None,
    conflict_map=None,
    interest_sets: Optional[Dict[str, Optional[tuple]]] = None,
    min_replication_factor: int = 1,
    slave_cache_pages: Optional[int] = None,
    traffic=None,
) -> ChaosReport:
    """Run one seeded chaos scenario end to end and audit the wreckage.

    The browsers stop ``settle`` seconds before ``duration``; the remaining
    window drains in-flight interactions, retransmissions and
    reconfigurations so the invariant checkers observe a quiescent cluster.

    With ``traffic`` set to a :class:`~repro.traffic.scenario.TrafficScenario`
    the closed-loop browser pool is replaced by an open-loop
    :class:`~repro.traffic.engine.OpenLoopEngine`: the scenario's own
    ``duration``/``settle`` override the arguments, its ``faults`` plan is
    used when no explicit ``plan`` is given, and the report additionally
    carries per-tenant traffic stats (audited by the per-tenant-slo,
    shed-fairness and burst-recovery invariants).
    """
    # Imported lazily: the cluster module itself uses repro.chaos.network,
    # so importing it at module scope would cycle through the package init.
    from repro.cluster.simcluster import SimDmvCluster
    from repro.tpcw.datagen import TpcwDataGenerator
    from repro.tpcw.mixes import MIXES
    from repro.tpcw.schema import TPCW_SCHEMAS, TpcwScale

    if scale is None:
        scale = TpcwScale(num_items=80, num_customers=230)
    if traffic is not None:
        duration = traffic.duration
        settle = traffic.settle
        if plan is None and traffic.faults is not None:
            plan = traffic.faults
    if plan is None:
        plan = default_chaos_plan(seed, duration)
    cluster = SimDmvCluster(
        TPCW_SCHEMAS,
        num_slaves=num_slaves,
        num_schedulers=num_schedulers,
        cost_config=cost_config,
        seed=seed,
        trace=trace,
        ack_policy=ack_policy,
        quorum_k=quorum_k,
        checkpoint_period=checkpoint_period,
        multi_master=multi_master,
        num_masters=num_masters,
        conflict_map=conflict_map,
        interest_sets=interest_sets,
        min_replication_factor=min_replication_factor,
        slave_cache_pages=slave_cache_pages,
    )
    cluster.load(TpcwDataGenerator(scale, seed=11))
    cluster.warm_all_caches()
    plan.schedule(cluster)
    if traffic is not None:
        from repro.traffic.engine import OpenLoopEngine

        engine = OpenLoopEngine(cluster, traffic, seed=seed, scale=scale)
        engine.start(inject_until=max(0.0, duration - settle))
    else:
        cluster.start_browsers(browsers, MIXES[mix_name], scale, think_time_mean=think_time)
        cluster.sim.schedule(max(0.0, duration - settle), cluster.stop_browsers)
    cluster.run(until=duration)

    invariants = check_all_invariants(cluster)
    merged = Counters.merged(
        [node.counters for node in cluster.nodes.values()] + [cluster.counters]
    )
    metrics = cluster.metrics
    merged.add("metrics.completed", metrics.completed)
    merged.add("metrics.retried", metrics.retried)
    merged.add("metrics.failed", metrics.failed)
    return ChaosReport(
        seed=seed,
        plan=plan,
        duration=duration,
        completed=metrics.completed,
        retried=metrics.retried,
        failed=metrics.failed,
        invariants=invariants,
        counters=merged.snapshot(),
        fingerprint=merged.fingerprint(),
        retries_by_reason=dict(metrics.aborts_by_reason),
        tracer=cluster.tracer if trace else None,
        traffic=cluster.traffic_stats,
    )
