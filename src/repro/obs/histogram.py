"""Fixed-bucket latency histograms for per-stage breakdowns.

Unlike :class:`repro.sim.stats.Histogram` (raw samples, exact
percentiles, unbounded memory), these histograms use a fixed log-spaced
bucket layout so a multi-hour soak records millions of span latencies in
a few hundred integers.  Percentiles are resolved to the upper edge of
the containing bucket — with 8 buckets per decade the error is bounded
by ~33 %, plenty for a stage breakdown whose stages differ by orders of
magnitude.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence

#: The canonical pipeline stages, in causal order.  The stage table always
#: prints these rows (count 0 when a run never exercised one) so the
#: breakdown's shape is stable across runs and greppable in CI logs.
CORE_STAGES = (
    "schedule",
    "execute",
    "precommit",
    "broadcast",
    "ack",
    "apply",
    "flush",
)


def _default_bounds(
    low: float = 1e-6, high: float = 1e4, per_decade: int = 8
) -> List[float]:
    """Log-spaced bucket upper edges from ``low`` to ``high``."""
    bounds: List[float] = []
    edge = low
    ratio = 10.0 ** (1.0 / per_decade)
    while edge <= high:
        bounds.append(edge)
        edge *= ratio
    return bounds


_SHARED_BOUNDS = _default_bounds()


class FixedBucketHistogram:
    """Counts-per-bucket with nearest-rank bucket-edge percentiles."""

    __slots__ = ("bounds", "counts", "count", "total", "max_value")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds: Sequence[float] = (
            list(bounds) if bounds is not None else _SHARED_BOUNDS
        )
        # counts[i] covers (bounds[i-1], bounds[i]]; counts[0] is the
        # underflow bucket (values <= bounds[0], including exact zeros);
        # counts[-1] is the overflow bucket.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative latency: {value}")
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    def merge(self, other: "FixedBucketHistogram") -> None:
        if list(other.bounds) != list(self.bounds):
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.max_value = max(self.max_value, other.max_value)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper edge of the bucket holding the nearest-rank sample."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.count:
            return 0.0
        rank = max(1, -(-int(p * self.count) // 100))  # ceil(p/100 * count)
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                if i == 0:
                    # Underflow bucket: everything here is ~0 at sim scale.
                    return 0.0
                if i == len(self.bounds):
                    return self.max_value
                # Clamp the bucket edge to the observed max so p95 can
                # never exceed the largest recorded value.
                return min(self.bounds[i], self.max_value)
        return self.max_value  # pragma: no cover - unreachable

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max_value,
        }


class StageHistograms:
    """One fixed-bucket histogram per stage name."""

    def __init__(self) -> None:
        self._stages: Dict[str, FixedBucketHistogram] = {}

    def record(self, stage: str, duration: float) -> None:
        hist = self._stages.get(stage)
        if hist is None:
            hist = self._stages[stage] = FixedBucketHistogram()
        hist.record(duration)

    def get(self, stage: str) -> FixedBucketHistogram:
        hist = self._stages.get(stage)
        return hist if hist is not None else FixedBucketHistogram()

    def stage_names(self) -> List[str]:
        return sorted(self._stages)

    def total_count(self) -> int:
        return sum(h.count for h in self._stages.values())

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {name: hist.summary() for name, hist in sorted(self._stages.items())}

    def table(self, stages: Optional[Iterable[str]] = None) -> str:
        """Aligned per-stage latency table (count / mean / p50 / p95 / p99).

        Always includes :data:`CORE_STAGES` rows (zeros when unexercised),
        followed by any extra observed stages — the shape of the paper's
        Fig. 6 stage breakdown.
        """
        from repro.sim.stats import pretty_table

        wanted = list(stages) if stages is not None else list(CORE_STAGES)
        extra = [name for name in self.stage_names() if name not in wanted]
        rows = []
        for name in wanted + extra:
            s = self.get(name).summary()
            rows.append(
                [
                    name,
                    int(s["count"]),
                    f"{s['mean'] * 1e3:.3f}",
                    f"{s['p50'] * 1e3:.3f}",
                    f"{s['p95'] * 1e3:.3f}",
                    f"{s['p99'] * 1e3:.3f}",
                    f"{s['max'] * 1e3:.3f}",
                ]
            )
        return pretty_table(
            ["stage", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"], rows
        )
