"""Transaction-lifecycle observability: spans, stage histograms, export.

The third pillar of the reproduction (after the replication fast path and
the chaos harness): a zero-dependency tracing layer driven by the sim
kernel's virtual clock.  Every transaction yields a causally linked span
tree over the pipeline stages the paper's Fig. 6 breaks down —
``schedule`` / ``execute`` / ``precommit`` / ``broadcast`` / ``ack`` /
``apply`` / ``flush`` — and the tests assert on those spans instead of
sleeps or counter totals.
"""

from repro.obs.histogram import CORE_STAGES, FixedBucketHistogram, StageHistograms
from repro.obs.export import span_to_event, to_chrome_trace, write_chrome_trace
from repro.obs.trace import NULL_SPAN, NULL_TRACER, Span, TraceLog, Tracer

__all__ = [
    "CORE_STAGES",
    "FixedBucketHistogram",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "StageHistograms",
    "TraceLog",
    "Tracer",
    "span_to_event",
    "to_chrome_trace",
    "write_chrome_trace",
]
