"""Chrome-trace (``chrome://tracing`` / Perfetto) JSON export.

The exporter emits the Trace Event Format's JSON-object flavour: complete
(``ph: "X"``) events for spans and instant (``ph: "i"``) events for point
records.  Virtual-clock seconds become microseconds, the unit the format
expects.  Rows group by ``pid`` (the node that did the work) and ``tid``
(the transaction id), so one transaction's stages line up on one track
and cross-node causality is recoverable from the ``span``/``parent``
args.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Union

from repro.obs.trace import Span, Tracer

#: Sequence-type tag values are truncated to this many elements so one
#: huge write-set cannot bloat the JSON beyond usefulness.
MAX_TAG_ITEMS = 32


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_json_safe(v) for v in list(value)[:MAX_TAG_ITEMS]]
        if len(value) > MAX_TAG_ITEMS:
            items.append(f"... +{len(value) - MAX_TAG_ITEMS} more")
        return items
    return repr(value)


def span_to_event(span: Span, scale: float = 1e6) -> Dict[str, Any]:
    """One span as a Trace Event Format dict (times in microseconds)."""
    args = {str(k): _json_safe(v) for k, v in span.tags.items()}
    args["span"] = span.span_id
    if span.parent_id != -1:
        args["parent"] = span.parent_id
    event: Dict[str, Any] = {
        "name": span.name,
        "cat": "stage",
        "ts": span.start * scale,
        "pid": str(span.tags.get("node", "cluster")),
        "tid": int(span.txn_id) if span.txn_id is not None else 0,
        "args": args,
    }
    if span.instant:
        event["ph"] = "i"
        event["s"] = "t"  # thread-scoped instant
    else:
        end = span.end if span.end is not None else span.start
        event["ph"] = "X"
        event["dur"] = (end - span.start) * scale
    return event


def to_chrome_trace(source: Union[Tracer, Iterable[Span]]) -> Dict[str, Any]:
    """The full trace document for a tracer (or an iterable of spans)."""
    spans = source.finished() if isinstance(source, Tracer) else list(source)
    events: List[Dict[str, Any]] = [span_to_event(s) for s in spans]
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "source": "repro.obs"},
    }
    if isinstance(source, Tracer) and source.log.dropped:
        doc["otherData"]["spans_dropped"] = source.log.dropped
    return doc


def write_chrome_trace(path: str, source: Union[Tracer, Iterable[Span]]) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    doc = to_chrome_trace(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
