"""Zero-dependency transaction-lifecycle tracing on the virtual clock.

A :class:`Tracer` produces causally linked :class:`Span` trees: one root
span per transaction attempt, with children for every pipeline stage the
transaction passes through (``schedule`` → ``execute`` → ``precommit`` →
``broadcast``/``ack`` → ``apply`` → ``flush``).  Spans carry the txn id,
the node that did the work, and stage-specific tags (version vectors,
page ids, retransmission attempts), so a test — or a human staring at a
Chrome trace — can answer *where the time of one transaction went*,
which monotonic counter totals cannot.

Design constraints:

* **Clock-agnostic.**  The tracer reads time through a ``now`` callable;
  the sim kernel passes its virtual clock, unit tests pass a fake.  The
  tracer never schedules events and never yields, so enabling it cannot
  perturb a seeded run (chaos fingerprints are identical with tracing on
  and off).
* **Free when disabled.**  A disabled tracer hands out the shared
  :data:`NULL_SPAN`, whose methods are no-ops returning itself; the hot
  paths pay one attribute check and two no-op calls per statement.
* **Bounded memory.**  Finished spans land in a ring-buffered
  :class:`TraceLog`; stage latencies are *also* folded into fixed-bucket
  histograms (see :mod:`repro.obs.histogram`) which never grow, so the
  percentile table survives arbitrarily long soaks even after the ring
  has started dropping raw spans.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

from repro.obs.histogram import StageHistograms


class _NullSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    recording = False
    instant = False
    span_id = -1
    parent_id = -1
    txn_id = None
    name = ""
    start = 0.0
    end = 0.0
    tags: Dict[str, Any] = {}

    def child(self, name: str, **tags: Any) -> "_NullSpan":
        return self

    def annotate(self, **tags: Any) -> "_NullSpan":
        return self

    def finish(self, **tags: Any) -> "_NullSpan":
        return self

    @property
    def closed(self) -> bool:
        return True

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


#: The span handed out when tracing is disabled (or no parent exists).
NULL_SPAN = _NullSpan()


class Span:
    """One timed, tagged interval in a transaction's lifecycle."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "txn_id",
                 "start", "end", "tags", "instant")

    recording = True

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int,
        name: str,
        txn_id: Optional[int],
        start: float,
        tags: Dict[str, Any],
        instant: bool = False,
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.txn_id = txn_id
        self.start = start
        self.end: Optional[float] = start if instant else None
        self.tags = tags
        self.instant = instant

    # -- lifecycle ------------------------------------------------------------------
    def child(self, name: str, **tags: Any):
        """Open a child span (inherits this span's txn id)."""
        return self.tracer.span(name, parent=self, txn_id=self.txn_id, **tags)

    def annotate(self, **tags: Any) -> "Span":
        self.tags.update(tags)
        return self

    def finish(self, **tags: Any) -> "Span":
        """Close the span (idempotent: the first finish wins)."""
        if self.end is not None:
            return self
        if tags:
            self.tags.update(tags)
        self.end = self.tracer.now()
        self.tracer._record(self)
        return self

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.tracer.now()) - self.start

    # -- context manager -------------------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and "status" not in self.tags:
            self.finish(status="error", error=exc_type.__name__)
        else:
            self.finish()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"..{self.end:g}" if self.end is not None else ".."
        return (
            f"Span(#{self.span_id} {self.name} txn={self.txn_id} "
            f"t={self.start:g}{state} {self.tags})"
        )


class TraceLog:
    """Ring buffer of finished spans (oldest dropped once full)."""

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity <= 0:
            raise ValueError("trace log capacity must be positive")
        self.capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity)
        #: Spans evicted by the ring; orphan checks are only sound at 0.
        self.dropped = 0

    def append(self, span: Span) -> None:
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)

    def spans(self) -> List[Span]:
        return list(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def __len__(self) -> int:
        return len(self._spans)


class Tracer:
    """Span factory + sink: ring-buffered log and per-stage histograms."""

    def __init__(
        self,
        now: Optional[Callable[[], float]] = None,
        capacity: int = 1 << 16,
        enabled: bool = True,
    ) -> None:
        self.now = now if now is not None else (lambda: 0.0)
        self.enabled = enabled
        self.log = TraceLog(capacity)
        self.stages = StageHistograms()
        self._open: Dict[int, Span] = {}
        self._next_id = 0
        #: Total spans ever finished (instants included) — the conservation
        #: side of the trace-hygiene invariant, immune to ring eviction.
        self.finished_count = 0
        #: Of those, how many were zero-duration instants (which never
        #: enter the stage histograms).
        self.instant_count = 0

    # -- span creation ---------------------------------------------------------------
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        txn_id: Optional[int] = None,
        **tags: Any,
    ):
        """Open a span; returns :data:`NULL_SPAN` when tracing is off."""
        if not self.enabled:
            return NULL_SPAN
        if parent is not None and not parent.recording:
            parent = None
        self._next_id += 1
        span = Span(
            self,
            self._next_id,
            parent.span_id if parent is not None else -1,
            name,
            txn_id if txn_id is not None else (
                parent.txn_id if parent is not None else None
            ),
            self.now(),
            tags,
        )
        self._open[span.span_id] = span
        return span

    def instant(
        self,
        name: str,
        parent: Optional[Span] = None,
        txn_id: Optional[int] = None,
        **tags: Any,
    ):
        """A zero-duration point event (scheduler routing decisions, ...)."""
        if not self.enabled:
            return NULL_SPAN
        if parent is not None and not parent.recording:
            parent = None
        self._next_id += 1
        span = Span(
            self,
            self._next_id,
            parent.span_id if parent is not None else -1,
            name,
            txn_id,
            self.now(),
            tags,
            instant=True,
        )
        self._record(span)
        return span

    # -- sink ------------------------------------------------------------------------
    def _record(self, span: Span) -> None:
        self._open.pop(span.span_id, None)
        self.log.append(span)
        self.finished_count += 1
        if span.instant:
            self.instant_count += 1
        else:
            self.stages.record(span.name, span.end - span.start)

    # -- inspection -------------------------------------------------------------------
    def open_spans(self) -> List[Span]:
        """Spans started but not yet finished (must be [] at quiescence)."""
        return list(self._open.values())

    def finished(self) -> List[Span]:
        """Finished spans still in the ring, oldest first."""
        return self.log.spans()

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.log if s.name == name]

    def orphans(self) -> List[Span]:
        """Finished spans whose parent is neither finished nor open.

        Only meaningful while the ring has not dropped anything — eviction
        removes parents before children, so callers gate on
        ``log.dropped == 0``.
        """
        known = {s.span_id for s in self.log}
        known.update(self._open)
        return [s for s in self.log if s.parent_id != -1 and s.parent_id not in known]

    def stage_table(self, stages=None) -> str:
        """The per-stage p50/p95/p99 latency table (paper Fig. 6 shape)."""
        return self.stages.table(stages)

    def reset(self) -> None:
        """Drop all recorded state (between benchmark phases)."""
        self.log = TraceLog(self.log.capacity)
        self.stages = StageHistograms()
        self._open.clear()
        self.finished_count = 0
        self.instant_count = 0


#: Shared disabled tracer: the default for components built stand-alone.
NULL_TRACER = Tracer(enabled=False)
