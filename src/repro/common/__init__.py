"""Shared foundations: errors, identifiers, deterministic RNG, counters.

Everything in :mod:`repro` builds on these small utilities.  They carry no
simulation or database semantics of their own, which keeps the dependency
graph a strict DAG: ``common`` <- ``sim`` <- ``storage`` <- ``engine`` <- ...
"""

from repro.common.errors import (
    ReproError,
    TransactionAborted,
    VersionInconsistency,
    DeadlockDetected,
    NodeUnavailable,
    SchemaError,
    SqlError,
    ConfigError,
)
from repro.common.ids import IdAllocator, NodeId, PageId, TxnId
from repro.common.rng import RngStream, derive_seed
from repro.common.counters import Counters

__all__ = [
    "ReproError",
    "TransactionAborted",
    "VersionInconsistency",
    "DeadlockDetected",
    "NodeUnavailable",
    "SchemaError",
    "SqlError",
    "ConfigError",
    "IdAllocator",
    "NodeId",
    "PageId",
    "TxnId",
    "RngStream",
    "derive_seed",
    "Counters",
]
