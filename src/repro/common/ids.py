"""Typed identifiers used throughout the cluster.

``NodeId`` and ``TxnId`` are plain ``str``/``int`` aliases — the type names
exist to make signatures self-documenting.  ``PageId`` is a real value type
because pages are addressed by (table, page number) pairs everywhere in the
replication protocol.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

NodeId = str
TxnId = int


@dataclass(frozen=True, order=True)
class PageId:
    """Address of one storage page: a table name plus a page number."""

    table: str
    number: int
    #: Precomputed ``hash((table, number))`` — identical to the value the
    #: dataclass-generated ``__hash__`` returns, so dict/set iteration
    #: orders (and therefore replay determinism) are unchanged; page ids
    #: are hashed on every page touch, so recomputing was measurable.
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.table, self.number)))

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.table}#{self.number}"


def _pageid_hash(self: PageId) -> int:
    return self._hash


# Installed after class creation: @dataclass(frozen=True) would otherwise
# overwrite an in-class __hash__ with the tuple-recomputing generated one.
PageId.__hash__ = _pageid_hash  # type: ignore[method-assign]


class IdAllocator:
    """Monotonic integer id source, one instance per id space.

    Deliberately not thread-safe: in simulation mode everything runs on one
    thread, and in live mode each node owns its own allocator.
    """

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)

    def next(self) -> int:
        """Return the next unused id."""
        return next(self._counter)
