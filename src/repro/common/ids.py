"""Typed identifiers used throughout the cluster.

``NodeId`` and ``TxnId`` are plain ``str``/``int`` aliases — the type names
exist to make signatures self-documenting.  ``PageId`` is a real value type
because pages are addressed by (table, page number) pairs everywhere in the
replication protocol.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

NodeId = str
TxnId = int


@dataclass(frozen=True, order=True)
class PageId:
    """Address of one storage page: a table name plus a page number."""

    table: str
    number: int

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.table}#{self.number}"


class IdAllocator:
    """Monotonic integer id source, one instance per id space.

    Deliberately not thread-safe: in simulation mode everything runs on one
    thread, and in live mode each node owns its own allocator.
    """

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)

    def next(self) -> int:
        """Return the next unused id."""
        return next(self._counter)
