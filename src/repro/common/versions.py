"""The database version vector (``DBVersion``).

One integer entry per application table.  Each committing update
transaction atomically increments the entries of the tables it wrote; the
resulting vector names the new database state.  Schedulers merge vectors
from (possibly multiple) masters and tag read-only transactions with the
latest merged vector.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple


class VersionVector:
    """Mapping table-name -> version, with merge/compare helpers.

    Absent entries read as 0.  Instances are mutable; use :meth:`copy` when
    handing a vector across a protocol boundary (messages must not alias
    live scheduler or master state).
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Optional[Mapping[str, int]] = None) -> None:
        self._entries: Dict[str, int] = dict(entries) if entries else {}

    def get(self, table: str) -> int:
        return self._entries.get(table, 0)

    def set(self, table: str, version: int) -> None:
        self._entries[table] = version

    def increment(self, tables: Iterable[str]) -> "VersionVector":
        """Bump the entry of each table; returns self for chaining."""
        for table in tables:
            self._entries[table] = self._entries.get(table, 0) + 1
        return self

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Elementwise maximum (in place); returns self."""
        for table, version in other._entries.items():
            if version > self._entries.get(table, 0):
                self._entries[table] = version
        return self

    def floor_with(self, other: "VersionVector") -> "VersionVector":
        """Elementwise minimum (in place); returns self.

        Used to compute garbage-collection watermarks: the oldest version
        any active reader may still need.
        """
        for table in list(self._entries):
            self._entries[table] = min(self._entries[table], other.get(table))
        for table, version in other._entries.items():
            if table not in self._entries:
                self._entries[table] = 0
        return self

    def dominates(self, other: "VersionVector") -> bool:
        """True if self >= other on every entry."""
        return all(self.get(t) >= v for t, v in other._entries.items())

    def copy(self) -> "VersionVector":
        return VersionVector(self._entries)

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._entries.items()))

    def as_dict(self) -> Dict[str, int]:
        return dict(self._entries)

    def total(self) -> int:
        """Sum of all entries — a scalar progress measure for logs/tests."""
        return sum(self._entries.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        # Compare semantically: missing entries equal zero entries.
        keys = set(self._entries) | set(other._entries)
        return all(self.get(k) == other.get(k) for k in keys)

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, v) for k, v in self._entries.items() if v)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{t}:{v}" for t, v in self.items())
        return f"V({inner})"
