"""Deterministic random-number streams.

Every stochastic component (workload generator, think times, load balancer
tie-breaking, failure injection) draws from its own named stream derived
from a single experiment seed.  This makes whole-cluster experiments
reproducible bit-for-bit while keeping the streams statistically
independent.
"""

from __future__ import annotations

import array
import bisect
import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from ``root_seed`` and a path of stream names.

    Uses SHA-256 so that nearby root seeds produce unrelated child streams.
    """
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode())
    for name in names:
        digest.update(b"/")
        digest.update(name.encode())
    return int.from_bytes(digest.digest()[:8], "big")


class RngStream:
    """A named, reproducible random stream (thin wrapper over ``random.Random``)."""

    def __init__(self, root_seed: int, *names: str) -> None:
        self.name = "/".join(names) if names else "root"
        self._rng = rng = random.Random(derive_seed(root_seed, *names))
        # Bind the hot draw methods straight to the underlying Random
        # instance: instance attributes shadow the wrapper methods below,
        # eliminating one Python frame per draw.  Pure aliasing — the draw
        # sequence is bit-for-bit identical to calling through the wrappers.
        self.random = rng.random
        self.randint = rng.randint
        self.uniform = rng.uniform
        self.choice = rng.choice
        self.shuffle = rng.shuffle

    def child(self, *names: str) -> "RngStream":
        """Derive a sub-stream; children are independent of the parent draws."""
        return RngStream(self._rng.randint(0, 2**62), self.name, *names)

    # -- primitive draws (shadowed by bound aliases set in __init__) -------
    def random(self) -> float:
        return self._rng.random()

    def randint(self, a: int, b: int) -> int:
        return self._rng.randint(a, b)

    def uniform(self, a: float, b: float) -> float:
        return self._rng.uniform(a, b)

    def expovariate(self, mean: float) -> float:
        """Exponential draw parameterised by its *mean* (not rate)."""
        if mean <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(seq, k)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        return self._rng.choices(list(items), weights=list(weights), k=1)[0]

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Return an index in ``[0, n)`` with Zipf(``skew``) rank weights.

        Implemented by inverse-transform sampling over the exact harmonic
        CDF (cached per ``(n, skew)``); used to model the high-locality
        access pattern the paper relies on (hot working set much smaller
        than the database).
        """
        if n <= 0:
            raise ValueError("zipf_index needs n >= 1")
        cdf = _zipf_cdf(n, skew)
        u = self._rng.random() * cdf[-1]
        return bisect.bisect_left(cdf, u)


def _zipf_cdf(n: int, skew: float) -> "array.array":
    """Cumulative (unnormalised) Zipf weights 1/k^skew for k = 1..n."""
    key = (n, skew)
    cached = _ZIPF_CDF_CACHE.get(key)
    if cached is None:
        cached = array.array("d")
        total = 0.0
        for k in range(1, n + 1):
            total += 1.0 / (k**skew)
            cached.append(total)
        _ZIPF_CDF_CACHE[key] = cached
    return cached


_ZIPF_CDF_CACHE: dict = {}
