"""Exception hierarchy for the DMV reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Transaction-level failures derive from
:class:`TransactionAborted`; application code is expected to retry those,
exactly as a client of a replicated database would.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class SchemaError(ReproError):
    """A table, column or index does not exist or is malformed."""


class SqlError(ReproError):
    """A SQL statement could not be lexed, parsed or planned."""


class CorruptCheckpoint(SchemaError):
    """A checkpoint page or file failed its checksum validation.

    Subclasses :class:`SchemaError` so existing "corrupt checkpoint"
    handlers keep working; recovery paths catch this type specifically to
    fall back to the previous good checkpoint generation.
    """


class TransactionAborted(ReproError):
    """A transaction was rolled back and its effects discarded.

    The ``reason`` attribute carries a short machine-readable cause, e.g.
    ``"deadlock"``, ``"version-inconsistency"`` or ``"node-failure"``.
    """

    def __init__(self, message: str, reason: str = "abort") -> None:
        super().__init__(message)
        self.reason = reason


class VersionInconsistency(TransactionAborted):
    """A read-only transaction observed conflicting page versions.

    Raised when a page needed at version ``required`` has already been
    advanced to a higher version by a concurrent reader at the same replica
    (the paper's Section 2.2 abort case).  The scheduler retries the
    transaction, typically with a newer version tag or on another replica.
    """

    def __init__(self, message: str, required: int = -1, found: int = -1) -> None:
        super().__init__(message, reason="version-inconsistency")
        self.required = required
        self.found = found


class DeadlockDetected(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""

    def __init__(self, message: str) -> None:
        super().__init__(message, reason="deadlock")


class NodeUnavailable(ReproError):
    """The target node failed or was removed from the cluster topology."""
