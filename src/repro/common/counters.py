"""Lightweight instrumentation counters.

A :class:`Counters` object is threaded through the storage engine, the
replication protocol and the schedulers.  The simulation's cost model reads
the *deltas* produced by one request to charge service time, and the
benchmark harness reads the totals to report abort rates, bytes shipped,
cache hit ratios, and so on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Mapping


class Counters:
    """A named bag of monotonic counters with cheap snapshot/delta support."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        self._values[name] += amount

    def get(self, name: str) -> float:
        return self._values.get(name, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """Copy of all counter values at this instant."""
        return dict(self._values)

    def delta_since(self, snapshot: Mapping[str, float]) -> Dict[str, float]:
        """Per-counter difference between now and a prior :meth:`snapshot`.

        Iterates the *union* of current and snapshot keys: a counter that
        moved backwards since the snapshot (a :meth:`reset` mid-window, or
        a merge of negative corrections) produces a negative delta instead
        of silently vanishing — which it would if only the live dict were
        scanned, because ``defaultdict`` drops no keys but ``reset`` does.
        """
        out: Dict[str, float] = {}
        for name, value in self._values.items():
            diff = value - snapshot.get(name, 0.0)
            if diff:
                out[name] = diff
        for name, old in snapshot.items():
            if name not in self._values and old:
                out[name] = -old
        return out

    def reset(self) -> None:
        self._values.clear()

    def merge(self, values: Mapping[str, float]) -> None:
        """Accumulate a plain mapping of counter deltas into this bag."""
        for name, value in values.items():
            self._values[name] += value

    def merge_from(self, other: "Counters") -> None:
        """Accumulate another bag's totals into this one."""
        self.merge(other._values)

    @classmethod
    def merged(cls, many: Iterable["Counters"]) -> "Counters":
        """Cluster-wide totals: one bag summing every node's counters.

        The bench harness uses this to report replication-pipeline totals
        (``net.batches``, ``net.bytes_shipped``, ``net.bytes_saved_delta``,
        ``slave.ops_coalesced``, ...) across all nodes of a run.
        """
        total = cls()
        for counters in many:
            total.merge_from(counters)
        return total

    def fingerprint(self) -> str:
        """Stable short hash of every counter value (order-independent).

        Two runs of the same seeded experiment must produce the same
        fingerprint; the chaos harness prints it so a soak failure can be
        replayed bit-for-bit from the seed and checked for drift.
        """
        import hashlib

        digest = hashlib.sha256()
        for name, value in sorted(self._values.items()):
            digest.update(f"{name}={value!r};".encode())
        return digest.hexdigest()[:16]

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._values.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in self)
        return f"Counters({inner})"
