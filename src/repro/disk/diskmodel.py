"""Disk service-time model.

A single-spindle commodity disk circa the paper's testbed: positioning
latency per random I/O plus streaming transfer.  The simulation serialises
all I/O of one node through a capacity-1 disk resource, so queueing effects
(the on-disk tier saturating under load) emerge naturally.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskModel:
    """Timing parameters; all costs in (virtual) seconds."""

    #: Average positioning (seek + rotational) latency per random access.
    seek_time: float = 0.005
    #: Sequential transfer rate in bytes/second.
    transfer_rate: float = 60e6
    #: Page size used for random page reads.
    page_bytes: int = 16384
    #: fsync: flush latency (log force at commit).
    fsync_time: float = 0.004

    def random_read_cost(self, pages: int = 1) -> float:
        """Cost of ``pages`` random page reads (buffer-pool misses)."""
        return pages * (self.seek_time + self.page_bytes / self.transfer_rate)

    def sequential_cost(self, nbytes: int) -> float:
        """Cost of streaming ``nbytes`` (log replay, checkpoint writes)."""
        if nbytes <= 0:
            return 0.0
        return self.seek_time + nbytes / self.transfer_rate

    def fsync_cost(self, count: int = 1) -> float:
        return count * self.fsync_time
